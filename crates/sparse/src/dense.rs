//! Dense row-major matrices.
//!
//! Used for the Visual Genome substitute's "embedding-like" features (the
//! paper extracts ResNet features for images; see DESIGN.md §2) and for the
//! small dense parameter blocks inside the models.

/// Row-major dense `f32` matrix.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    data: Vec<f32>,
    n_rows: usize,
    n_cols: usize,
}

impl DenseMatrix {
    /// Zero-filled matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self { data: vec![0.0; n_rows * n_cols], n_rows, n_cols }
    }

    /// Build from a flat row-major buffer.
    pub fn from_flat(data: Vec<f32>, n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "flat buffer size mismatch");
        Self { data, n_rows, n_cols }
    }

    /// Build from per-row vectors (all the same length).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { data, n_rows, n_cols }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Iterate rows in order. Always yields exactly [`DenseMatrix::n_rows`]
    /// slices — including `n_rows` *empty* slices for a zero-column matrix
    /// (the historical `chunks_exact(n_cols.max(1))` over the then-empty
    /// buffer yielded none, disagreeing with `n_rows()`).
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.n_rows).map(move |r| &self.data[r * self.n_cols..(r + 1) * self.n_cols])
    }

    /// Cached squared L2 norms of every row (same summation order as the
    /// per-pair norm computation in the distance kernels, so cached and
    /// recomputed norms are bit-identical).
    pub fn row_sq_norms(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row(r).iter().map(|&v| (v as f64) * (v as f64)).sum())
            .collect()
    }

    /// L2-normalize every row in place (zero rows untouched).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.n_rows {
            let row = self.row_mut(r);
            let norm: f64 = row.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
            if norm > 0.0 {
                let inv = (1.0 / norm) as f32;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }
}

/// Dense dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Squared euclidean distance between dense vectors.
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

/// `y += alpha * x` over dense slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert!(m.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let collected: Vec<&[f32]> = m.rows().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn rows_agree_with_n_rows_for_zero_columns() {
        // Regression: a zero-column matrix must still yield `n_rows`
        // (empty) row slices, not zero rows.
        let m = DenseMatrix::zeros(3, 0);
        assert_eq!(m.n_rows(), 3);
        let rows: Vec<&[f32]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        // Degenerate the other way (0 × n) and fully empty both stay empty.
        assert_eq!(DenseMatrix::zeros(0, 4).rows().count(), 0);
        assert_eq!(DenseMatrix::zeros(0, 0).rows().count(), 0);
        // Non-degenerate shape unchanged.
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f32]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0f32, 2.0][..], &[3.0f32, 4.0][..]]);
    }

    #[test]
    fn row_mut_writes() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn normalize_rows() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        m.l2_normalize_rows();
        let n: f64 = m.row(0).iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn dot_and_euclidean() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert!((dot(&a, &b) - 32.0).abs() < 1e-9);
        assert!((sq_euclidean(&a, &b) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0f32, 2.0];
        let mut y = [10.0f32, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }
}

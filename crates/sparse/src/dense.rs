//! Dense row-major matrices.
//!
//! Used for the Visual Genome substitute's "embedding-like" features (the
//! paper extracts ResNet features for images; see DESIGN.md §2) and for the
//! small dense parameter blocks inside the models.

/// Row-major dense `f32` matrix.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    data: Vec<f32>,
    n_rows: usize,
    n_cols: usize,
}

impl DenseMatrix {
    /// Zero-filled matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self { data: vec![0.0; n_rows * n_cols], n_rows, n_cols }
    }

    /// Build from a flat row-major buffer.
    pub fn from_flat(data: Vec<f32>, n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "flat buffer size mismatch");
        Self { data, n_rows, n_cols }
    }

    /// Build from per-row vectors (all the same length).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { data, n_rows, n_cols }
    }

    /// Borrow the flat row-major buffer for serialization; round-trips
    /// through [`DenseMatrix::from_flat`] together with the dimensions.
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Iterate rows in order. Always yields exactly [`DenseMatrix::n_rows`]
    /// slices — including `n_rows` *empty* slices for a zero-column matrix
    /// (the historical `chunks_exact(n_cols.max(1))` over the then-empty
    /// buffer yielded none, disagreeing with `n_rows()`).
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.n_rows).map(move |r| &self.data[r * self.n_cols..(r + 1) * self.n_cols])
    }

    /// Cached squared L2 norms of every row (same summation order as the
    /// per-pair norm computation in the distance kernels, so cached and
    /// recomputed norms are bit-identical).
    pub fn row_sq_norms(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row(r).iter().map(|&v| (v as f64) * (v as f64)).sum())
            .collect()
    }

    /// L2-normalize every row in place (zero rows untouched).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.n_rows {
            let row = self.row_mut(r);
            let norm: f64 = row.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
            if norm > 0.0 {
                let inv = (1.0 / norm) as f32;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }
}

/// Which dense reduction kernel the distance engine uses.
///
/// The scalar kernels ([`dot`], [`sq_euclidean`]) reduce with a single
/// sequential `f64` accumulator — a loop-carried add chain whose latency
/// (not the multiply throughput) bounds the whole point-to-all scan. The
/// blocked kernels ([`dot_blocked`], [`sq_euclidean_blocked`]) keep
/// [`DOT_LANES`] independent accumulators over fixed-width column chunks,
/// which breaks the chain and lets the compiler keep several FMAs in
/// flight (and vectorize the chunk body).
///
/// Both kernels are deterministic — the blocked combine order is fixed and
/// independent of thread count — but they are *not* bit-identical to each
/// other: blocking reassociates the `f64` sum, so blocked and scalar
/// distances may differ by up to ~1e-9 relative (see the documented
/// tolerance in `tests/dense_kernel_differential.rs`). `Scalar` is kept as
/// the reference leg for that differential, mirroring how
/// `DistanceBackend::Naive` anchors the indexed sparse kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DenseBackend {
    /// Multi-accumulator chunked kernel (the production default).
    #[default]
    Blocked,
    /// Single-accumulator sequential reduction (the reference leg).
    Scalar,
}

impl DenseBackend {
    /// Stable name for configs, logs, and bench output.
    pub fn name(self) -> &'static str {
        match self {
            DenseBackend::Blocked => "blocked",
            DenseBackend::Scalar => "scalar",
        }
    }

    /// Dot product under this backend.
    #[inline]
    pub fn dot(self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            DenseBackend::Blocked => dot_blocked(a, b),
            DenseBackend::Scalar => dot(a, b),
        }
    }

    /// Squared euclidean distance under this backend.
    #[inline]
    pub fn sq_euclidean(self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            DenseBackend::Blocked => sq_euclidean_blocked(a, b),
            DenseBackend::Scalar => sq_euclidean(a, b),
        }
    }
}

/// Independent accumulator lanes in the blocked dense kernels. Eight `f64`
/// lanes fill two 4-wide AVX2 registers (or four 2-wide NEON ones) and are
/// enough to hide the 4-cycle FMA latency of one sequential chain.
pub const DOT_LANES: usize = 8;

/// Dense dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Blocked dense dot product: [`DOT_LANES`] independent `f64` accumulators
/// over fixed-width chunks, plus a scalar tail, combined in a fixed order.
///
/// Deterministic (the chunk grid and combine order depend only on the
/// input length) but reassociated relative to [`dot`], so results may
/// differ from the scalar kernel in the last bits.
#[inline]
pub fn dot_blocked(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() / DOT_LANES * DOT_LANES;
    let mut acc = [0.0f64; DOT_LANES];
    for (ca, cb) in a[..main].chunks_exact(DOT_LANES).zip(b[..main].chunks_exact(DOT_LANES)) {
        for l in 0..DOT_LANES {
            acc[l] += ca[l] as f64 * cb[l] as f64;
        }
    }
    let mut tail = 0.0f64;
    for (&x, &y) in a[main..].iter().zip(&b[main..]) {
        tail += x as f64 * y as f64;
    }
    acc.iter().sum::<f64>() + tail
}

/// Blocked squared euclidean distance; same lane structure and determinism
/// contract as [`dot_blocked`], keeping the difference form of
/// [`sq_euclidean`] (no norm/dot recombination).
#[inline]
pub fn sq_euclidean_blocked(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() / DOT_LANES * DOT_LANES;
    let mut acc = [0.0f64; DOT_LANES];
    for (ca, cb) in a[..main].chunks_exact(DOT_LANES).zip(b[..main].chunks_exact(DOT_LANES)) {
        for l in 0..DOT_LANES {
            let d = ca[l] as f64 - cb[l] as f64;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f64;
    for (&x, &y) in a[main..].iter().zip(&b[main..]) {
        let d = x as f64 - y as f64;
        tail += d * d;
    }
    acc.iter().sum::<f64>() + tail
}

/// Squared euclidean distance between dense vectors.
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

/// `y += alpha * x` over dense slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert!(m.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let collected: Vec<&[f32]> = m.rows().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn rows_agree_with_n_rows_for_zero_columns() {
        // Regression: a zero-column matrix must still yield `n_rows`
        // (empty) row slices, not zero rows.
        let m = DenseMatrix::zeros(3, 0);
        assert_eq!(m.n_rows(), 3);
        let rows: Vec<&[f32]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        // Degenerate the other way (0 × n) and fully empty both stay empty.
        assert_eq!(DenseMatrix::zeros(0, 4).rows().count(), 0);
        assert_eq!(DenseMatrix::zeros(0, 0).rows().count(), 0);
        // Non-degenerate shape unchanged.
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f32]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0f32, 2.0][..], &[3.0f32, 4.0][..]]);
    }

    #[test]
    fn row_mut_writes() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn normalize_rows() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        m.l2_normalize_rows();
        let n: f64 = m.row(0).iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn dot_and_euclidean() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert!((dot(&a, &b) - 32.0).abs() < 1e-9);
        assert!((sq_euclidean(&a, &b) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_kernels_match_scalar_closely() {
        // Deterministic pseudo-random vectors long enough to exercise both
        // the lane body and the tail (length not a multiple of DOT_LANES).
        let mut state = 0x9e37u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for len in [0usize, 1, 7, 8, 9, 63, 64, 100, 1027] {
            let a: Vec<f32> = (0..len).map(|_| next()).collect();
            let b: Vec<f32> = (0..len).map(|_| next()).collect();
            let d_scalar = dot(&a, &b);
            let d_blocked = dot_blocked(&a, &b);
            assert!(
                (d_scalar - d_blocked).abs() <= 1e-9 * (1.0 + d_scalar.abs()),
                "dot mismatch at len={len}: {d_scalar} vs {d_blocked}"
            );
            let e_scalar = sq_euclidean(&a, &b);
            let e_blocked = sq_euclidean_blocked(&a, &b);
            assert!(
                (e_scalar - e_blocked).abs() <= 1e-9 * (1.0 + e_scalar.abs()),
                "sq_euclidean mismatch at len={len}: {e_scalar} vs {e_blocked}"
            );
            assert!(e_blocked >= 0.0);
        }
    }

    #[test]
    fn blocked_kernels_are_deterministic() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        assert_eq!(dot_blocked(&a, &b).to_bits(), dot_blocked(&a, &b).to_bits());
        assert_eq!(sq_euclidean_blocked(&a, &b).to_bits(), sq_euclidean_blocked(&a, &b).to_bits());
    }

    #[test]
    fn dense_backend_dispatch_and_names() {
        assert_eq!(DenseBackend::default(), DenseBackend::Blocked);
        assert_eq!(DenseBackend::Blocked.name(), "blocked");
        assert_eq!(DenseBackend::Scalar.name(), "scalar");
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [9.0f32, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(DenseBackend::Scalar.dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
        assert_eq!(DenseBackend::Blocked.dot(&a, &b).to_bits(), dot_blocked(&a, &b).to_bits());
        assert_eq!(
            DenseBackend::Scalar.sq_euclidean(&a, &b).to_bits(),
            sq_euclidean(&a, &b).to_bits()
        );
        assert_eq!(
            DenseBackend::Blocked.sq_euclidean(&a, &b).to_bits(),
            sq_euclidean_blocked(&a, &b).to_bits()
        );
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0f32, 2.0];
        let mut y = [10.0f32, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }
}

//! Column-major companion index for a [`CsrMatrix`] (CSC layout).
//!
//! A [`CscIndex`] is the value-carrying inverted index over a sparse
//! feature matrix: for every column (term) it stores the sorted row ids
//! that contain it together with their stored values. It is built once per
//! matrix in `O(nnz)` by a counting sort and never mutated.
//!
//! This is the structure behind the indexed distance kernels
//! ([`crate::distance::Distance::sparse_row_to_all_indexed_into`]): a
//! "one point vs all rows" pass only walks the posting lists of the
//! pivot's nonzero columns, so rows sharing no terms with the pivot are
//! never touched. On ~99%-sparse TF-IDF matrices that skips almost all of
//! the work a row-major scan performs.

use crate::csr::CsrMatrix;

/// Immutable column-major (CSC) view of a sparse matrix: per-column
/// posting lists of `(row id, value)` with row ids strictly increasing.
#[derive(Debug, Clone)]
pub struct CscIndex {
    /// `offsets[j]..offsets[j+1]` indexes `rows`/`values` for column `j`.
    offsets: Vec<usize>,
    rows: Vec<u32>,
    values: Vec<f32>,
    n_rows: usize,
}

impl CscIndex {
    /// Build the column-major companion of `m` with one counting sort over
    /// its stored entries.
    ///
    /// Rows are visited in order, so each posting list comes out sorted by
    /// row id without any per-column sort.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let offsets = m.column_offsets();
        let nnz = offsets[m.n_cols()];
        let mut cursor = offsets.clone();
        let mut rows = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        for (r, row) in m.rows().enumerate() {
            for (j, v) in row.iter() {
                let slot = cursor[j as usize];
                rows[slot] = r as u32;
                values[slot] = v;
                cursor[j as usize] += 1;
            }
        }
        Self { offsets, rows, values, n_rows: m.n_rows() }
    }

    /// Number of rows in the indexed matrix.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (posting lists).
    pub fn n_cols(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored entries (equals the source matrix's nnz).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Posting list of column `j`: parallel `(row ids, values)` slices with
    /// row ids strictly increasing.
    #[inline]
    pub fn col(&self, j: u32) -> (&[u32], &[f32]) {
        let j = j as usize;
        let (lo, hi) = (self.offsets[j], self.offsets[j + 1]);
        (&self.rows[lo..hi], &self.values[lo..hi])
    }

    /// Document frequency of column `j` (its posting-list length).
    #[inline]
    pub fn df(&self, j: u32) -> usize {
        let j = j as usize;
        self.offsets[j + 1] - self.offsets[j]
    }

    /// Borrow the raw CSC buffers `(offsets, rows, values)` for
    /// serialization. Round-trips through [`CscIndex::from_raw_parts`]
    /// together with [`CscIndex::n_rows`].
    pub fn raw_parts(&self) -> (&[usize], &[u32], &[f32]) {
        (&self.offsets, &self.rows, &self.values)
    }

    /// Rebuild an index from raw CSC buffers, validating the structural
    /// invariants the posting-list accessors and the indexed distance
    /// kernels rely on. Import half of [`CscIndex::raw_parts`], meant for
    /// deserializers with untrusted input; never panics on malformed
    /// buffers. Persisting the index (instead of re-running
    /// [`CscIndex::from_csr`]) is what makes artifact loads cheap, so the
    /// consistency guarantee here is structural validity plus the caller's
    /// whole-buffer checksum — not a rebuild-and-compare.
    pub fn from_raw_parts(
        offsets: Vec<usize>,
        rows: Vec<u32>,
        values: Vec<f32>,
        n_rows: usize,
    ) -> Result<Self, &'static str> {
        if offsets.first() != Some(&0) {
            return Err("CSC offsets must start with 0");
        }
        if rows.len() != values.len() {
            return Err("CSC row/value buffer length mismatch");
        }
        // invariant: `first()` above returned Some, so the vec is
        // non-empty and `last()` cannot fail.
        if *offsets.last().expect("checked non-empty above") != rows.len() {
            return Err("CSC final offset must equal nnz");
        }
        for w in offsets.windows(2) {
            if w[1] < w[0] {
                return Err("CSC offsets must be non-decreasing");
            }
            // Posting lists must be strictly increasing, in-bounds row ids
            // (the sharded kernels partition_point into them).
            for pair in rows[w[0]..w[1]].windows(2) {
                if pair[1] <= pair[0] {
                    return Err("CSC posting list must be strictly increasing");
                }
            }
            if let Some(&last) = rows[w[0]..w[1]].last() {
                if last as usize >= n_rows {
                    return Err("CSC row id out of bounds");
                }
            }
        }
        Ok(Self { offsets, rows, values, n_rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SparseVec;
    use proptest::prelude::*;

    fn sv(pairs: &[(u32, f32)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim)
    }

    #[test]
    fn transpose_roundtrip() {
        let rows =
            vec![sv(&[(0, 1.0), (2, 2.0)], 4), SparseVec::zeros(4), sv(&[(2, 3.0), (3, -1.0)], 4)];
        let m = CsrMatrix::from_rows(&rows, 4);
        let csc = CscIndex::from_csr(&m);
        assert_eq!(csc.n_rows(), 3);
        assert_eq!(csc.n_cols(), 4);
        assert_eq!(csc.nnz(), m.nnz());
        assert_eq!(csc.col(0), (&[0u32][..], &[1.0f32][..]));
        assert_eq!(csc.col(1), (&[][..], &[][..]));
        assert_eq!(csc.col(2), (&[0u32, 2][..], &[2.0f32, 3.0][..]));
        assert_eq!(csc.df(2), 2);
        assert_eq!(csc.df(3), 1);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_rows(&[], 5);
        let csc = CscIndex::from_csr(&m);
        assert_eq!(csc.n_rows(), 0);
        assert_eq!(csc.nnz(), 0);
        for j in 0..5 {
            assert_eq!(csc.df(j), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_csc_matches_csr_entries(
            rows in proptest::collection::vec(
                proptest::collection::vec((0u32..12, 0.5f32..5.0), 0..8), 0..10),
        ) {
            let svs: Vec<SparseVec> =
                rows.iter().map(|p| SparseVec::from_pairs(p.clone(), 12)).collect();
            let m = CsrMatrix::from_rows(&svs, 12);
            let csc = CscIndex::from_csr(&m);
            prop_assert_eq!(csc.nnz(), m.nnz());
            // Every CSR entry appears in its column's posting list with the
            // same value, and posting lists are sorted by row id.
            for (r, row) in m.rows().enumerate() {
                for (j, v) in row.iter() {
                    let (ids, vals) = csc.col(j);
                    let pos = ids.binary_search(&(r as u32));
                    prop_assert!(pos.is_ok(), "missing entry r={} j={}", r, j);
                    prop_assert_eq!(vals[pos.unwrap()], v);
                }
            }
            for j in 0..12u32 {
                let (ids, _) = csc.col(j);
                for w in ids.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }
}

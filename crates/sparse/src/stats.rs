//! Small statistics toolbox: entropy, percentiles, softmax, summary stats.
//!
//! These implement the exact quantities the paper's formulas require:
//! the label-model uncertainty `ψ_t(x_i) = −Σ_y P(y|Λ_t) log P(y|Λ_t)`
//! (Eq. 3), the `p`-th percentile refinement radius (Sec. 4.3), and the
//! numerically-stable log-space helpers the models use.

/// Shannon entropy (natural log) of a discrete distribution.
///
/// Zero-probability entries contribute zero (the `0·log 0 = 0` convention).
/// The input need not be perfectly normalized; small drift is tolerated.
pub fn entropy(probs: &[f64]) -> f64 {
    let mut h = 0.0;
    for &p in probs {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h.max(0.0)
}

/// Binary entropy of `P(y = +1) = p`.
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    entropy(&[p, 1.0 - p])
}

/// The `p`-th percentile (p in \[0, 100\]) of `values` using linear
/// interpolation between closest ranks (the "linear" / type-7 method).
///
/// This is the radius rule of the contextualizer: `r_j` is the `p`-th
/// percentile of distances from the development point to every example.
///
/// **Panics on empty input** — a percentile of nothing has no defined
/// value this toolbox could pick for every caller. Callers whose input
/// may legitimately be empty must guard at their own boundary with a
/// domain-appropriate definition (the contextualizer defines the radius
/// of an LF registered against an empty training split as `+∞`; see
/// `nemo_core::contextualizer::Contextualizer::radius`).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range: {p}");
    let mut sorted = values.to_vec();
    // invariant: inputs are distances, which the kernels keep finite.
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_of_sorted(&sorted, p)
}

/// `percentile` over an already-sorted slice (ascending). Use when the same
/// distance vector is queried at several `p` values.
///
/// Panics on empty input, like [`percentile`] — guard possibly-empty
/// inputs at the caller's boundary.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Numerically-stable log-sum-exp.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() && m < 0.0 {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Numerically-stable softmax.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let lse = logsumexp(xs);
    xs.iter().map(|&x| (x - lse).exp()).collect()
}

/// Logistic sigmoid with guard against overflow.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0.0 for fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Index of the maximum value, with *deterministic* first-occurrence
/// tie-breaking. Panics on empty input.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// All indices attaining the maximum (for randomized tie-breaking by the
/// selection strategies, which matters when scores are flat early on).
pub fn argmax_set(xs: &[f64]) -> Vec<usize> {
    assert!(!xs.is_empty(), "argmax_set of empty slice");
    let mx = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    xs.iter().enumerate().filter(|&(_, &x)| x == mx).map(|(i, _)| i).collect()
}

/// KL divergence `KL(p ‖ q)` for discrete distributions (natural log).
/// Entries where `p == 0` contribute zero; `q` entries are floored at a tiny
/// epsilon to keep the result finite.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    let eps = 1e-12;
    p.iter()
        .zip(q)
        .filter(|&(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / qi.max(eps)).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_uniform_binary() {
        assert!((binary_entropy(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_zero() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
    }

    #[test]
    fn entropy_symmetric() {
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 33.0), 7.0);
    }

    #[test]
    fn logsumexp_stable_for_large_inputs() {
        let v = [1000.0, 1000.0];
        assert!((logsumexp(&v) - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
    }

    #[test]
    fn logsumexp_empty_like() {
        assert_eq!(logsumexp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_normalizes() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.138_089_935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax_set(&[1.0, 3.0, 3.0]), vec![1, 2]);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.2, 0.8];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_for_different() {
        assert!(kl_divergence(&[0.9, 0.1], &[0.5, 0.5]) > 0.0);
    }

    proptest! {
        #[test]
        fn prop_entropy_nonneg_bounded(p in 0.0f64..=1.0) {
            let h = binary_entropy(p);
            prop_assert!(h >= 0.0);
            prop_assert!(h <= std::f64::consts::LN_2 + 1e-12);
        }

        #[test]
        fn prop_softmax_is_distribution(
            xs in proptest::collection::vec(-50.0f64..50.0, 1..10),
        ) {
            let s = softmax(&xs);
            prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn prop_percentile_monotone_in_p(
            mut v in proptest::collection::vec(-100.0f64..100.0, 2..40),
            p1 in 0.0f64..=100.0,
            p2 in 0.0f64..=100.0,
        ) {
            v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile_of_sorted(&v, lo) <= percentile_of_sorted(&v, hi) + 1e-12);
        }

        #[test]
        fn prop_percentile_within_range(
            v in proptest::collection::vec(-100.0f64..100.0, 1..40),
            p in 0.0f64..=100.0,
        ) {
            let x = percentile(&v, p);
            let mn = v.iter().copied().fold(f64::INFINITY, f64::min);
            let mx = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(x >= mn - 1e-12 && x <= mx + 1e-12);
        }

        #[test]
        fn prop_kl_nonneg(
            a in proptest::collection::vec(0.01f64..1.0, 2..6),
        ) {
            let total_a: f64 = a.iter().sum();
            let p: Vec<f64> = a.iter().map(|x| x / total_a).collect();
            let n = p.len() as f64;
            let q: Vec<f64> = vec![1.0 / n; p.len()];
            prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        }
    }
}

//! Inverted index: primitive id → sorted list of covering example ids.
//!
//! This is the data structure that makes SEU tractable (DESIGN.md §3). The
//! naive cost of scoring every candidate LF's utility is quadratic in the
//! corpus; with an inverted index over the primitive domain, per-iteration
//! primitive aggregates are computed in one pass over the index postings —
//! `O(nnz)` total.

use crate::csr::CsrMatrix;

/// Immutable inverted index from feature/primitive id to the sorted example
/// ids containing it.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// CSR-style postings: `offsets[z]..offsets[z+1]` indexes into `postings`.
    offsets: Vec<usize>,
    postings: Vec<u32>,
    n_docs: usize,
}

impl InvertedIndex {
    /// Build from per-document primitive-id lists.
    ///
    /// `docs[i]` is the set of primitive ids present in example `i`
    /// (duplicates allowed; they are collapsed). `n_primitives` is the size
    /// of the primitive domain `Z`.
    pub fn from_docs(docs: &[Vec<u32>], n_primitives: usize) -> Self {
        let dedup: Vec<Vec<u32>> = docs
            .iter()
            .map(|d| {
                let mut ids = d.clone();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        Self::from_sorted_docs(&dedup, n_primitives)
    }

    /// Build from per-document primitive-id lists that are already sorted
    /// and deduplicated, skipping the normalization copy `from_docs` pays.
    ///
    /// This is the path `PrimitiveCorpus` uses after normalizing its own
    /// document lists (in parallel), so corpus construction sorts each
    /// list exactly once.
    pub fn from_sorted_docs(docs: &[Vec<u32>], n_primitives: usize) -> Self {
        let mut counts = vec![0usize; n_primitives];
        for d in docs {
            debug_assert!(d.windows(2).all(|w| w[0] < w[1]), "doc list not sorted/deduped");
            for &z in d {
                assert!((z as usize) < n_primitives, "primitive {z} out of domain");
                counts[z as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n_primitives + 1);
        offsets.push(0usize);
        for z in 0..n_primitives {
            offsets.push(offsets[z] + counts[z]);
        }
        let mut cursor = offsets.clone();
        let mut postings = vec![0u32; offsets[n_primitives]];
        for (doc_id, ids) in docs.iter().enumerate() {
            for &z in ids {
                postings[cursor[z as usize]] = doc_id as u32;
                cursor[z as usize] += 1;
            }
        }
        Self { offsets, postings, n_docs: docs.len() }
    }

    /// Build from the non-zero pattern of a CSR feature matrix.
    ///
    /// CSR rows already hold strictly-increasing column ids, so this is a
    /// direct counting sort over the stored pattern — no intermediate
    /// per-document id lists are materialized.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let offsets = m.column_offsets();
        let mut cursor = offsets.clone();
        let mut postings = vec![0u32; offsets[m.n_cols()]];
        for (doc_id, row) in m.rows().enumerate() {
            for &z in row.indices {
                postings[cursor[z as usize]] = doc_id as u32;
                cursor[z as usize] += 1;
            }
        }
        Self { offsets, postings, n_docs: m.n_rows() }
    }

    /// Number of primitives in the domain.
    pub fn n_primitives(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Sorted example ids containing primitive `z` (its *coverage set*).
    #[inline]
    pub fn postings(&self, z: u32) -> &[u32] {
        let z = z as usize;
        &self.postings[self.offsets[z]..self.offsets[z + 1]]
    }

    /// Document frequency of primitive `z`.
    #[inline]
    pub fn df(&self, z: u32) -> usize {
        self.postings(z).len()
    }

    /// Total posting entries (== nnz of the binary doc-primitive matrix).
    pub fn total_postings(&self) -> usize {
        self.postings.len()
    }

    /// Iterate `(z, postings)` over primitives with non-empty coverage.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u32, &[u32])> {
        (0..self.n_primitives() as u32)
            .map(move |z| (z, self.postings(z)))
            .filter(|(_, p)| !p.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SparseVec;
    use proptest::prelude::*;

    #[test]
    fn basic_postings() {
        let docs = vec![vec![0, 2], vec![2], vec![1, 2, 1]];
        let idx = InvertedIndex::from_docs(&docs, 4);
        assert_eq!(idx.postings(0), &[0]);
        assert_eq!(idx.postings(1), &[2]);
        assert_eq!(idx.postings(2), &[0, 1, 2]);
        assert_eq!(idx.postings(3), &[] as &[u32]);
        assert_eq!(idx.df(2), 3);
        assert_eq!(idx.n_docs(), 3);
        assert_eq!(idx.n_primitives(), 4);
    }

    #[test]
    fn duplicates_collapsed() {
        let docs = vec![vec![1, 1, 1]];
        let idx = InvertedIndex::from_docs(&docs, 2);
        assert_eq!(idx.postings(1), &[0]);
        assert_eq!(idx.total_postings(), 1);
    }

    #[test]
    fn from_csr_matches_from_docs() {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0), (2, 0.5)], 4),
            SparseVec::from_pairs(vec![(2, 2.0)], 4),
        ];
        let m = CsrMatrix::from_rows(&rows, 4);
        let idx = InvertedIndex::from_csr(&m);
        assert_eq!(idx.postings(2), &[0, 1]);
        assert_eq!(idx.postings(0), &[0]);
    }

    #[test]
    fn iter_nonempty_skips_empty() {
        let docs = vec![vec![0], vec![3]];
        let idx = InvertedIndex::from_docs(&docs, 5);
        let zs: Vec<u32> = idx.iter_nonempty().map(|(z, _)| z).collect();
        assert_eq!(zs, vec![0, 3]);
    }

    proptest! {
        #[test]
        fn prop_postings_sorted_and_complete(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 0..10), 0..15),
        ) {
            let idx = InvertedIndex::from_docs(&docs, 20);
            // Postings are sorted & unique.
            for z in 0..20u32 {
                let p = idx.postings(z);
                for w in p.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
            // Membership is exactly the doc containment relation.
            for (doc_id, d) in docs.iter().enumerate() {
                for z in 0..20u32 {
                    let contains = d.contains(&z);
                    let indexed = idx.postings(z).binary_search(&(doc_id as u32)).is_ok();
                    prop_assert_eq!(contains, indexed);
                }
            }
        }
    }
}

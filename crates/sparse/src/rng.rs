//! Deterministic random-number utilities.
//!
//! All stochastic components in the reproduction (data generators, simulated
//! users, model initialization, selection tie-breaking) draw from [`DetRng`],
//! a self-contained xoshiro256++ generator seeded through SplitMix64. The
//! implementation is dependency-free so the workspace builds hermetically;
//! keeping a single wrapper type centralizes the samplers the system needs
//! (Gaussian via Box–Muller, weighted choice, partial Fisher–Yates subset
//! sampling) and guarantees bit-for-bit reproducibility from a seed.

/// Deterministic RNG used across the workspace.
///
/// Cloning is intentionally not implemented: every consumer should either
/// own its `DetRng` (seeded from an experiment-level seed) or derive a
/// sub-stream with [`DetRng::fork`], which produces an independent stream
/// so that adding draws to one component does not perturb another.
#[derive(Debug)]
pub struct DetRng {
    state: [u64; 4],
    /// Cached second Gaussian variate from Box–Muller.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a new deterministic RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 seed expansion, the recommended initializer for
        // xoshiro-family generators (avoids all-zero and low-entropy
        // states for small seeds).
        let mut s = seed;
        Self {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Export the raw generator state for checkpointing: the xoshiro256++
    /// state words plus the cached Box–Muller spare, exactly enough to
    /// resume the stream bit-for-bit with [`DetRng::from_raw_state`].
    pub fn raw_state(&self) -> ([u64; 4], Option<f64>) {
        (self.state, self.gauss_spare)
    }

    /// Rebuild a generator from a state exported by [`DetRng::raw_state`].
    ///
    /// This is a checkpoint-restore entry point, not a seeding API — use
    /// [`DetRng::new`] to start a fresh stream. Returns `None` for the
    /// all-zero state, which is a fixed point of xoshiro256++ (the stream
    /// would emit zeros forever) and is unreachable from `DetRng::new`, so
    /// it can only arise from a corrupted or hand-crafted checkpoint.
    pub fn from_raw_state(state: [u64; 4], gauss_spare: Option<f64>) -> Option<Self> {
        if state == [0; 4] {
            return None;
        }
        Some(Self { state, gauss_spare })
    }

    /// Derive an independent sub-stream identified by `salt`.
    ///
    /// Forking with distinct salts yields streams that do not interact, so a
    /// component can be added or removed without shifting the draws seen by
    /// the others — important for ablation experiments that must differ only
    /// in the ablated component.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        // Mix a fresh draw with the salt via splitmix64 finalization.
        let mut z = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::new(z)
    }

    /// Uniform `f64` in `[0, 1)` (53-bit precision).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::index called with n = 0");
        // Lemire's multiply-shift bounded generation with rejection of the
        // biased low-word zone.
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard Gaussian variate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Gaussian with mean `mu` and standard deviation `sigma`.
    #[inline]
    pub fn gaussian_with(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.gaussian()
    }

    /// Sample from a geometric-ish document-length distribution clamped to
    /// `[min_len, max_len]`: `min_len + round(|N(0, spread)|)`.
    pub fn length(&mut self, min_len: usize, mean_len: usize, max_len: usize) -> usize {
        let spread = (mean_len.saturating_sub(min_len)) as f64;
        let draw =
            min_len as f64 + self.gaussian().abs() * spread * 0.8 + self.uniform() * spread * 0.4;
        (draw.round() as usize).clamp(min_len, max_len)
    }

    /// Uniformly choose an element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Weighted choice: returns an index `i` with probability proportional
    /// to `weights[i]`. Non-finite or negative weights are treated as zero.
    /// Panics if all weights are zero/invalid or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "choose_weighted on empty slice");
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().copied().map(clean).sum();
        assert!(total > 0.0, "choose_weighted: all weights are zero");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = clean(w);
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: return the last index with positive weight.
        weights
            .iter()
            .rposition(|&w| clean(w) > 0.0)
            // invariant: the caller-facing precondition (asserted above)
            // is a positive total weight, so some weight is positive.
            .expect("choose_weighted: positive weight must exist")
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        if k == 0 {
            return Vec::new();
        }
        // Partial Fisher–Yates over an index array; O(n) setup is fine at
        // the corpus sizes used here, and exact/deterministic.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root1 = DetRng::new(7);
        let mut root2 = DetRng::new(7);
        let mut fork_a = root1.fork(1);
        // Consuming from fork_a must not change what root's *next* fork sees
        // relative to an identical root that never touched fork_a.
        for _ in 0..10 {
            fork_a.uniform();
        }
        let _ = root2.fork(1);
        let mut f1 = root1.fork(2);
        let mut f2 = root2.fork(2);
        assert_eq!(f1.uniform().to_bits(), f2.uniform().to_bits());
    }

    #[test]
    fn index_within_bounds() {
        let mut rng = DetRng::new(3);
        for n in 1..40usize {
            for _ in 0..20 {
                assert!(rng.index(n) < n);
            }
        }
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = DetRng::new(29);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.index(8)] += 1;
        }
        let expected = draws as f64 / 8.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.05, "counts {counts:?}");
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut rng = DetRng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = DetRng::new(5);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = DetRng::new(9);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn choose_weighted_ignores_nan_and_negative() {
        let mut rng = DetRng::new(10);
        let weights = [f64::NAN, -5.0, 2.0];
        for _ in 0..100 {
            assert_eq!(rng.choose_weighted(&weights), 2);
        }
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn choose_weighted_all_zero_panics() {
        let mut rng = DetRng::new(1);
        rng.choose_weighted(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = DetRng::new(17);
        let sample = rng.sample_indices(100, 30);
        assert_eq!(sample.len(), 30);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 30);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_is_permutation() {
        let mut rng = DetRng::new(19);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn length_clamped() {
        let mut rng = DetRng::new(23);
        for _ in 0..1000 {
            let l = rng.length(5, 20, 60);
            assert!((5..=60).contains(&l));
        }
    }
}

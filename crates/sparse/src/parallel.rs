//! Deterministic data-parallel helpers built on `std::thread::scope`.
//!
//! The hermetic build environment has no `rayon`, so this module provides
//! the small slice-parallel surface the workspace's hot paths need:
//! indexed map over a shared slice ([`par_map`]), in-place mutation
//! ([`par_for_each_mut`]), and a plain index-range map ([`par_map_range`]).
//!
//! Design rules:
//!
//! - **Determinism:** results are returned in input order and every
//!   element is computed by a pure call of the supplied closure, so a
//!   parallel run is bit-identical to the serial one. The differential
//!   tests in `nemo-core` rely on this.
//! - **Small inputs stay serial:** below [`MIN_PARALLEL_ITEMS`] the
//!   closure runs inline — thread spawn costs would dominate the toy
//!   corpora used in unit tests.
//! - **Bounded threads:** worker count is `available_parallelism`
//!   clamped to [`MAX_THREADS`], overridable with the `NEMO_THREADS`
//!   environment variable (`NEMO_THREADS=1` forces serial execution
//!   everywhere, useful for profiling and bisection).

use std::num::NonZeroUsize;

/// Inputs smaller than this run serially.
pub const MIN_PARALLEL_ITEMS: usize = 2048;

/// Hard cap on worker threads (diminishing returns beyond this for the
/// memory-bound kernels here).
pub const MAX_THREADS: usize = 16;

/// Number of worker threads used for parallel sections.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("NEMO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(MAX_THREADS)
}

/// Map `f(i, &items[i])` over a slice, returning results in input order.
///
/// Parallel when the input is large enough; always equivalent to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_min(items, MIN_PARALLEL_ITEMS, f)
}

/// [`par_map`] with a caller-chosen parallelism threshold, for inputs with
/// few but individually heavy items (e.g. one labeling function per item,
/// each scanning its whole coverage list).
pub fn par_map_min<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if items.len() < min_items.max(2) { 1 } else { num_threads().min(items.len()) };
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                let base = c * chunk;
                scope.spawn(move || {
                    slice.iter().enumerate().map(|(j, x)| f(base + j, x)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                // Re-raise with the original payload so assertion
                // messages from worker closures survive.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Partition `items` into at most [`num_threads`] contiguous chunks and
/// map each chunk with `f(base, chunk)` (`base` = index of the chunk's
/// first item), concatenating the per-chunk vectors in input order.
///
/// Unlike [`par_map`], the closure sees a whole partition at once, so
/// per-worker state (e.g. a distance scratch accumulator) is allocated
/// once per chunk instead of once per item. Inputs below `min_items` run
/// as a single serial chunk. Results are deterministic: the output equals
/// `f(0, items)` run serially whenever `f` itself is item-wise.
pub fn par_flat_map_chunks<T, R, F>(items: &[T], min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = if items.len() < min_items.max(2) { 1 } else { num_threads().min(items.len()) };
    if threads <= 1 {
        return f(0, items);
    }
    let chunk = items.len().div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                scope.spawn(move || f(c * chunk, slice))
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                // Re-raise with the original payload so assertion
                // messages from worker closures survive.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Map `f(i)` over `0..n`, returning results in index order.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let f = &f;
                let end = (start + chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                // Re-raise with the original payload so assertion
                // messages from worker closures survive.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Apply `f(i, &mut items[i])` to every element in place.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            let base = c * chunk;
            scope.spawn(move || {
                for (j, x) in slice.iter_mut().enumerate() {
                    f(base + j, x);
                }
            });
        }
    });
}

/// Split `items` into fixed-width `chunk_size` chunks and apply
/// `f(base, chunk)` to every chunk (`base` = index of the chunk's first
/// item), distributing whole chunks over workers.
///
/// The chunk grid depends only on `items.len()` and `chunk_size`, never on
/// the worker count, so any per-chunk state `f` derives from `base` (shard
/// boundaries, accumulator extents) is identical under `NEMO_THREADS=1`
/// and `NEMO_THREADS=16`. Chunks are disjoint `&mut` regions: workers
/// never share elements, and the serial path visits the same chunks in
/// the same order.
pub fn par_for_each_fixed_chunk_mut<T, F>(items: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if items.is_empty() {
        return;
    }
    let n = items.len();
    let n_chunks = n.div_ceil(chunk_size);
    let threads = num_threads().min(n_chunks);
    if threads <= 1 {
        for (c, chunk) in items.chunks_mut(chunk_size).enumerate() {
            f(c * chunk_size, chunk);
        }
        return;
    }
    // Whole chunks per worker: region boundaries land on chunk boundaries,
    // so the per-chunk bases a worker sees match the serial enumeration.
    let per_worker = n_chunks.div_ceil(threads);
    let region = per_worker * chunk_size;
    std::thread::scope(|scope| {
        for (w, slice) in items.chunks_mut(region).enumerate() {
            let f = &f;
            let base = w * region;
            scope.spawn(move || {
                for (c, chunk) in slice.chunks_mut(chunk_size).enumerate() {
                    f(base + c * chunk_size, chunk);
                }
            });
        }
    });
}

/// Two-slice variant of [`par_for_each_fixed_chunk_mut`]: `a` and `b` must
/// be the same length and are chunked on the same fixed grid, so `f`
/// receives matching `(base, a_chunk, b_chunk)` triples. Used by the
/// sharded distance kernels, which update a scratch accumulator chunk and
/// an output chunk for the same row range in one pass.
pub fn par_for_each_fixed_chunk2_mut<A, B, F>(a: &mut [A], b: &mut [B], chunk_size: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    assert_eq!(a.len(), b.len(), "fixed-chunk slices must be the same length");
    if a.is_empty() {
        return;
    }
    let n = a.len();
    let n_chunks = n.div_ceil(chunk_size);
    let threads = num_threads().min(n_chunks);
    if threads <= 1 {
        for (c, (ca, cb)) in a.chunks_mut(chunk_size).zip(b.chunks_mut(chunk_size)).enumerate() {
            f(c * chunk_size, ca, cb);
        }
        return;
    }
    let per_worker = n_chunks.div_ceil(threads);
    let region = per_worker * chunk_size;
    std::thread::scope(|scope| {
        for (w, (ra, rb)) in a.chunks_mut(region).zip(b.chunks_mut(region)).enumerate() {
            let f = &f;
            let base = w * region;
            scope.spawn(move || {
                for (c, (ca, cb)) in
                    ra.chunks_mut(chunk_size).zip(rb.chunks_mut(chunk_size)).enumerate()
                {
                    f(base + c * chunk_size, ca, cb);
                }
            });
        }
    });
}

/// Apply `f(i, &mut items[i])` to every element, distributing items over
/// workers dynamically through a shared work queue (work stealing).
///
/// The chunked schedulers above pre-partition the slice into equal
/// contiguous regions, which is the right shape for uniform data-parallel
/// kernels but suffers head-of-line blocking when items are few, coarse,
/// and heterogeneous — e.g. one interactive session round per item, where
/// a cold session (restore + relearn) can cost 10× a warm one. Here idle
/// workers keep pulling the next unclaimed item, so stragglers no longer
/// serialize the batch.
///
/// Every item is still processed by exactly one pure `f` call, so results
/// are bit-identical to the serial loop under any worker count. There is
/// no [`MIN_PARALLEL_ITEMS`] threshold: callers hand this scheduler
/// coarse tasks where per-item work dwarfs the queue lock.
pub fn par_for_each_stealing<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_for_each_stealing_with(items, num_threads(), f)
}

/// [`par_for_each_stealing`] with an explicit worker count (clamped to
/// `1..=`[`MAX_THREADS`]), for callers that manage their own worker
/// budget — e.g. a session pool pinning a determinism test to fixed
/// counts independent of the ambient `NEMO_THREADS` setting.
pub fn par_for_each_stealing_with<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = workers.clamp(1, MAX_THREADS).min(items.len());
    if threads <= 1 {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    // The queue is the iterator itself: each `next()` hands a worker an
    // exclusive `&mut` to one item, so items never race and the lock is
    // held only for the handoff, not the work.
    let queue = std::sync::Mutex::new(items.iter_mut().enumerate());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || loop {
                    // A worker panic poisons the queue; fellow workers
                    // then stop pulling and the panic is re-raised below.
                    let next = match queue.lock() {
                        Ok(mut guard) => guard.next(),
                        Err(_) => None,
                    };
                    match next {
                        Some((i, x)) => f(i, x),
                        None => break,
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                // Re-raise with the original payload so assertion
                // messages from worker closures survive.
                std::panic::resume_unwind(payload);
            }
        }
    });
}

fn effective_threads(n: usize) -> usize {
    if n < MIN_PARALLEL_ITEMS {
        1
    } else {
        num_threads().min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_small() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| x * 2 + i as u64);
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_matches_serial_large() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_range_matches_serial() {
        let out = par_map_range(10_000, |i| i * i);
        let expected: Vec<usize> = (0..10_000).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_for_each_mut_touches_every_element() {
        let mut items: Vec<usize> = vec![0; 10_000];
        par_for_each_mut(&mut items, |i, x| *x = i + 1);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn par_flat_map_chunks_matches_serial() {
        let items: Vec<u64> = (0..10_000).collect();
        let map_chunk = |base: usize, chunk: &[u64]| -> Vec<u64> {
            chunk.iter().enumerate().map(|(j, &x)| x * 3 + (base + j) as u64).collect()
        };
        let out = par_flat_map_chunks(&items, 2, map_chunk);
        assert_eq!(out, map_chunk(0, &items));
    }

    #[test]
    fn par_flat_map_chunks_small_is_one_chunk() {
        let items: Vec<u32> = (0..5).collect();
        let out = par_flat_map_chunks(&items, 100, |base, chunk| {
            assert_eq!(base, 0);
            assert_eq!(chunk.len(), 5);
            chunk.to_vec()
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert!(par_map_range(0, |i| i).is_empty());
        assert!(par_flat_map_chunks(&empty, 0, |_, c| c.to_vec()).is_empty());
        let mut e2: Vec<u32> = Vec::new();
        par_for_each_mut(&mut e2, |_, _| {});
    }

    #[test]
    fn fixed_chunk_mut_visits_every_chunk_once() {
        for n in [0usize, 1, 7, 100, 4096, 10_000] {
            for chunk in [1usize, 3, 64, 4096] {
                let mut items: Vec<usize> = vec![0; n];
                par_for_each_fixed_chunk_mut(&mut items, chunk, |base, c| {
                    // The base must sit on the fixed grid and the chunk must
                    // be full-width except possibly the last.
                    assert_eq!(base % chunk, 0);
                    assert!(c.len() == chunk || base + c.len() == n);
                    for (j, x) in c.iter_mut().enumerate() {
                        *x += base + j + 1;
                    }
                });
                for (i, &x) in items.iter().enumerate() {
                    assert_eq!(x, i + 1, "n={n} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn fixed_chunk2_mut_pairs_same_ranges() {
        let n = 10_000;
        let mut a: Vec<usize> = vec![0; n];
        let mut b: Vec<usize> = vec![0; n];
        par_for_each_fixed_chunk2_mut(&mut a, &mut b, 257, |base, ca, cb| {
            assert_eq!(ca.len(), cb.len());
            for (j, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                *x = base + j;
                *y = 2 * (base + j);
            }
        });
        for i in 0..n {
            assert_eq!(a[i], i);
            assert_eq!(b[i], 2 * i);
        }
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn fixed_chunk2_rejects_mismatched_lengths() {
        let mut a = [0u8; 3];
        let mut b = [0u8; 4];
        par_for_each_fixed_chunk2_mut(&mut a, &mut b, 2, |_, _, _| {});
    }

    #[test]
    fn stealing_touches_every_element_once() {
        for workers in [1usize, 2, 4, 16] {
            for n in [0usize, 1, 5, 100, 3000] {
                let mut items: Vec<usize> = vec![0; n];
                par_for_each_stealing_with(&mut items, workers, |i, x| *x += i + 1);
                for (i, &x) in items.iter().enumerate() {
                    assert_eq!(x, i + 1, "workers={workers} n={n}");
                }
            }
        }
    }

    #[test]
    fn stealing_drains_heterogeneous_queue() {
        // Items with wildly uneven costs must all complete exactly once.
        let mut items: Vec<(u64, u64)> = (0..64).map(|i| (i, 0)).collect();
        par_for_each_stealing_with(&mut items, 4, |_, item| {
            let spins = if item.0 % 7 == 0 { 20_000 } else { 10 };
            let mut acc = item.0;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            item.1 = acc | 1;
        });
        assert!(items.iter().all(|&(_, done)| done != 0));
    }

    #[test]
    fn stealing_default_matches_serial() {
        let mut a: Vec<u32> = (0..500).collect();
        let mut b = a.clone();
        par_for_each_stealing(&mut a, |i, x| *x = x.wrapping_mul(3).wrapping_add(i as u32));
        for (i, x) in b.iter_mut().enumerate() {
            *x = x.wrapping_mul(3).wrapping_add(i as u32);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_is_bounded() {
        let n = num_threads();
        assert!((1..=MAX_THREADS).contains(&n));
    }
}

//! # nemo-sparse
//!
//! Numeric substrate for the Nemo reproduction: sparse and dense vectors,
//! distance kernels, an inverted index, deterministic random-number helpers,
//! scoped data-parallel primitives, and the small statistics toolbox
//! (entropy, percentiles, softmax) that the rest of the system is built on.
//!
//! Everything here is deliberately dependency-free and deterministic: all
//! randomness flows through [`rng::DetRng`], a self-contained xoshiro256++
//! generator, so that every experiment in the benchmark harness is exactly
//! reproducible from its seed; and the [`parallel`] helpers return results
//! in input order, so parallel runs are bit-identical to serial ones.

#![warn(missing_docs)]

pub mod csc;
pub mod csr;
pub mod dense;
pub mod distance;
pub mod index;
pub mod parallel;
pub mod rng;
pub mod stats;

pub use csc::CscIndex;
pub use csr::{CsrMatrix, SparseVec};
pub use dense::{DenseBackend, DenseMatrix};
pub use distance::{Distance, DistanceScratch};
pub use index::InvertedIndex;
pub use rng::DetRng;

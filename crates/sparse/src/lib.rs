//! # nemo-sparse
//!
//! Numeric substrate for the Nemo reproduction: sparse and dense vectors,
//! distance kernels, an inverted index, deterministic random-number helpers,
//! and the small statistics toolbox (entropy, percentiles, softmax) that the
//! rest of the system is built on.
//!
//! Everything here is deliberately dependency-light and deterministic: all
//! randomness flows through [`rng::DetRng`], which wraps a seeded
//! [`rand::rngs::StdRng`] so that every experiment in the benchmark harness
//! is exactly reproducible from its seed.

pub mod csr;
pub mod dense;
pub mod distance;
pub mod index;
pub mod rng;
pub mod stats;

pub use csr::{CsrMatrix, SparseVec};
pub use dense::DenseMatrix;
pub use distance::Distance;
pub use index::InvertedIndex;
pub use rng::DetRng;

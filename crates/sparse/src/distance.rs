//! Distance kernels for the LF contextualizer (paper Eq. 4).
//!
//! The paper's contextualizer needs `dist(x, x_λ)` from each development
//! data point to every example; in the text domain this is cosine or
//! euclidean distance over TF-IDF vectors (Sec. 4.3, Table 9), and in the
//! image domain the same over dense embeddings. Both sparse and dense
//! feature storage expose a "one point vs all rows" kernel, which is the
//! access pattern the contextualizer caches.
//!
//! Three tiers of sparse kernel, all producing **bit-identical** results
//! (per-row dot products accumulate matching terms in ascending column
//! order in every tier, so the floating-point operations are literally the
//! same):
//!
//! 1. **Naive row-major** ([`Distance::sparse_point_to_all_into`]) — a
//!    sorted-merge dot against every row; `O(nnz + n·nnz(pivot))`. Kept as
//!    the differential reference and regression baseline.
//! 2. **Indexed** ([`Distance::sparse_row_to_all_indexed_into`]) — walks
//!    only the posting lists of the pivot's nonzero columns in a
//!    [`CscIndex`], scattering into a reusable [`DistanceScratch`]
//!    accumulator; `O(n + Σ_{j ∈ pivot} df(j))`. Rows sharing no terms
//!    with the pivot are never touched.
//! 3. **Batched** ([`Distance::sparse_point_to_all_many`]) — one call per
//!    round registering many pivots, partitioned over the pivots via
//!    [`crate::parallel`] with one scratch per worker.
//! 4. **Sharded single-pivot**
//!    ([`Distance::sparse_row_to_all_indexed_sharded_into`]) — one pivot's
//!    posting lists split over fixed contiguous row ranges
//!    ([`INDEXED_SHARD_ROWS`] rows per shard), whole shards distributed
//!    over workers. Each shard accumulates its own rows' terms in the same
//!    ascending-column order as tiers 1–2, so the result is bit-identical
//!    for *any* worker count — the shard grid depends only on the row
//!    count. Batches with fewer pivots than workers route through this
//!    kernel automatically.
//!
//! The dense kernels mirror this with a [`DenseBackend`] switch (blocked
//! multi-accumulator reduction vs the scalar reference; see
//! [`crate::dense`]) and a row-block-sharded point-to-all
//! ([`Distance::dense_row_to_all_sharded_into`]).

use crate::csc::CscIndex;
use crate::csr::{CsrMatrix, SparseRow};
use crate::dense::{self, DenseBackend, DenseMatrix};
use crate::parallel;

/// Rows per shard of a sharded single-pivot indexed query. The shard grid
/// is a constant of the kernel (never derived from the thread count), so
/// every partial sum is computed identically under any `NEMO_THREADS`.
pub const INDEXED_SHARD_ROWS: usize = 4096;

/// Rows per shard of the sharded dense point-to-all (dense rows are
/// `O(n_cols)` each, so shards are smaller than the sparse ones).
pub const DENSE_SHARD_ROWS: usize = 1024;

/// Below this many target rows a single-pivot query stays serial: thread
/// spawns cost tens of microseconds, which dominates small pools.
pub const MIN_SHARDED_ROWS: usize = 8192;

/// Reusable accumulator for the indexed sparse kernels: one `f64` dot
/// slot per target row, zeroed at the start of every call. Keeping it
/// outside the kernel makes repeated point-to-all calls allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DistanceScratch {
    dots: Vec<f64>,
}

impl DistanceScratch {
    /// An empty scratch; it sizes itself to the target matrix on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroed dot accumulator of length `n_rows`.
    fn reset(&mut self, n_rows: usize) -> &mut [f64] {
        self.dots.clear();
        self.dots.resize(n_rows, 0.0);
        &mut self.dots
    }
}

/// Distance (dissimilarity) function between feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Distance {
    /// `1 - cos(a, b)`; in `[0, 2]`. The paper's default for text (Table 9
    /// shows it dominating euclidean).
    #[default]
    Cosine,
    /// Standard euclidean distance.
    Euclidean,
}

impl Distance {
    /// Human-readable name used by the benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Distance::Cosine => "cosine",
            Distance::Euclidean => "euclidean",
        }
    }

    /// Distance between two sparse rows.
    pub fn sparse(self, a: &SparseRow<'_>, b: &SparseRow<'_>) -> f64 {
        match self {
            Distance::Cosine => cosine_distance(a.dot(b), a.sq_norm(), b.sq_norm()),
            Distance::Euclidean => {
                // ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a·b, guarded against
                // tiny negative round-off.
                let sq = a.sq_norm() + b.sq_norm() - 2.0 * a.dot(b);
                sq.max(0.0).sqrt()
            }
        }
    }

    /// Distance between two dense vectors.
    pub fn dense(self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            Distance::Cosine => {
                let dot = dense::dot(a, b);
                let na: f64 = a.iter().map(|&v| (v as f64) * (v as f64)).sum();
                let nb: f64 = b.iter().map(|&v| (v as f64) * (v as f64)).sum();
                cosine_distance(dot, na, nb)
            }
            Distance::Euclidean => dense::sq_euclidean(a, b).sqrt(),
        }
    }

    /// Finish a distance from a precomputed dot product and squared norms.
    #[inline]
    fn finish(self, dot: f64, pivot_sq: f64, row_sq: f64) -> f64 {
        match self {
            Distance::Cosine => cosine_distance(dot, pivot_sq, row_sq),
            Distance::Euclidean => {
                // ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a·b, guarded against
                // tiny negative round-off.
                let sq = pivot_sq + row_sq - 2.0 * dot;
                sq.max(0.0).sqrt()
            }
        }
    }

    /// Distances from row `pivot` of a CSR matrix to every row, via the
    /// naive row-major scan (allocating wrapper over
    /// [`Distance::sparse_point_to_all_into`]).
    ///
    /// `sq_norms` must be the cached per-row squared norms
    /// ([`CsrMatrix::row_sq_norms`]).
    pub fn sparse_point_to_all(self, m: &CsrMatrix, pivot: usize, sq_norms: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.sparse_point_to_all_into(m, pivot, sq_norms, &mut out);
        out
    }

    /// Naive row-major point-to-all into a caller-owned buffer: `out` is
    /// cleared and refilled, so repeated calls are allocation-free once the
    /// buffer has grown to the pool size.
    pub fn sparse_point_to_all_into(
        self,
        m: &CsrMatrix,
        pivot: usize,
        sq_norms: &[f64],
        out: &mut Vec<f64>,
    ) {
        let p = m.row(pivot);
        self.sparse_row_to_all_into(&p, sq_norms[pivot], m, sq_norms, out);
    }

    /// Distances from row `pivot` of a dense matrix to every row.
    pub fn dense_point_to_all(self, m: &DenseMatrix, pivot: usize) -> Vec<f64> {
        let p: Vec<f32> = m.row(pivot).to_vec();
        (0..m.n_rows()).map(|r| self.dense(&p, m.row(r))).collect()
    }

    /// Distances from an arbitrary sparse `pivot` row to every row of `m`
    /// (the pivot may come from a *different* matrix in the same feature
    /// space, e.g. a training development point vs validation examples),
    /// via the naive row-major scan (allocating wrapper over
    /// [`Distance::sparse_row_to_all_into`]).
    ///
    /// `pivot_sq` is the pivot's squared norm; `sq_norms` the cached
    /// per-row squared norms of `m`.
    pub fn sparse_row_to_all(
        self,
        pivot: &SparseRow<'_>,
        pivot_sq: f64,
        m: &CsrMatrix,
        sq_norms: &[f64],
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.sparse_row_to_all_into(pivot, pivot_sq, m, sq_norms, &mut out);
        out
    }

    /// Naive row-major row-to-all into a caller-owned buffer.
    pub fn sparse_row_to_all_into(
        self,
        pivot: &SparseRow<'_>,
        pivot_sq: f64,
        m: &CsrMatrix,
        sq_norms: &[f64],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(sq_norms.len(), m.n_rows(), "sq_norms length mismatch");
        out.clear();
        out.reserve(m.n_rows());
        for (r, row) in m.rows().enumerate() {
            out.push(self.finish(pivot.dot(&row), pivot_sq, sq_norms[r]));
        }
    }

    /// Indexed point-to-all: distances from row `pivot` of `m` to every
    /// row, driven by `m`'s column-major companion `index`.
    ///
    /// Bit-identical to [`Distance::sparse_point_to_all_into`] (see the
    /// module docs), but only walks the posting lists of the pivot's
    /// nonzero columns.
    pub fn sparse_point_to_all_indexed_into(
        self,
        m: &CsrMatrix,
        index: &CscIndex,
        pivot: usize,
        sq_norms: &[f64],
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        let p = m.row(pivot);
        self.sparse_row_to_all_indexed_into(&p, sq_norms[pivot], index, sq_norms, scratch, out);
    }

    /// Indexed row-to-all: distances from an arbitrary sparse `pivot` row
    /// to every row of the matrix behind `index` (its [`CscIndex`]).
    ///
    /// The pivot's nonzero values are scattered through the posting lists
    /// of their columns into `scratch`'s per-row dot accumulator — rows
    /// sharing no terms with the pivot keep a zero dot and are only
    /// touched by the `O(n)` finish pass. `sq_norms` are the indexed
    /// matrix's cached squared row norms.
    pub fn sparse_row_to_all_indexed_into(
        self,
        pivot: &SparseRow<'_>,
        pivot_sq: f64,
        index: &CscIndex,
        sq_norms: &[f64],
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        let n = index.n_rows();
        assert_eq!(sq_norms.len(), n, "sq_norms length mismatch");
        let dots = scratch.reset(n);
        // Ascending pivot columns ⇒ each row's matching terms accumulate
        // in the same order as the sorted-merge dot: bit-identical sums.
        for (j, v) in pivot.iter() {
            let (rows, vals) = index.col(j);
            let v = v as f64;
            for (&r, &w) in rows.iter().zip(vals) {
                dots[r as usize] += v * w as f64;
            }
        }
        out.clear();
        out.reserve(n);
        for r in 0..n {
            out.push(self.finish(dots[r], pivot_sq, sq_norms[r]));
        }
    }

    /// Sharded indexed point-to-all: like
    /// [`Distance::sparse_point_to_all_indexed_into`] but parallel over
    /// fixed row ranges of the *single* query (allocating wrapper over
    /// [`Distance::sparse_row_to_all_indexed_sharded_into`]).
    pub fn sparse_point_to_all_indexed_sharded_into(
        self,
        m: &CsrMatrix,
        index: &CscIndex,
        pivot: usize,
        sq_norms: &[f64],
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        let p = m.row(pivot);
        self.sparse_row_to_all_indexed_sharded_into(
            &p,
            sq_norms[pivot],
            index,
            sq_norms,
            scratch,
            out,
        );
    }

    /// Sharded indexed row-to-all: one pivot query parallelized over fixed
    /// contiguous row ranges of the target matrix.
    ///
    /// The target rows are cut into [`INDEXED_SHARD_ROWS`]-row shards (a
    /// grid depending only on the row count). Each shard binary-searches
    /// every pivot column's posting list down to its own row range
    /// (posting lists are sorted by row id) and scatters those entries
    /// into its private slice of the scratch accumulator, then finishes
    /// its rows in place. A row's matching terms still accumulate in
    /// ascending column order — the same `f64` operations as the serial
    /// indexed kernel — so the output is **bit-identical** to
    /// [`Distance::sparse_row_to_all_indexed_into`] under any
    /// `NEMO_THREADS`, including 1. Small pools (below
    /// [`MIN_SHARDED_ROWS`]) and single-threaded configurations fall back
    /// to the serial kernel outright.
    pub fn sparse_row_to_all_indexed_sharded_into(
        self,
        pivot: &SparseRow<'_>,
        pivot_sq: f64,
        index: &CscIndex,
        sq_norms: &[f64],
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        let n = index.n_rows();
        if n < MIN_SHARDED_ROWS || parallel::num_threads() == 1 {
            return self
                .sparse_row_to_all_indexed_into(pivot, pivot_sq, index, sq_norms, scratch, out);
        }
        assert_eq!(sq_norms.len(), n, "sq_norms length mismatch");
        let dots = scratch.reset(n);
        out.clear();
        out.resize(n, 0.0);
        parallel::par_for_each_fixed_chunk2_mut(
            dots,
            out,
            INDEXED_SHARD_ROWS,
            |lo, dots_c, out_c| {
                let hi = lo + dots_c.len();
                for (j, v) in pivot.iter() {
                    let (rows, vals) = index.col(j);
                    // Narrow the posting list to this shard's row range.
                    let start = rows.partition_point(|&r| (r as usize) < lo);
                    let end = start + rows[start..].partition_point(|&r| (r as usize) < hi);
                    let v = v as f64;
                    for (&r, &w) in rows[start..end].iter().zip(&vals[start..end]) {
                        dots_c[r as usize - lo] += v * w as f64;
                    }
                }
                for (i, (&d, o)) in dots_c.iter().zip(out_c.iter_mut()).enumerate() {
                    *o = self.finish(d, pivot_sq, sq_norms[lo + i]);
                }
            },
        );
    }

    /// Batched indexed kernel: distances from each of `pivots` (rows of
    /// `src`) to every row of the matrix behind `index`, one vector per
    /// pivot, in pivot order.
    ///
    /// The batch is partitioned over the pivots via [`crate::parallel`];
    /// each worker reuses one [`DistanceScratch`] and output buffers are
    /// written exactly once, so a round registering many LFs does all its
    /// distance work in a single pass. `src` may be the indexed matrix
    /// itself (self-distances) or another matrix in the same feature space.
    ///
    /// Batches with fewer pivots than workers (the common
    /// one-LF-per-round interactive case) leave cores idle under
    /// pivot-level partitioning, so they route each query through the
    /// bit-identical sharded kernel
    /// ([`Distance::sparse_row_to_all_indexed_sharded_into`]) instead —
    /// the results are the same either way, only the parallel axis moves.
    pub fn sparse_point_to_all_many(
        self,
        src: &CsrMatrix,
        src_sq_norms: &[f64],
        pivots: &[usize],
        index: &CscIndex,
        target_sq_norms: &[f64],
    ) -> Vec<Vec<f64>> {
        if pivots.len() < parallel::num_threads() {
            let mut scratch = DistanceScratch::new();
            return pivots
                .iter()
                .map(|&p| {
                    let mut out = Vec::new();
                    self.sparse_row_to_all_indexed_sharded_into(
                        &src.row(p),
                        src_sq_norms[p],
                        index,
                        target_sq_norms,
                        &mut scratch,
                        &mut out,
                    );
                    out
                })
                .collect();
        }
        parallel::par_flat_map_chunks(pivots, 2, |_, chunk| {
            let mut scratch = DistanceScratch::new();
            chunk
                .iter()
                .map(|&p| {
                    let mut out = Vec::new();
                    self.sparse_row_to_all_indexed_into(
                        &src.row(p),
                        src_sq_norms[p],
                        index,
                        target_sq_norms,
                        &mut scratch,
                        &mut out,
                    );
                    out
                })
                .collect()
        })
    }

    /// Distances from an arbitrary dense `pivot` vector to every row of `m`.
    pub fn dense_row_to_all(self, pivot: &[f32], m: &DenseMatrix) -> Vec<f64> {
        (0..m.n_rows()).map(|r| self.dense(pivot, m.row(r))).collect()
    }

    /// Dense row-to-all with cached squared row norms, into a caller-owned
    /// buffer.
    ///
    /// Cosine reuses `pivot_sq`/`sq_norms` instead of re-deriving both
    /// norms per pair (bit-identical: cached norms are computed in the
    /// same summation order). Euclidean keeps the numerically-preferable
    /// difference form, which never consults the norms.
    pub fn dense_row_to_all_cached_into(
        self,
        pivot: &[f32],
        pivot_sq: f64,
        m: &DenseMatrix,
        sq_norms: &[f64],
        out: &mut Vec<f64>,
    ) {
        self.dense_row_to_all_cached_into_with(
            DenseBackend::Scalar,
            pivot,
            pivot_sq,
            m,
            sq_norms,
            out,
        );
    }

    /// [`Distance::dense_row_to_all_cached_into`] with an explicit
    /// [`DenseBackend`] choosing the per-row reduction kernel.
    ///
    /// `Scalar` reproduces the historical single-accumulator results
    /// bitwise; `Blocked` uses the multi-accumulator kernels from
    /// [`crate::dense`], which are deterministic but reassociate the sums
    /// (≤ ~1e-9 relative difference; see the `DenseBackend` docs). Norms
    /// are always the cached scalar-order sums, so the two backends differ
    /// only in the dot / squared-difference reduction.
    pub fn dense_row_to_all_cached_into_with(
        self,
        backend: DenseBackend,
        pivot: &[f32],
        pivot_sq: f64,
        m: &DenseMatrix,
        sq_norms: &[f64],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(sq_norms.len(), m.n_rows(), "sq_norms length mismatch");
        out.clear();
        out.reserve(m.n_rows());
        for (r, row) in m.rows().enumerate() {
            let d = match self {
                Distance::Cosine => cosine_distance(backend.dot(pivot, row), pivot_sq, sq_norms[r]),
                Distance::Euclidean => backend.sq_euclidean(pivot, row).sqrt(),
            };
            out.push(d);
        }
    }

    /// Sharded dense row-to-all: one pivot query parallelized over fixed
    /// [`DENSE_SHARD_ROWS`]-row blocks of `m`.
    ///
    /// Dense distances are computed row-independently, so the sharded
    /// result is trivially bit-identical to
    /// [`Distance::dense_row_to_all_cached_into_with`] for the same
    /// `backend` under any `NEMO_THREADS`; the fixed block grid keeps the
    /// work distribution itself deterministic. Small pools (below
    /// [`MIN_SHARDED_ROWS`]) and single-threaded configurations fall back
    /// to the serial kernel outright.
    pub fn dense_row_to_all_sharded_into(
        self,
        backend: DenseBackend,
        pivot: &[f32],
        pivot_sq: f64,
        m: &DenseMatrix,
        sq_norms: &[f64],
        out: &mut Vec<f64>,
    ) {
        let n = m.n_rows();
        if n < MIN_SHARDED_ROWS || parallel::num_threads() == 1 {
            return self
                .dense_row_to_all_cached_into_with(backend, pivot, pivot_sq, m, sq_norms, out);
        }
        assert_eq!(sq_norms.len(), n, "sq_norms length mismatch");
        out.clear();
        out.resize(n, 0.0);
        parallel::par_for_each_fixed_chunk_mut(out, DENSE_SHARD_ROWS, |lo, out_c| {
            for (i, o) in out_c.iter_mut().enumerate() {
                let r = lo + i;
                let row = m.row(r);
                *o = match self {
                    Distance::Cosine => {
                        cosine_distance(backend.dot(pivot, row), pivot_sq, sq_norms[r])
                    }
                    Distance::Euclidean => backend.sq_euclidean(pivot, row).sqrt(),
                };
            }
        });
    }

    /// Batched dense kernel: one distance vector per pivot row of `m`,
    /// partitioned over the pivots via [`crate::parallel`]. Scalar-backend
    /// wrapper over [`Distance::dense_point_to_all_many_with`].
    pub fn dense_point_to_all_many(
        self,
        m: &DenseMatrix,
        pivots: &[usize],
        sq_norms: &[f64],
    ) -> Vec<Vec<f64>> {
        self.dense_point_to_all_many_with(DenseBackend::Scalar, m, pivots, sq_norms)
    }

    /// Batched dense kernel with an explicit [`DenseBackend`]. Batches
    /// with fewer pivots than workers route each query through the
    /// bit-identical row-block-sharded kernel
    /// ([`Distance::dense_row_to_all_sharded_into`]) instead of leaving
    /// cores idle on pivot-level partitioning.
    pub fn dense_point_to_all_many_with(
        self,
        backend: DenseBackend,
        m: &DenseMatrix,
        pivots: &[usize],
        sq_norms: &[f64],
    ) -> Vec<Vec<f64>> {
        if pivots.len() < parallel::num_threads() {
            return pivots
                .iter()
                .map(|&p| {
                    let mut out = Vec::new();
                    self.dense_row_to_all_sharded_into(
                        backend,
                        m.row(p),
                        sq_norms[p],
                        m,
                        sq_norms,
                        &mut out,
                    );
                    out
                })
                .collect();
        }
        parallel::par_flat_map_chunks(pivots, 2, |_, chunk| {
            chunk
                .iter()
                .map(|&p| {
                    let mut out = Vec::new();
                    self.dense_row_to_all_cached_into_with(
                        backend,
                        m.row(p),
                        sq_norms[p],
                        m,
                        sq_norms,
                        &mut out,
                    );
                    out
                })
                .collect()
        })
    }
}

/// Cosine distance from precomputed dot product and squared norms.
///
/// Convention for degenerate inputs: if either vector is all-zero the
/// distance is defined as `1.0` (maximally dissimilar but finite), except
/// that the distance from the zero vector to itself is `0.0`. This keeps
/// percentile radii well-defined for empty documents.
fn cosine_distance(dot: f64, sq_a: f64, sq_b: f64) -> f64 {
    if sq_a == 0.0 && sq_b == 0.0 {
        return 0.0;
    }
    if sq_a == 0.0 || sq_b == 0.0 {
        return 1.0;
    }
    let cos = (dot / (sq_a.sqrt() * sq_b.sqrt())).clamp(-1.0, 1.0);
    1.0 - cos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SparseVec;
    use proptest::prelude::*;

    fn sv(pairs: &[(u32, f32)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim)
    }

    #[test]
    fn cosine_identical_is_zero() {
        let a = sv(&[(0, 1.0), (3, 2.0)], 8);
        let d = Distance::Cosine.sparse(&a.as_row(), &a.as_row());
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let a = sv(&[(0, 1.0)], 4);
        let b = sv(&[(1, 1.0)], 4);
        let d = Distance::Cosine.sparse(&a.as_row(), &b.as_row());
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_opposite_is_two() {
        let a = sv(&[(0, 1.0)], 4);
        let b = sv(&[(0, -1.0)], 4);
        let d = Distance::Cosine.sparse(&a.as_row(), &b.as_row());
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_zero_vector_convention() {
        let z = SparseVec::zeros(4);
        let a = sv(&[(0, 1.0)], 4);
        assert_eq!(Distance::Cosine.sparse(&z.as_row(), &a.as_row()), 1.0);
        assert_eq!(Distance::Cosine.sparse(&z.as_row(), &z.as_row()), 0.0);
    }

    #[test]
    fn euclidean_matches_dense_formula() {
        let a = sv(&[(0, 1.0), (1, 2.0)], 4);
        let b = sv(&[(1, 4.0), (3, 2.0)], 4);
        let want = ((1.0f64).powi(2) + (2.0f64 - 4.0).powi(2) + (2.0f64).powi(2)).sqrt();
        let got = Distance::Euclidean.sparse(&a.as_row(), &b.as_row());
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn point_to_all_matches_pairwise_sparse() {
        let rows = vec![
            sv(&[(0, 1.0), (2, 1.0)], 8),
            sv(&[(1, 3.0)], 8),
            sv(&[(0, 1.0), (2, 1.0), (5, 2.0)], 8),
            SparseVec::zeros(8),
        ];
        let m = CsrMatrix::from_rows(&rows, 8);
        let norms = m.row_sq_norms();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.sparse_point_to_all(&m, 0, &norms);
            for (r, row) in rows.iter().enumerate() {
                let pair = dist.sparse(&rows[0].as_row(), &row.as_row());
                assert!((all[r] - pair).abs() < 1e-9, "{dist:?} row {r}");
            }
        }
    }

    #[test]
    fn dense_point_to_all_matches_pairwise() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.dense_point_to_all(&m, 2);
            for (r, &a) in all.iter().enumerate() {
                let pair = dist.dense(m.row(2), m.row(r));
                assert!((a - pair).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sparse_row_to_all_cross_matrix() {
        let train = CsrMatrix::from_rows(&[sv(&[(0, 1.0), (2, 1.0)], 8)], 8);
        let valid_rows = vec![sv(&[(0, 1.0), (2, 1.0)], 8), sv(&[(1, 1.0)], 8)];
        let valid = CsrMatrix::from_rows(&valid_rows, 8);
        let norms = valid.row_sq_norms();
        let pivot = train.row(0);
        let pivot_sq = pivot.sq_norm();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.sparse_row_to_all(&pivot, pivot_sq, &valid, &norms);
            for (r, row) in valid_rows.iter().enumerate() {
                let pair = dist.sparse(&pivot, &row.as_row());
                assert!((all[r] - pair).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dense_row_to_all_matches() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5]]);
        let pivot = [0.0f32, 1.0];
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.dense_row_to_all(&pivot, &m);
            for (r, &a) in all.iter().enumerate() {
                assert!((a - dist.dense(&pivot, m.row(r))).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn names_stable() {
        assert_eq!(Distance::Cosine.name(), "cosine");
        assert_eq!(Distance::Euclidean.name(), "euclidean");
    }

    /// The indexed kernel must match the naive scan *bitwise* for every
    /// pivot: both accumulate each row's matching terms in ascending
    /// column order, so the f64 operations are literally the same.
    #[test]
    fn indexed_matches_naive_bitwise() {
        let rows = vec![
            sv(&[(0, 0.3), (2, 1.0), (6, -2.0)], 8),
            sv(&[(1, 3.0)], 8),
            sv(&[(0, 1.0), (2, 1.0), (5, 2.0), (7, 0.25)], 8),
            SparseVec::zeros(8),
            sv(&[(6, 4.0), (7, 1.5)], 8),
        ];
        let m = CsrMatrix::from_rows(&rows, 8);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        let mut scratch = DistanceScratch::new();
        let mut indexed = Vec::new();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            for pivot in 0..m.n_rows() {
                let naive = dist.sparse_point_to_all(&m, pivot, &norms);
                dist.sparse_point_to_all_indexed_into(
                    &m,
                    &index,
                    pivot,
                    &norms,
                    &mut scratch,
                    &mut indexed,
                );
                assert_eq!(naive, indexed, "{dist:?} pivot {pivot}");
            }
        }
    }

    /// Zero-norm guard: distances from/to an all-zero row (an empty doc
    /// after tokenization) must be finite and identical between the naive
    /// and indexed kernels for both distance functions.
    #[test]
    fn zero_norm_rows_finite_and_kernel_identical() {
        let rows = vec![
            SparseVec::zeros(6),
            sv(&[(0, 1.0), (3, 2.0)], 6),
            SparseVec::zeros(6),
            sv(&[(3, -1.0)], 6),
        ];
        let m = CsrMatrix::from_rows(&rows, 6);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        let mut scratch = DistanceScratch::new();
        let mut indexed = Vec::new();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            for pivot in 0..m.n_rows() {
                let naive = dist.sparse_point_to_all(&m, pivot, &norms);
                dist.sparse_point_to_all_indexed_into(
                    &m,
                    &index,
                    pivot,
                    &norms,
                    &mut scratch,
                    &mut indexed,
                );
                for (r, (&a, &b)) in naive.iter().zip(&indexed).enumerate() {
                    assert!(a.is_finite(), "{dist:?} {pivot}->{r} not finite");
                    assert_eq!(a, b, "{dist:?} {pivot}->{r}");
                }
            }
        }
        // The documented zero-vector convention survives both kernels.
        let z_to_all = Distance::Cosine.sparse_point_to_all(&m, 0, &norms);
        assert_eq!(z_to_all[0], 0.0); // zero vs itself
        assert_eq!(z_to_all[2], 0.0); // zero vs the other zero row
        assert_eq!(z_to_all[1], 1.0); // zero vs non-zero
    }

    #[test]
    fn batched_matches_per_pivot_calls() {
        let rows = vec![
            sv(&[(0, 1.0), (2, 1.0)], 8),
            sv(&[(1, 3.0), (7, 0.5)], 8),
            SparseVec::zeros(8),
            sv(&[(0, 2.0), (5, 2.0)], 8),
        ];
        let m = CsrMatrix::from_rows(&rows, 8);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        let pivots = [3usize, 0, 2, 1, 3];
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let batch = dist.sparse_point_to_all_many(&m, &norms, &pivots, &index, &norms);
            assert_eq!(batch.len(), pivots.len());
            for (k, &p) in pivots.iter().enumerate() {
                assert_eq!(batch[k], dist.sparse_point_to_all(&m, p, &norms), "pivot {p}");
            }
        }
    }

    #[test]
    fn cross_matrix_indexed_matches_naive() {
        let train = CsrMatrix::from_rows(&[sv(&[(0, 1.0), (2, 1.0)], 8), sv(&[(4, 2.0)], 8)], 8);
        let train_norms = train.row_sq_norms();
        let valid_rows =
            vec![sv(&[(0, 1.0), (2, 1.0)], 8), sv(&[(1, 1.0)], 8), SparseVec::zeros(8)];
        let valid = CsrMatrix::from_rows(&valid_rows, 8);
        let valid_norms = valid.row_sq_norms();
        let index = CscIndex::from_csr(&valid);
        let mut scratch = DistanceScratch::new();
        let mut indexed = Vec::new();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            for (p, &pivot_sq) in train_norms.iter().enumerate() {
                let pivot = train.row(p);
                let naive = dist.sparse_row_to_all(&pivot, pivot_sq, &valid, &valid_norms);
                dist.sparse_row_to_all_indexed_into(
                    &pivot,
                    pivot_sq,
                    &index,
                    &valid_norms,
                    &mut scratch,
                    &mut indexed,
                );
                assert_eq!(naive, indexed, "{dist:?} pivot {p}");
            }
        }
    }

    #[test]
    fn into_buffers_are_reused_and_refilled() {
        let rows = vec![sv(&[(0, 1.0)], 4), sv(&[(1, 1.0)], 4)];
        let m = CsrMatrix::from_rows(&rows, 4);
        let norms = m.row_sq_norms();
        let mut out = vec![99.0; 17]; // stale content must be discarded
        Distance::Cosine.sparse_point_to_all_into(&m, 0, &norms, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out[0].abs() < 1e-12);
    }

    /// The sharded indexed kernel must match the serial indexed kernel
    /// bitwise on a pool large enough to clear the serial-fallback
    /// threshold (the NEMO_THREADS=1 and =4 CI legs then pin both sides
    /// of the fallback).
    #[test]
    fn sharded_indexed_matches_serial_bitwise() {
        let n = MIN_SHARDED_ROWS + 1037;
        let mut state = 7u64;
        let mut next = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let rows: Vec<SparseVec> = (0..n)
            .map(|_| {
                let nnz = next(6) as usize;
                let pairs: Vec<(u32, f32)> =
                    (0..nnz).map(|_| (next(64) as u32, next(100) as f32 / 10.0 - 5.0)).collect();
                SparseVec::from_pairs(pairs, 64)
            })
            .collect();
        let m = CsrMatrix::from_rows(&rows, 64);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        let mut scratch = DistanceScratch::new();
        let (mut serial, mut sharded) = (Vec::new(), Vec::new());
        for dist in [Distance::Cosine, Distance::Euclidean] {
            for pivot in [0usize, 17, n - 1] {
                dist.sparse_point_to_all_indexed_into(
                    &m,
                    &index,
                    pivot,
                    &norms,
                    &mut scratch,
                    &mut serial,
                );
                dist.sparse_point_to_all_indexed_sharded_into(
                    &m,
                    &index,
                    pivot,
                    &norms,
                    &mut scratch,
                    &mut sharded,
                );
                assert_eq!(serial, sharded, "{dist:?} pivot {pivot}");
            }
        }
    }

    /// Small pools hit the serial fallback and stay bit-identical too.
    #[test]
    fn sharded_indexed_small_pool_fallback() {
        let rows = vec![sv(&[(0, 1.0), (2, 1.0)], 8), sv(&[(1, 3.0)], 8), SparseVec::zeros(8)];
        let m = CsrMatrix::from_rows(&rows, 8);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        let mut scratch = DistanceScratch::new();
        let (mut serial, mut sharded) = (Vec::new(), Vec::new());
        for pivot in 0..rows.len() {
            Distance::Cosine.sparse_point_to_all_indexed_into(
                &m,
                &index,
                pivot,
                &norms,
                &mut scratch,
                &mut serial,
            );
            Distance::Cosine.sparse_point_to_all_indexed_sharded_into(
                &m,
                &index,
                pivot,
                &norms,
                &mut scratch,
                &mut sharded,
            );
            assert_eq!(serial, sharded);
        }
    }

    /// Dense: blocked backend stays within the documented 1e-9 relative
    /// tolerance of scalar, and the sharded kernel is bit-identical to the
    /// serial kernel for the same backend.
    #[test]
    fn dense_backend_and_sharded_contracts() {
        let n = MIN_SHARDED_ROWS + 33;
        let d = 19; // not a multiple of DOT_LANES: exercises the tail
        let mut state = 3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let rows: Vec<Vec<f32>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
        let m = DenseMatrix::from_rows(&rows);
        let norms = m.row_sq_norms();
        let (mut scalar, mut blocked, mut sharded) = (Vec::new(), Vec::new(), Vec::new());
        for dist in [Distance::Cosine, Distance::Euclidean] {
            for pivot in [0usize, n / 2] {
                dist.dense_row_to_all_cached_into_with(
                    DenseBackend::Scalar,
                    m.row(pivot),
                    norms[pivot],
                    &m,
                    &norms,
                    &mut scalar,
                );
                dist.dense_row_to_all_cached_into_with(
                    DenseBackend::Blocked,
                    m.row(pivot),
                    norms[pivot],
                    &m,
                    &norms,
                    &mut blocked,
                );
                for (r, (&a, &b)) in scalar.iter().zip(&blocked).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                        "{dist:?} pivot {pivot} row {r}: {a} vs {b}"
                    );
                }
                for backend in [DenseBackend::Blocked, DenseBackend::Scalar] {
                    dist.dense_row_to_all_cached_into_with(
                        backend,
                        m.row(pivot),
                        norms[pivot],
                        &m,
                        &norms,
                        &mut blocked,
                    );
                    dist.dense_row_to_all_sharded_into(
                        backend,
                        m.row(pivot),
                        norms[pivot],
                        &m,
                        &norms,
                        &mut sharded,
                    );
                    assert_eq!(blocked, sharded, "{dist:?} {backend:?} pivot {pivot}");
                }
            }
        }
    }

    /// Few-pivot batches route through the sharded kernels and must agree
    /// bitwise with the pivot-partitioned path.
    #[test]
    fn few_pivot_batches_match_per_pivot() {
        let rows = vec![
            sv(&[(0, 1.0), (2, 1.0)], 8),
            sv(&[(1, 3.0), (7, 0.5)], 8),
            SparseVec::zeros(8),
            sv(&[(0, 2.0), (5, 2.0)], 8),
        ];
        let m = CsrMatrix::from_rows(&rows, 8);
        let norms = m.row_sq_norms();
        let index = CscIndex::from_csr(&m);
        for dist in [Distance::Cosine, Distance::Euclidean] {
            // One pivot is always below num_threads() when threads > 1 and
            // equal when threads == 1; either way the result is pinned to
            // the per-pivot serial reference.
            let batch = dist.sparse_point_to_all_many(&m, &norms, &[1], &index, &norms);
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0], dist.sparse_point_to_all(&m, 1, &norms));
            let dm = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]]);
            let dnorms = dm.row_sq_norms();
            for backend in [DenseBackend::Blocked, DenseBackend::Scalar] {
                let batch = dist.dense_point_to_all_many_with(backend, &dm, &[2], &dnorms);
                let mut one = Vec::new();
                dist.dense_row_to_all_cached_into_with(
                    backend,
                    dm.row(2),
                    dnorms[2],
                    &dm,
                    &dnorms,
                    &mut one,
                );
                assert_eq!(batch[0], one, "{dist:?} {backend:?}");
            }
        }
    }

    #[test]
    fn dense_cached_matches_plain() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 0.0]]);
        let norms = m.row_sq_norms();
        let mut out = Vec::new();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            for p in 0..m.n_rows() {
                let plain = dist.dense_point_to_all(&m, p);
                dist.dense_row_to_all_cached_into(m.row(p), norms[p], &m, &norms, &mut out);
                assert_eq!(plain, out, "{dist:?} pivot {p}");
            }
            let batch = dist.dense_point_to_all_many(&m, &[2, 0], &norms);
            assert_eq!(batch[0], dist.dense_point_to_all(&m, 2));
            assert_eq!(batch[1], dist.dense_point_to_all(&m, 0));
        }
    }

    proptest! {
        #[test]
        fn prop_cosine_in_range(
            a in proptest::collection::vec((0u32..32, -5.0f32..5.0), 1..12),
            b in proptest::collection::vec((0u32..32, -5.0f32..5.0), 1..12),
        ) {
            let va = SparseVec::from_pairs(a, 32);
            let vb = SparseVec::from_pairs(b, 32);
            let d = Distance::Cosine.sparse(&va.as_row(), &vb.as_row());
            prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        }

        #[test]
        fn prop_euclidean_symmetric_nonneg(
            a in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..12),
            b in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..12),
        ) {
            let va = SparseVec::from_pairs(a, 32);
            let vb = SparseVec::from_pairs(b, 32);
            let d1 = Distance::Euclidean.sparse(&va.as_row(), &vb.as_row());
            let d2 = Distance::Euclidean.sparse(&vb.as_row(), &va.as_row());
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }

        #[test]
        fn prop_euclidean_triangle_inequality(
            a in proptest::collection::vec((0u32..16, -3.0f32..3.0), 0..8),
            b in proptest::collection::vec((0u32..16, -3.0f32..3.0), 0..8),
            c in proptest::collection::vec((0u32..16, -3.0f32..3.0), 0..8),
        ) {
            let va = SparseVec::from_pairs(a, 16);
            let vb = SparseVec::from_pairs(b, 16);
            let vc = SparseVec::from_pairs(c, 16);
            let ab = Distance::Euclidean.sparse(&va.as_row(), &vb.as_row());
            let bc = Distance::Euclidean.sparse(&vb.as_row(), &vc.as_row());
            let ac = Distance::Euclidean.sparse(&va.as_row(), &vc.as_row());
            prop_assert!(ac <= ab + bc + 1e-6);
        }
    }
}

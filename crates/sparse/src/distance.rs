//! Distance kernels for the LF contextualizer (paper Eq. 4).
//!
//! The paper's contextualizer needs `dist(x, x_λ)` from each development
//! data point to every example; in the text domain this is cosine or
//! euclidean distance over TF-IDF vectors (Sec. 4.3, Table 9), and in the
//! image domain the same over dense embeddings. Both sparse and dense
//! feature storage expose a "one point vs all rows" kernel, which is the
//! access pattern the contextualizer caches.

use crate::csr::{CsrMatrix, SparseRow};
use crate::dense::{self, DenseMatrix};

/// Distance (dissimilarity) function between feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Distance {
    /// `1 - cos(a, b)`; in `[0, 2]`. The paper's default for text (Table 9
    /// shows it dominating euclidean).
    #[default]
    Cosine,
    /// Standard euclidean distance.
    Euclidean,
}

impl Distance {
    /// Human-readable name used by the benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Distance::Cosine => "cosine",
            Distance::Euclidean => "euclidean",
        }
    }

    /// Distance between two sparse rows.
    pub fn sparse(self, a: &SparseRow<'_>, b: &SparseRow<'_>) -> f64 {
        match self {
            Distance::Cosine => cosine_distance(a.dot(b), a.sq_norm(), b.sq_norm()),
            Distance::Euclidean => {
                // ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a·b, guarded against
                // tiny negative round-off.
                let sq = a.sq_norm() + b.sq_norm() - 2.0 * a.dot(b);
                sq.max(0.0).sqrt()
            }
        }
    }

    /// Distance between two dense vectors.
    pub fn dense(self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            Distance::Cosine => {
                let dot = dense::dot(a, b);
                let na: f64 = a.iter().map(|&v| (v as f64) * (v as f64)).sum();
                let nb: f64 = b.iter().map(|&v| (v as f64) * (v as f64)).sum();
                cosine_distance(dot, na, nb)
            }
            Distance::Euclidean => dense::sq_euclidean(a, b).sqrt(),
        }
    }

    /// Distances from row `pivot` of a CSR matrix to every row.
    ///
    /// `sq_norms` must be the cached per-row squared norms
    /// ([`CsrMatrix::row_sq_norms`]); passing them in keeps the kernel
    /// allocation-free across repeated calls for different pivots.
    pub fn sparse_point_to_all(self, m: &CsrMatrix, pivot: usize, sq_norms: &[f64]) -> Vec<f64> {
        assert_eq!(sq_norms.len(), m.n_rows(), "sq_norms length mismatch");
        let p = m.row(pivot);
        let pn = sq_norms[pivot];
        let mut out = Vec::with_capacity(m.n_rows());
        for (r, row) in m.rows().enumerate() {
            let d = match self {
                Distance::Cosine => cosine_distance(p.dot(&row), pn, sq_norms[r]),
                Distance::Euclidean => {
                    let sq = pn + sq_norms[r] - 2.0 * p.dot(&row);
                    sq.max(0.0).sqrt()
                }
            };
            out.push(d);
        }
        out
    }

    /// Distances from row `pivot` of a dense matrix to every row.
    pub fn dense_point_to_all(self, m: &DenseMatrix, pivot: usize) -> Vec<f64> {
        let p: Vec<f32> = m.row(pivot).to_vec();
        (0..m.n_rows()).map(|r| self.dense(&p, m.row(r))).collect()
    }

    /// Distances from an arbitrary sparse `pivot` row to every row of `m`
    /// (the pivot may come from a *different* matrix in the same feature
    /// space, e.g. a training development point vs validation examples).
    ///
    /// `pivot_sq` is the pivot's squared norm; `sq_norms` the cached
    /// per-row squared norms of `m`.
    pub fn sparse_row_to_all(
        self,
        pivot: &SparseRow<'_>,
        pivot_sq: f64,
        m: &CsrMatrix,
        sq_norms: &[f64],
    ) -> Vec<f64> {
        assert_eq!(sq_norms.len(), m.n_rows(), "sq_norms length mismatch");
        let mut out = Vec::with_capacity(m.n_rows());
        for (r, row) in m.rows().enumerate() {
            let d = match self {
                Distance::Cosine => cosine_distance(pivot.dot(&row), pivot_sq, sq_norms[r]),
                Distance::Euclidean => {
                    let sq = pivot_sq + sq_norms[r] - 2.0 * pivot.dot(&row);
                    sq.max(0.0).sqrt()
                }
            };
            out.push(d);
        }
        out
    }

    /// Distances from an arbitrary dense `pivot` vector to every row of `m`.
    pub fn dense_row_to_all(self, pivot: &[f32], m: &DenseMatrix) -> Vec<f64> {
        (0..m.n_rows()).map(|r| self.dense(pivot, m.row(r))).collect()
    }
}

/// Cosine distance from precomputed dot product and squared norms.
///
/// Convention for degenerate inputs: if either vector is all-zero the
/// distance is defined as `1.0` (maximally dissimilar but finite), except
/// that the distance from the zero vector to itself is `0.0`. This keeps
/// percentile radii well-defined for empty documents.
fn cosine_distance(dot: f64, sq_a: f64, sq_b: f64) -> f64 {
    if sq_a == 0.0 && sq_b == 0.0 {
        return 0.0;
    }
    if sq_a == 0.0 || sq_b == 0.0 {
        return 1.0;
    }
    let cos = (dot / (sq_a.sqrt() * sq_b.sqrt())).clamp(-1.0, 1.0);
    1.0 - cos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SparseVec;
    use proptest::prelude::*;

    fn sv(pairs: &[(u32, f32)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim)
    }

    #[test]
    fn cosine_identical_is_zero() {
        let a = sv(&[(0, 1.0), (3, 2.0)], 8);
        let d = Distance::Cosine.sparse(&a.as_row(), &a.as_row());
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let a = sv(&[(0, 1.0)], 4);
        let b = sv(&[(1, 1.0)], 4);
        let d = Distance::Cosine.sparse(&a.as_row(), &b.as_row());
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_opposite_is_two() {
        let a = sv(&[(0, 1.0)], 4);
        let b = sv(&[(0, -1.0)], 4);
        let d = Distance::Cosine.sparse(&a.as_row(), &b.as_row());
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_zero_vector_convention() {
        let z = SparseVec::zeros(4);
        let a = sv(&[(0, 1.0)], 4);
        assert_eq!(Distance::Cosine.sparse(&z.as_row(), &a.as_row()), 1.0);
        assert_eq!(Distance::Cosine.sparse(&z.as_row(), &z.as_row()), 0.0);
    }

    #[test]
    fn euclidean_matches_dense_formula() {
        let a = sv(&[(0, 1.0), (1, 2.0)], 4);
        let b = sv(&[(1, 4.0), (3, 2.0)], 4);
        let want = ((1.0f64).powi(2) + (2.0f64 - 4.0).powi(2) + (2.0f64).powi(2)).sqrt();
        let got = Distance::Euclidean.sparse(&a.as_row(), &b.as_row());
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn point_to_all_matches_pairwise_sparse() {
        let rows = vec![
            sv(&[(0, 1.0), (2, 1.0)], 8),
            sv(&[(1, 3.0)], 8),
            sv(&[(0, 1.0), (2, 1.0), (5, 2.0)], 8),
            SparseVec::zeros(8),
        ];
        let m = CsrMatrix::from_rows(&rows, 8);
        let norms = m.row_sq_norms();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.sparse_point_to_all(&m, 0, &norms);
            for (r, row) in rows.iter().enumerate() {
                let pair = dist.sparse(&rows[0].as_row(), &row.as_row());
                assert!((all[r] - pair).abs() < 1e-9, "{dist:?} row {r}");
            }
        }
    }

    #[test]
    fn dense_point_to_all_matches_pairwise() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.dense_point_to_all(&m, 2);
            for (r, &a) in all.iter().enumerate() {
                let pair = dist.dense(m.row(2), m.row(r));
                assert!((a - pair).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sparse_row_to_all_cross_matrix() {
        let train = CsrMatrix::from_rows(&[sv(&[(0, 1.0), (2, 1.0)], 8)], 8);
        let valid_rows = vec![sv(&[(0, 1.0), (2, 1.0)], 8), sv(&[(1, 1.0)], 8)];
        let valid = CsrMatrix::from_rows(&valid_rows, 8);
        let norms = valid.row_sq_norms();
        let pivot = train.row(0);
        let pivot_sq = pivot.sq_norm();
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.sparse_row_to_all(&pivot, pivot_sq, &valid, &norms);
            for (r, row) in valid_rows.iter().enumerate() {
                let pair = dist.sparse(&pivot, &row.as_row());
                assert!((all[r] - pair).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dense_row_to_all_matches() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5]]);
        let pivot = [0.0f32, 1.0];
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let all = dist.dense_row_to_all(&pivot, &m);
            for (r, &a) in all.iter().enumerate() {
                assert!((a - dist.dense(&pivot, m.row(r))).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn names_stable() {
        assert_eq!(Distance::Cosine.name(), "cosine");
        assert_eq!(Distance::Euclidean.name(), "euclidean");
    }

    proptest! {
        #[test]
        fn prop_cosine_in_range(
            a in proptest::collection::vec((0u32..32, -5.0f32..5.0), 1..12),
            b in proptest::collection::vec((0u32..32, -5.0f32..5.0), 1..12),
        ) {
            let va = SparseVec::from_pairs(a, 32);
            let vb = SparseVec::from_pairs(b, 32);
            let d = Distance::Cosine.sparse(&va.as_row(), &vb.as_row());
            prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        }

        #[test]
        fn prop_euclidean_symmetric_nonneg(
            a in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..12),
            b in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..12),
        ) {
            let va = SparseVec::from_pairs(a, 32);
            let vb = SparseVec::from_pairs(b, 32);
            let d1 = Distance::Euclidean.sparse(&va.as_row(), &vb.as_row());
            let d2 = Distance::Euclidean.sparse(&vb.as_row(), &va.as_row());
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }

        #[test]
        fn prop_euclidean_triangle_inequality(
            a in proptest::collection::vec((0u32..16, -3.0f32..3.0), 0..8),
            b in proptest::collection::vec((0u32..16, -3.0f32..3.0), 0..8),
            c in proptest::collection::vec((0u32..16, -3.0f32..3.0), 0..8),
        ) {
            let va = SparseVec::from_pairs(a, 16);
            let vb = SparseVec::from_pairs(b, 16);
            let vc = SparseVec::from_pairs(c, 16);
            let ab = Distance::Euclidean.sparse(&va.as_row(), &vb.as_row());
            let bc = Distance::Euclidean.sparse(&vb.as_row(), &vc.as_row());
            let ac = Distance::Euclidean.sparse(&va.as_row(), &vc.as_row());
            prop_assert!(ac <= ab + bc + 1e-6);
        }
    }
}

//! Sparse vectors and CSR matrices.
//!
//! Feature matrices in the reproduction (TF-IDF document-term matrices) are
//! stored row-wise in compressed sparse row (CSR) layout: one contiguous
//! index buffer and one value buffer, plus row offsets. Rows expose a
//! borrowed [`SparseRow`] view; [`SparseVec`] is the owned single-vector
//! form used at construction time.

/// An owned sparse vector: parallel `indices`/`values` arrays with strictly
/// increasing indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f32>,
    dim: usize,
}

impl SparseVec {
    /// Build from parallel arrays. Indices must be strictly increasing and
    /// less than `dim`; zero values are dropped.
    pub fn new(indices: Vec<u32>, values: Vec<f32>, dim: usize) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        let mut last: Option<u32> = None;
        for &i in &indices {
            assert!((i as usize) < dim, "index {i} out of dim {dim}");
            if let Some(prev) = last {
                assert!(i > prev, "indices must be strictly increasing");
            }
            last = Some(i);
        }
        let (indices, values) = indices.into_iter().zip(values).filter(|&(_, v)| v != 0.0).unzip();
        Self { indices, values, dim }
    }

    /// Build from (possibly unsorted, possibly duplicated) pairs, summing
    /// duplicates — the natural constructor for bag-of-words counts.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>, dim: usize) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f32> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            assert!((i as usize) < dim, "index {i} out of dim {dim}");
            if indices.last() == Some(&i) {
                // invariant: indices and values grow in lockstep, so a
                // non-empty indices implies a non-empty values.
                *values.last_mut().expect("values non-empty") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        // Drop entries that cancelled to zero.
        let (indices, values) = indices.into_iter().zip(values).filter(|&(_, v)| v != 0.0).unzip();
        Self { indices, values, dim }
    }

    /// The all-zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self { indices: Vec::new(), values: Vec::new(), dim }
    }

    /// Dimensionality of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Borrowed view.
    pub fn as_row(&self) -> SparseRow<'_> {
        SparseRow { indices: &self.indices, values: &self.values }
    }

    /// Densify into a `Vec<f32>` of length `dim`.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Scale in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// L2-normalize in place (no-op for the zero vector).
    pub fn l2_normalize(&mut self) {
        let norm = self.as_row().l2_norm();
        if norm > 0.0 {
            self.scale((1.0 / norm) as f32);
        }
    }
}

/// Borrowed sparse row view over parallel index/value slices.
#[derive(Debug, Clone, Copy)]
pub struct SparseRow<'a> {
    /// Column indices of the stored entries, strictly increasing.
    pub indices: &'a [u32],
    /// Entry values, parallel to `indices`.
    pub values: &'a [f32],
}

impl<'a> SparseRow<'a> {
    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterate `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + 'a {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Sparse-sparse dot product via sorted merge.
    pub fn dot(&self, other: &SparseRow<'_>) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f64;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] as f64 * other.values[j] as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product against a dense weight vector.
    pub fn dot_dense(&self, dense: &[f32]) -> f64 {
        let mut acc = 0.0f64;
        for (&i, &v) in self.indices.iter().zip(self.values) {
            acc += v as f64 * dense[i as usize] as f64;
        }
        acc
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f64 {
        self.values.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// L2 norm.
    pub fn l2_norm(&self) -> f64 {
        self.sq_norm().sqrt()
    }
}

/// Compressed sparse row matrix with `f32` values.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    row_offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    n_cols: usize,
}

impl CsrMatrix {
    /// Assemble from a list of owned sparse rows (all must share `n_cols`).
    pub fn from_rows(rows: &[SparseVec], n_cols: usize) -> Self {
        let nnz: usize = rows.iter().map(SparseVec::nnz).sum();
        let mut row_offsets = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_offsets.push(0);
        for r in rows {
            assert_eq!(r.dim(), n_cols, "row dimension mismatch");
            indices.extend_from_slice(&r.indices);
            values.extend_from_slice(&r.values);
            row_offsets.push(indices.len());
        }
        Self { row_offsets, indices, values, n_cols }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> SparseRow<'_> {
        let (lo, hi) = (self.row_offsets[r], self.row_offsets[r + 1]);
        SparseRow { indices: &self.indices[lo..hi], values: &self.values[lo..hi] }
    }

    /// Iterate all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = SparseRow<'_>> {
        (0..self.n_rows()).map(move |r| self.row(r))
    }

    /// L2-normalize every row in place (rows of zero norm are left as-is).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.n_rows() {
            let (lo, hi) = (self.row_offsets[r], self.row_offsets[r + 1]);
            let norm: f64 =
                self.values[lo..hi].iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
            if norm > 0.0 {
                let inv = (1.0 / norm) as f32;
                for v in &mut self.values[lo..hi] {
                    *v *= inv;
                }
            }
        }
    }

    /// Cached squared norms of every row.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        (0..self.n_rows()).map(|r| self.row(r).sq_norm()).collect()
    }

    /// Number of stored entries in every column (the posting-list length
    /// profile a column-major index is sized from).
    pub fn column_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_cols];
        for &j in &self.indices {
            counts[j as usize] += 1;
        }
        counts
    }

    /// CSC-style column offsets: `offsets[j]..offsets[j+1]` spans column
    /// `j`'s entries after a counting-sort scatter (`offsets[n_cols]` is
    /// the nnz). Shared by every column-major index built over this
    /// matrix ([`crate::csc::CscIndex`], [`crate::index::InvertedIndex`]).
    pub fn column_offsets(&self) -> Vec<usize> {
        let counts = self.column_counts();
        let mut offsets = Vec::with_capacity(self.n_cols + 1);
        offsets.push(0usize);
        for j in 0..self.n_cols {
            offsets.push(offsets[j] + counts[j]);
        }
        offsets
    }

    /// Borrow the raw CSR buffers `(row_offsets, indices, values)` for
    /// serialization. The triple round-trips through
    /// [`CsrMatrix::from_raw_parts`] together with [`CsrMatrix::n_cols`].
    pub fn raw_parts(&self) -> (&[usize], &[u32], &[f32]) {
        (&self.row_offsets, &self.indices, &self.values)
    }

    /// Rebuild a matrix from raw CSR buffers, validating every structural
    /// invariant the borrowing accessors rely on. This is the import half of
    /// [`CsrMatrix::raw_parts`], intended for deserializers that cannot
    /// trust their input; it never panics on malformed buffers.
    pub fn from_raw_parts(
        row_offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
        n_cols: usize,
    ) -> Result<Self, &'static str> {
        if row_offsets.first() != Some(&0) {
            return Err("CSR row offsets must start with 0");
        }
        if indices.len() != values.len() {
            return Err("CSR index/value buffer length mismatch");
        }
        // invariant: `first()` above returned Some, so the vec is
        // non-empty and `last()` cannot fail.
        if *row_offsets.last().expect("checked non-empty above") != indices.len() {
            return Err("CSR final row offset must equal nnz");
        }
        for w in row_offsets.windows(2) {
            if w[1] < w[0] {
                return Err("CSR row offsets must be non-decreasing");
            }
            // Within each row the column indices must be strictly
            // increasing and in-bounds (SparseRow::dot's sorted-merge and
            // the counting-sort CSC build both assume it).
            for pair in indices[w[0]..w[1]].windows(2) {
                if pair[1] <= pair[0] {
                    return Err("CSR row indices must be strictly increasing");
                }
            }
            if let Some(&last) = indices[w[0]..w[1]].last() {
                if last as usize >= n_cols {
                    return Err("CSR column index out of bounds");
                }
            }
        }
        Ok(Self { row_offsets, indices, values, n_cols })
    }

    /// Fraction of stored entries, `nnz / (rows · cols)` (0 for an empty
    /// shape). TF-IDF matrices sit around 1%, which is what makes the
    /// inverted-index distance kernel pay off.
    pub fn density(&self) -> f64 {
        let cells = self.n_rows() * self.n_cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(pairs: &[(u32, f32)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim)
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = sv(&[(3, 1.0), (1, 2.0), (3, 4.0)], 8);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), vec![0.0, 2.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_pairs_drops_cancelled_entries() {
        let v = sv(&[(2, 1.5), (2, -1.5), (4, 1.0)], 6);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.to_dense()[4], 1.0);
    }

    #[test]
    fn new_rejects_unsorted() {
        let r = std::panic::catch_unwind(|| SparseVec::new(vec![2, 1], vec![1.0, 1.0], 4));
        assert!(r.is_err());
    }

    #[test]
    fn new_rejects_out_of_dim() {
        let r = std::panic::catch_unwind(|| SparseVec::new(vec![5], vec![1.0], 4));
        assert!(r.is_err());
    }

    #[test]
    fn dot_matches_dense_reference() {
        let a = sv(&[(0, 1.0), (2, 2.0), (5, -1.0)], 8);
        let b = sv(&[(2, 3.0), (5, 4.0), (7, 9.0)], 8);
        let dense: f64 =
            a.to_dense().iter().zip(b.to_dense()).map(|(&x, y)| x as f64 * y as f64).sum();
        assert!((a.as_row().dot(&b.as_row()) - dense).abs() < 1e-9);
    }

    #[test]
    fn dot_dense_matches() {
        let a = sv(&[(1, 2.0), (3, -1.0)], 5);
        let w = vec![1.0f32, 10.0, 100.0, 1000.0, 0.5];
        assert!((a.as_row().dot_dense(&w) - (20.0 - 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let mut v = sv(&[(0, 3.0), (1, 4.0)], 2);
        v.l2_normalize();
        assert!((v.as_row().l2_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_zero_vector_noop() {
        let mut v = SparseVec::zeros(4);
        v.l2_normalize();
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn csr_roundtrip_rows() {
        let rows = vec![sv(&[(0, 1.0)], 4), SparseVec::zeros(4), sv(&[(1, 2.0), (3, 3.0)], 4)];
        let m = CsrMatrix::from_rows(&rows, 4);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).nnz(), 1);
        assert_eq!(m.row(1).nnz(), 0);
        let r2: Vec<(u32, f32)> = m.row(2).iter().collect();
        assert_eq!(r2, vec![(1, 2.0), (3, 3.0)]);
    }

    #[test]
    fn csr_normalize_rows() {
        let rows = vec![sv(&[(0, 3.0), (1, 4.0)], 4), SparseVec::zeros(4)];
        let mut m = CsrMatrix::from_rows(&rows, 4);
        m.l2_normalize_rows();
        assert!((m.row(0).l2_norm() - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1).nnz(), 0);
    }

    proptest! {
        #[test]
        fn prop_dot_commutative(
            a in proptest::collection::vec((0u32..64, -10.0f32..10.0), 0..20),
            b in proptest::collection::vec((0u32..64, -10.0f32..10.0), 0..20),
        ) {
            let va = SparseVec::from_pairs(a, 64);
            let vb = SparseVec::from_pairs(b, 64);
            let d1 = va.as_row().dot(&vb.as_row());
            let d2 = vb.as_row().dot(&va.as_row());
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        #[test]
        fn prop_dot_matches_dense(
            a in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..16),
            b in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..16),
        ) {
            let va = SparseVec::from_pairs(a, 32);
            let vb = SparseVec::from_pairs(b, 32);
            let dense: f64 = va.to_dense().iter().zip(vb.to_dense())
                .map(|(&x, y)| x as f64 * y as f64).sum();
            prop_assert!((va.as_row().dot(&vb.as_row()) - dense).abs() < 1e-4);
        }

        #[test]
        fn prop_sq_norm_is_self_dot(
            a in proptest::collection::vec((0u32..32, -5.0f32..5.0), 0..16),
        ) {
            let v = SparseVec::from_pairs(a, 32);
            let r = v.as_row();
            prop_assert!((r.sq_norm() - r.dot(&r)).abs() < 1e-6);
        }

        #[test]
        fn prop_csr_preserves_rows(
            rows in proptest::collection::vec(
                proptest::collection::vec((0u32..16, 0.5f32..5.0), 0..8), 0..10),
        ) {
            let svs: Vec<SparseVec> =
                rows.iter().map(|p| SparseVec::from_pairs(p.clone(), 16)).collect();
            let m = CsrMatrix::from_rows(&svs, 16);
            prop_assert_eq!(m.n_rows(), svs.len());
            for (i, sv) in svs.iter().enumerate() {
                let got: Vec<(u32, f32)> = m.row(i).iter().collect();
                let want: Vec<(u32, f32)> = sv.as_row().iter().collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}

//! N-gram extraction.
//!
//! The paper instantiates the primitive domain `Z` as uni-grams; the LF
//! family definition (Sec. 4) allows any domain-specific primitive, so we
//! also support higher-order n-grams (joined with `'_'`) for users who want
//! phrase-level LFs.

/// Extract all contiguous n-grams of size `1..=max_n` from a token sequence.
/// N-grams of order > 1 are joined with underscores (`"not_good"`).
pub fn ngrams(tokens: &[impl AsRef<str>], max_n: usize) -> Vec<String> {
    assert!(max_n >= 1, "max_n must be >= 1");
    let toks: Vec<&str> = tokens.iter().map(AsRef::as_ref).collect();
    let mut out = Vec::with_capacity(toks.len() * max_n);
    for n in 1..=max_n {
        if n > toks.len() {
            break;
        }
        for window in toks.windows(n) {
            out.push(window.join("_"));
        }
    }
    out
}

/// Extract only the order-`n` n-grams.
pub fn ngrams_of_order(tokens: &[impl AsRef<str>], n: usize) -> Vec<String> {
    assert!(n >= 1, "n must be >= 1");
    let toks: Vec<&str> = tokens.iter().map(AsRef::as_ref).collect();
    if n > toks.len() {
        return Vec::new();
    }
    toks.windows(n).map(|w| w.join("_")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigrams_identity() {
        let t = ["a", "b", "c"];
        assert_eq!(ngrams(&t, 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn bigrams_included() {
        let t = ["not", "good"];
        assert_eq!(ngrams(&t, 2), vec!["not", "good", "not_good"]);
    }

    #[test]
    fn order_larger_than_doc() {
        let t = ["only"];
        assert_eq!(ngrams(&t, 3), vec!["only"]);
        assert!(ngrams_of_order(&t, 2).is_empty());
    }

    #[test]
    fn trigram_counts() {
        let t = ["a", "b", "c", "d"];
        assert_eq!(ngrams_of_order(&t, 3), vec!["a_b_c", "b_c_d"]);
        // total = 4 uni + 3 bi + 2 tri
        assert_eq!(ngrams(&t, 3).len(), 9);
    }

    #[test]
    fn empty_tokens() {
        let t: [&str; 0] = [];
        assert!(ngrams(&t, 2).is_empty());
    }
}

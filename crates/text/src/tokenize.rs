//! Whitespace/punctuation tokenizer with lowercasing.
//!
//! The synthetic generators emit pre-tokenized documents, but the public API
//! accepts raw strings (as a real deployment would), so the facade and the
//! examples run text through this tokenizer first.

/// Tokenize a string: lowercase, split on any non-alphanumeric character,
/// drop empty tokens and tokens longer than 64 bytes (noise guard).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && t.len() <= 64)
        .map(|t| t.to_lowercase())
        .collect()
}

/// Tokenize into borrowed slices when no lowercasing is required
/// (pre-normalized input); avoids per-token allocations.
pub fn tokenize_borrowed(text: &str) -> Vec<&str> {
    text.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty() && t.len() <= 64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation() {
        assert_eq!(
            tokenize("Perfect, for my work-outs!"),
            vec!["perfect", "for", "my", "work", "outs"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("GREAT Product"), vec!["great", "product"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,,, !!").is_empty());
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("win 1000 dollars"), vec!["win", "1000", "dollars"]);
    }

    #[test]
    fn drops_very_long_tokens() {
        let long = "a".repeat(65);
        assert!(tokenize(&long).is_empty());
        let ok = "a".repeat(64);
        assert_eq!(tokenize(&ok).len(), 1);
    }

    #[test]
    fn borrowed_matches_owned_for_lowercase_input() {
        let s = "already lower case text 42";
        let owned = tokenize(s);
        let borrowed: Vec<String> = tokenize_borrowed(s).iter().map(|t| t.to_string()).collect();
        assert_eq!(owned, borrowed);
    }
}

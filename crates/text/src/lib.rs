//! # nemo-text
//!
//! Text-processing substrate: tokenization, vocabulary construction,
//! n-gram extraction, and TF-IDF featurization.
//!
//! The paper featurizes text with TF-IDF over the training corpus and takes
//! the primitive domain `Z` to be the set of uni-grams in the training
//! examples (Sec. 5.1). This crate provides exactly that pipeline, plus the
//! n-gram generalization the primitive-based LF family admits (Sec. 4).

#![warn(missing_docs)]

pub mod ngram;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use tfidf::{TfIdf, TfIdfModel};
pub use tokenize::tokenize;
pub use vocab::Vocab;

//! Vocabulary: bidirectional token ↔ id mapping.
//!
//! Ids are dense `u32`s assigned in first-seen order, so a vocabulary built
//! from a deterministic corpus scan is itself deterministic. The vocabulary
//! doubles as the primitive domain `Z` for keyword LFs: primitive id ==
//! token id.

use std::collections::BTreeMap;

/// Bidirectional token ↔ dense-id mapping.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    token_to_id: BTreeMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of documents (token lists), keeping tokens
    /// with document frequency ≥ `min_df`. Ids follow first-seen order of
    /// the retained tokens.
    pub fn build<'a, I, D>(docs: I, min_df: usize) -> Self
    where
        I: IntoIterator<Item = D> + Clone,
        D: IntoIterator<Item = &'a str>,
    {
        // First pass: document frequencies in first-seen order.
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        for doc in docs.clone() {
            let mut seen: Vec<&str> = doc.into_iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for tok in seen {
                match df.get_mut(tok) {
                    Some(c) => *c += 1,
                    None => {
                        df.insert(tok.to_string(), 1);
                        order.push(tok.to_string());
                    }
                }
            }
        }
        let mut vocab = Vocab::new();
        for tok in order {
            if df[&tok] >= min_df {
                vocab.add(&tok);
            }
        }
        vocab
    }

    /// Insert `token` if absent; returns its id either way.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        id
    }

    /// Look up a token's id.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Look up a token by id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Map a token list to (deduplicated, sorted) ids, dropping OOV tokens.
    pub fn encode_set(&self, tokens: &[impl AsRef<str>]) -> Vec<u32> {
        let mut ids: Vec<u32> = tokens.iter().filter_map(|t| self.id(t.as_ref())).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Map a token list to ids preserving order and multiplicity (OOV
    /// tokens dropped) — the input format for TF-IDF counting.
    pub fn encode_seq(&self, tokens: &[impl AsRef<str>]) -> Vec<u32> {
        tokens.iter().filter_map(|t| self.id(t.as_ref())).collect()
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.id_to_token
    }

    /// Rebuild a vocabulary from an id-ordered token list (the exact shape
    /// [`Vocab::tokens`] exports): token `i` gets id `i`. Import half of
    /// the serialization round-trip; rejects duplicate tokens instead of
    /// silently collapsing ids, so a corrupted token table cannot produce a
    /// vocabulary whose lookups disagree with the persisted feature ids.
    pub fn from_tokens(tokens: Vec<String>) -> Result<Self, &'static str> {
        let mut vocab = Vocab::new();
        for tok in &tokens {
            if vocab.token_to_id.contains_key(tok) {
                return Err("duplicate token in vocabulary table");
            }
            vocab.add(tok);
        }
        Ok(vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_roundtrip() {
        let mut v = Vocab::new();
        let a = v.add("hello");
        let b = v.add("world");
        assert_eq!(v.add("hello"), a);
        assert_eq!(v.id("world"), Some(b));
        assert_eq!(v.token(a), Some("hello"));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn build_respects_min_df() {
        let docs = [vec!["a", "b"], vec!["a", "c"], vec!["a", "b"]];
        let v = Vocab::build(docs.iter().map(|d| d.iter().copied()), 2);
        assert!(v.id("a").is_some());
        assert!(v.id("b").is_some());
        assert!(v.id("c").is_none());
    }

    #[test]
    fn build_df_counts_docs_not_tokens() {
        // "a" appears 3 times but only in one doc.
        let docs = [vec!["a", "a", "a"], vec!["b"]];
        let v = Vocab::build(docs.iter().map(|d| d.iter().copied()), 2);
        assert!(v.id("a").is_none());
    }

    #[test]
    fn ids_are_first_seen_order() {
        let docs = [vec!["z", "m"], vec!["a", "z"]];
        let v = Vocab::build(docs.iter().map(|d| d.iter().copied()), 1);
        assert_eq!(v.id("m"), Some(0)); // sorted within doc: m before z
        assert_eq!(v.id("z"), Some(1));
        assert_eq!(v.id("a"), Some(2));
    }

    #[test]
    fn encode_set_sorted_unique_oov_dropped() {
        let mut v = Vocab::new();
        v.add("x");
        v.add("y");
        let ids = v.encode_set(&["y", "x", "y", "unknown"]);
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn encode_seq_preserves_multiplicity() {
        let mut v = Vocab::new();
        v.add("x");
        let ids = v.encode_seq(&["x", "x", "oov", "x"]);
        assert_eq!(ids, vec![0, 0, 0]);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocab::new();
        assert!(v.is_empty());
        assert_eq!(v.id("anything"), None);
        assert_eq!(v.token(0), None);
    }
}

//! TF-IDF featurization (the paper's text feature representation, Sec. 5.1).
//!
//! Fitted on the training split only (IDF statistics must not leak from
//! validation/test), then applied to any split. Uses smoothed IDF
//! `ln((1 + N) / (1 + df)) + 1` and optional L2 row normalization (the
//! default, which makes cosine distance equal to 1 − dot product).

use nemo_sparse::{CsrMatrix, SparseVec};
use std::collections::BTreeMap;

/// Configuration for [`TfIdf`].
#[derive(Debug, Clone)]
pub struct TfIdf {
    /// Use sublinear term frequency `1 + ln(tf)` instead of raw counts.
    pub sublinear_tf: bool,
    /// L2-normalize each document vector.
    pub l2_normalize: bool,
}

impl Default for TfIdf {
    fn default() -> Self {
        Self { sublinear_tf: true, l2_normalize: true }
    }
}

impl TfIdf {
    /// Fit IDF statistics on training documents (encoded as token-id
    /// sequences over a vocabulary of size `n_features`).
    pub fn fit(&self, train_docs: &[Vec<u32>], n_features: usize) -> TfIdfModel {
        let mut df = vec![0u32; n_features];
        for doc in train_docs {
            let mut seen = doc.clone();
            seen.sort_unstable();
            seen.dedup();
            for &t in &seen {
                df[t as usize] += 1;
            }
        }
        let n = train_docs.len() as f64;
        let idf: Vec<f32> =
            df.iter().map(|&d| (((1.0 + n) / (1.0 + d as f64)).ln() + 1.0) as f32).collect();
        TfIdfModel { idf, df, config: self.clone(), n_features, n_train_docs: train_docs.len() }
    }
}

/// A fitted TF-IDF transform.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    idf: Vec<f32>,
    /// Training document frequency per feature — the posting-list length
    /// profile of any index built over a matrix this model produces.
    df: Vec<u32>,
    config: TfIdf,
    n_features: usize,
    n_train_docs: usize,
}

impl TfIdfModel {
    /// Feature-space dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// IDF weight of feature `t`.
    pub fn idf(&self, t: u32) -> f32 {
        self.idf[t as usize]
    }

    /// Training document frequency of feature `t` (the length feature
    /// `t`'s posting list will have in a `CscIndex`/`InvertedIndex` built
    /// over the training matrix).
    pub fn df(&self, t: u32) -> u32 {
        self.df[t as usize]
    }

    /// Number of documents the model was fitted on.
    pub fn n_train_docs(&self) -> usize {
        self.n_train_docs
    }

    /// Total stored entries of the training feature matrix (`Σ_t df(t)`),
    /// i.e. the exact buffer size a column-major index over it needs.
    pub fn train_nnz(&self) -> usize {
        self.df.iter().map(|&d| d as usize).sum()
    }

    /// Density of the training feature matrix in `[0, 1]` — the statistic
    /// that justifies routing distance queries through the inverted-index
    /// kernel (TF-IDF matrices sit around 1%).
    pub fn train_density(&self) -> f64 {
        let cells = self.n_train_docs * self.n_features;
        if cells == 0 {
            0.0
        } else {
            self.train_nnz() as f64 / cells as f64
        }
    }

    /// The full IDF weight table in feature-id order (serialization
    /// export; round-trips through [`TfIdfModel::from_parts`]).
    pub fn idf_weights(&self) -> &[f32] {
        &self.idf
    }

    /// The full training document-frequency table in feature-id order.
    pub fn df_counts(&self) -> &[u32] {
        &self.df
    }

    /// The transform configuration the model was fitted with.
    pub fn config(&self) -> &TfIdf {
        &self.config
    }

    /// Rebuild a fitted model from its exported statistics. Import half of
    /// the serialization round-trip ([`TfIdfModel::idf_weights`] /
    /// [`TfIdfModel::df_counts`] / [`TfIdfModel::config`] /
    /// [`TfIdfModel::n_train_docs`]); validates the cross-table invariants
    /// instead of panicking on untrusted input.
    pub fn from_parts(
        idf: Vec<f32>,
        df: Vec<u32>,
        config: TfIdf,
        n_train_docs: usize,
    ) -> Result<Self, &'static str> {
        if idf.len() != df.len() {
            return Err("TF-IDF idf/df table length mismatch");
        }
        if df.iter().any(|&d| d as usize > n_train_docs) {
            return Err("TF-IDF document frequency exceeds corpus size");
        }
        if idf.iter().any(|w| !w.is_finite()) {
            return Err("TF-IDF idf weight not finite");
        }
        let n_features = idf.len();
        Ok(Self { idf, df, config, n_features, n_train_docs })
    }

    /// Transform one document (token-id sequence) into a sparse vector.
    pub fn transform_doc(&self, doc: &[u32]) -> SparseVec {
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for &t in doc {
            debug_assert!((t as usize) < self.n_features);
            *counts.entry(t).or_insert(0) += 1;
        }
        let pairs: Vec<(u32, f32)> = counts
            .into_iter()
            .map(|(t, c)| {
                let tf = if self.config.sublinear_tf { 1.0 + (c as f32).ln() } else { c as f32 };
                (t, tf * self.idf[t as usize])
            })
            .collect();
        let mut v = SparseVec::from_pairs(pairs, self.n_features);
        if self.config.l2_normalize {
            v.l2_normalize();
        }
        v
    }

    /// Transform a corpus into a CSR feature matrix.
    pub fn transform(&self, docs: &[Vec<u32>]) -> CsrMatrix {
        let rows: Vec<SparseVec> = docs.iter().map(|d| self.transform_doc(d)).collect();
        CsrMatrix::from_rows(&rows, self.n_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn corpus() -> Vec<Vec<u32>> {
        // feature 0 everywhere (low idf), feature 1 rare (high idf)
        vec![vec![0, 0, 1], vec![0], vec![0], vec![0]]
    }

    #[test]
    fn idf_orders_by_rarity() {
        let model = TfIdf::default().fit(&corpus(), 3);
        assert!(model.idf(1) > model.idf(0));
        // feature 2 never appears: max idf
        assert!(model.idf(2) > model.idf(1));
    }

    #[test]
    fn rows_are_unit_norm() {
        let model = TfIdf::default().fit(&corpus(), 3);
        let m = model.transform(&corpus());
        for row in m.rows() {
            if row.nnz() > 0 {
                assert!((row.l2_norm() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn empty_doc_gives_zero_row() {
        let model = TfIdf::default().fit(&corpus(), 3);
        let v = model.transform_doc(&[]);
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn raw_tf_counts_multiplicity() {
        let cfg = TfIdf { sublinear_tf: false, l2_normalize: false };
        let model = cfg.fit(&[vec![0], vec![1]], 2);
        let v = model.transform_doc(&[0, 0, 0]);
        let dense = v.to_dense();
        assert!((dense[0] / model.idf(0) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn sublinear_tf_dampens() {
        let cfg = TfIdf { sublinear_tf: true, l2_normalize: false };
        let model = cfg.fit(&[vec![0], vec![1]], 2);
        let v1 = model.transform_doc(&[0]).to_dense()[0];
        let v8 = model.transform_doc(&[0; 8]).to_dense()[0];
        assert!(v8 > v1);
        assert!(v8 < 8.0 * v1);
    }

    #[test]
    fn transform_shape() {
        let model = TfIdf::default().fit(&corpus(), 3);
        let m = model.transform(&corpus());
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
    }

    #[test]
    fn df_stats_match_transformed_matrix() {
        let model = TfIdf::default().fit(&corpus(), 3);
        assert_eq!(model.df(0), 4);
        assert_eq!(model.df(1), 1);
        assert_eq!(model.df(2), 0);
        assert_eq!(model.n_train_docs(), 4);
        let m = model.transform(&corpus());
        assert_eq!(model.train_nnz(), m.nnz());
        assert!((model.train_density() - m.density()).abs() < 1e-12);
        let counts = m.column_counts();
        for t in 0..3u32 {
            assert_eq!(model.df(t) as usize, counts[t as usize], "feature {t}");
        }
    }

    #[test]
    fn idf_no_leakage_from_transform_corpus() {
        // Fitting on train only: transforming unseen docs reuses train IDF.
        let model = TfIdf::default().fit(&corpus(), 3);
        let before = model.idf(2);
        let _ = model.transform(&[vec![2, 2], vec![2]]);
        assert_eq!(model.idf(2), before);
    }

    proptest! {
        #[test]
        fn prop_nnz_equals_distinct_tokens(
            doc in proptest::collection::vec(0u32..16, 0..40),
        ) {
            let train: Vec<Vec<u32>> = vec![(0..16).collect()];
            let model = TfIdf::default().fit(&train, 16);
            let v = model.transform_doc(&doc);
            let mut distinct = doc.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(v.nnz(), distinct.len());
        }

        #[test]
        fn prop_values_positive(
            doc in proptest::collection::vec(0u32..8, 1..20),
        ) {
            let train: Vec<Vec<u32>> = vec![(0..8).collect(), vec![0, 1]];
            let model = TfIdf::default().fit(&train, 8);
            let v = model.transform_doc(&doc);
            for (_, val) in v.as_row().iter() {
                prop_assert!(val > 0.0);
            }
        }
    }
}

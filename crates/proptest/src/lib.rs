//! Offline property-testing shim.
//!
//! The workspace's test suites were written against the `proptest` crate,
//! which is unavailable in the hermetic build environment (no network, no
//! vendored registry). This crate re-implements the *subset* of the
//! proptest API the workspace actually uses — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, range/tuple/vec/bool strategies, and
//! `ProptestConfig::with_cases` — on top of a small deterministic RNG.
//!
//! Differences from upstream proptest, by design:
//!
//! - No shrinking: a failing case reports its inputs via the assertion
//!   message (every generated binding is `Debug`-formatted on failure).
//! - Deterministic: cases are derived from a fixed per-test seed (hash of
//!   the test name), so failures reproduce exactly in CI.
//! - `ProptestConfig` only carries `cases`.

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix/xoshiro generator driving all case generation.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRunner {
    /// Seed a runner; distinct seeds give independent streams.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    /// Seed derived from a test name (FNV-1a), so each test has a stable
    /// independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2x = s2 ^ s0;
        let mut s3x = s3 ^ s1;
        let s1x = s1 ^ s2x;
        let s0x = s0 ^ s3x;
        s2x ^= t;
        s3x = s3x.rotate_left(45);
        self.state = [s0x, s1x, s2x, s3x];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. The shim keeps proptest's name so call sites read
/// identically, but `sample` replaces the tree-based `new_tree` API.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (runner.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (runner.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * runner.next_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Hit the endpoints occasionally: inclusive ranges are used
                // for boundary-sensitive properties (e.g. probabilities).
                match runner.next_u64() % 32 {
                    0 => lo,
                    1 => hi,
                    _ => lo + (hi - lo) * runner.next_f64() as $t,
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRunner};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The upstream `proptest::bool::ANY` constant.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Size specifier for [`vec()`]: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn length in `[start, end)`.
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange::Between(r.start, r.end)
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a vector strategy (`proptest::collection::vec(elem, size)`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Between(lo, hi) => lo + runner.below(hi - lo),
            };
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The items `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRunner};
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case aborts with the formatted message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Property-test entry point mirroring `proptest::proptest!`.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by any
/// number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::for_test(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut runner);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let mut a = TestRunner::new(7);
        let mut b = TestRunner::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = TestRunner::new(1);
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..5.0).sample(&mut r);
            assert!((-2.0..5.0).contains(&f));
            let fi = (0.0f64..=1.0).sample(&mut r);
            assert!((0.0..=1.0).contains(&fi));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut r = TestRunner::new(2);
        for _ in 0..100 {
            let v = collection::vec(0u32..4, 2..6).sample(&mut r);
            assert!((2..6).contains(&v.len()));
            let fixed = collection::vec(0u32..4, 3).sample(&mut r);
            assert_eq!(fixed.len(), 3);
        }
    }

    proptest! {
        #[test]
        fn macro_generates_and_checks(x in 0u32..10, flips in collection::vec(bool::ANY, 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(flips.len(), flips.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(pair in (0u32..3, -1.0f32..1.0)) {
            prop_assert!(pair.0 < 3);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_case() {
        proptest! {
            fn inner(x in 0u32..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}

//! Durable [`CheckpointStore`] implementations for the session pool.
//!
//! `nemo_core::pool::SessionPool` parks evicted sessions in a
//! [`CheckpointStore`]; the core crate ships only the plain in-memory
//! store. The stores here route every checkpoint through this crate's
//! checksummed container format instead:
//!
//! - [`FileCheckpointStore`] — one crash-safe file per session under a
//!   directory, so evicted sessions survive the process. This is the
//!   store a real deployment points at.
//! - [`EncodedCheckpointStore`] — the same encode/decode/validate
//!   round-trip, held in memory. Benchmarks use it to charge eviction its
//!   true serialization cost without coupling throughput numbers to disk
//!   speed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use nemo_core::pool::CheckpointStore;
use nemo_core::SessionCheckpoint;

use crate::format::write_atomic;
use crate::session::{load_session, session_from_bytes, session_to_bytes};

/// A [`CheckpointStore`] writing each session to
/// `<dir>/session-<id>.nemo` via the crash-safe container format
/// (temp file + fsync + atomic rename; checksummed, validated on load).
///
/// ```
/// use nemo_core::pool::{CheckpointStore, PoolConfig, SessionPool};
/// use nemo_core::{IdpConfig, SharedArtifacts, SimulatedUser};
/// use nemo_data::catalog::toy_text;
/// use nemo_persist::FileCheckpointStore;
///
/// let dir = std::env::temp_dir().join(format!("nemo-store-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
///
/// let artifacts = SharedArtifacts::new(toy_text(1));
/// let config = PoolConfig { max_resident: 1, ..Default::default() };
/// let store = Box::new(FileCheckpointStore::new(&dir));
/// let mut pool = SessionPool::with_store(&artifacts, config, store);
///
/// let a = pool.admit(IdpConfig { n_iterations: 4, seed: 1, ..Default::default() }).unwrap();
/// let b = pool.admit(IdpConfig { n_iterations: 4, seed: 2, ..Default::default() }).unwrap();
/// // Admitting `b` evicted `a` to a file; running `a` restores it.
/// assert!(dir.join("session-0.nemo").exists());
/// let mut user = SimulatedUser::default();
/// pool.run_round(a, &mut user).unwrap();
/// assert!(pool.is_resident(a));
/// assert!(!pool.is_resident(b));
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct FileCheckpointStore {
    dir: PathBuf,
}

impl FileCheckpointStore {
    /// A store rooted at `dir` (which must already exist).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The file a given session id maps to.
    pub fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(format!("session-{id}.nemo"))
    }

    /// The directory this store writes under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&mut self, id: u64, ckpt: &SessionCheckpoint) -> Result<(), String> {
        write_atomic(&self.path_of(id), &session_to_bytes(ckpt)).map_err(|e| e.to_string())
    }

    fn load(&mut self, id: u64) -> Result<SessionCheckpoint, String> {
        load_session(&self.path_of(id)).map_err(|e| e.to_string())
    }

    fn remove(&mut self, id: u64) -> Result<(), String> {
        match std::fs::remove_file(self.path_of(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// An in-memory [`CheckpointStore`] that still serializes every
/// checkpoint through the container format — structural validation and
/// encode/decode cost included, disk excluded.
#[derive(Debug, Default)]
pub struct EncodedCheckpointStore {
    blobs: HashMap<u64, Vec<u8>>,
}

impl EncodedCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held across all parked sessions.
    pub fn stored_bytes(&self) -> usize {
        self.blobs.values().map(Vec::len).sum()
    }
}

impl CheckpointStore for EncodedCheckpointStore {
    fn save(&mut self, id: u64, ckpt: &SessionCheckpoint) -> Result<(), String> {
        self.blobs.insert(id, session_to_bytes(ckpt));
        Ok(())
    }

    fn load(&mut self, id: u64) -> Result<SessionCheckpoint, String> {
        let blob =
            self.blobs.get(&id).ok_or_else(|| format!("no checkpoint stored for id {id}"))?;
        session_from_bytes(blob).map_err(|e| e.to_string())
    }

    fn remove(&mut self, id: u64) -> Result<(), String> {
        self.blobs.remove(&id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_core::{IdpConfig, NemoSystem};
    use nemo_data::catalog::toy_text;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemo-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_store_round_trips_and_removes() {
        let dir = temp_dir("rt");
        let ds = toy_text(1);
        let ckpt = NemoSystem::new(&ds, IdpConfig::default()).checkpoint();
        let mut store = FileCheckpointStore::new(&dir);
        store.save(3, &ckpt).unwrap();
        let back = store.load(3).unwrap();
        assert_eq!(back.iteration, ckpt.iteration);
        assert_eq!(back.rng_state, ckpt.rng_state);
        store.remove(3).unwrap();
        assert!(store.load(3).is_err());
        // Removing an absent id is not an error.
        store.remove(3).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encoded_store_validates_on_load() {
        let ds = toy_text(1);
        let ckpt = NemoSystem::new(&ds, IdpConfig::default()).checkpoint();
        let mut store = EncodedCheckpointStore::new();
        store.save(7, &ckpt).unwrap();
        assert!(store.stored_bytes() > 0);
        let back = store.load(7).unwrap();
        assert_eq!(back.excluded, ckpt.excluded);
        // Corrupt the blob: load must fail, not produce garbage.
        if let Some(blob) = store.blobs.get_mut(&7) {
            let mid = blob.len() / 2;
            blob[mid] ^= 0xFF;
        }
        assert!(store.load(7).is_err());
        store.remove(7).unwrap();
        assert!(store.load(7).is_err());
    }
}

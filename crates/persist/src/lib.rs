//! # nemo-persist — crash-safe artifact store and session checkpointing
//!
//! Two kinds of durable state, one container format:
//!
//! - **Dataset artifacts** ([`ArtifactBundle`]): the immutable product of
//!   dataset preparation — feature matrices with their column-major
//!   companions and cached row norms, primitive corpora, vocabulary, and
//!   fitted TF-IDF statistics — stored so a later process loads them
//!   near-instantly instead of re-running preparation.
//! - **Session checkpoints** (`nemo_core::SessionCheckpoint`): the
//!   authoritative state of a live interactive session, stored so a user
//!   can disconnect and resume *bit-identically* — a restored session
//!   makes the same selections and produces the same posteriors as one
//!   that was never interrupted.
//!
//! ## Guarantees
//!
//! **Writes are crash-safe.** [`write_atomic`] writes to a temporary file
//! in the destination directory, fsyncs it, atomically renames it over the
//! destination, and fsyncs the directory. A crash at any point leaves
//! either the complete old file or the complete new file.
//!
//! **Reads are hostile-input-safe.** Every file carries a magic, a format
//! version, an endianness canary, a file-kind tag, and CRC-32 checksums
//! over the header and every section. Loaders validate framing, length
//! prefixes (with overflow-checked arithmetic, before any allocation), and
//! every cross-buffer invariant of the decoded types. Truncation at any
//! length and corruption at any byte yield a typed [`PersistError`] —
//! never a panic, never a silently-wrong load. The fault-injection suite
//! (`tests/persist_fault_injection.rs`) enforces this byte-by-byte.
//!
//! ## Example
//!
//! ```
//! use nemo_persist::{save_artifact, load_artifact, ArtifactBundle};
//! use nemo_data::catalog::toy_text;
//!
//! let dir = std::env::temp_dir().join(format!("nemo-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("toy.nemo");
//!
//! let bundle = ArtifactBundle { dataset: toy_text(42), vocab: None, tfidf: None };
//! save_artifact(&path, &bundle).unwrap();
//! let loaded = load_artifact(&path).unwrap();
//! assert_eq!(loaded.dataset.train.n(), bundle.dataset.train.n());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod format;
pub mod session;
pub mod store;

pub use artifact::{
    artifact_from_bytes, artifact_to_bytes, load_artifact, load_shared_artifacts, save_artifact,
    ArtifactBundle,
};
pub use format::{write_atomic, PersistError};
pub use session::{load_session, save_session, session_from_bytes, session_to_bytes};
pub use store::{EncodedCheckpointStore, FileCheckpointStore};

//! Serialization of [`SessionCheckpoint`] — disconnect/resume for live
//! interactive sessions.
//!
//! This module performs *structural* validation only (framing, checksums,
//! well-formed signs and presence bytes, non-degenerate shapes). The
//! dataset-relative validation — lineage primitives inside the domain,
//! vector lengths matching the split sizes, votes within bounds — happens
//! in `nemo_core::Session::restore`, which rejects inconsistent
//! checkpoints with a typed `RestoreError`. Between the two layers, a
//! hostile checkpoint file can neither panic the loader nor corrupt a
//! session.

use std::path::Path;

use nemo_core::{EngineState, IdpConfig, LabelModelKind, SelectionStrategy, SessionCheckpoint};
use nemo_endmodel::LogRegConfig;
use nemo_lf::{Label, PrimitiveLf, TrackedLf};

use crate::format::{
    to_usize, write_atomic, Enc, FileBuilder, FileParser, PersistError, KIND_SESSION,
};

/// Section ids of a session file, in their fixed on-disk order.
mod section {
    pub const CONFIG: u32 = 1;
    pub const STATE: u32 = 2;
    pub const LINEAGE: u32 = 3;
    pub const MATRIX: u32 = 4;
    pub const OUTPUTS: u32 = 5;
    pub const WARM: u32 = 6;
    pub const ENGINE: u32 = 7;
}

/// On-disk layout version of the ENGINE section. Evolving an engine's
/// persisted state means a new version (mapped to a new `EngineState`
/// variant), never a silent layout change.
const ENGINE_VERSION: u32 = 1;

/// Serialize a checkpoint to its file image.
pub fn session_to_bytes(ckpt: &SessionCheckpoint) -> Vec<u8> {
    let mut b = FileBuilder::new(KIND_SESSION);

    let mut cfg = Enc::new();
    cfg.usize(ckpt.config.n_iterations);
    cfg.usize(ckpt.config.eval_every);
    cfg.u8(match ckpt.config.label_model {
        LabelModelKind::Metal => 0,
        LabelModelKind::Generative => 1,
        LabelModelKind::Majority => 2,
    });
    cfg.f64(ckpt.config.end_model.lr);
    cfg.usize(ckpt.config.end_model.epochs);
    cfg.f64(ckpt.config.end_model.l2);
    cfg.u8(ckpt.config.end_model.fit_intercept as u8);
    cfg.usize(ckpt.config.lfs_per_iteration);
    cfg.u64(ckpt.config.seed);
    cfg.opt_u64(ckpt.config.checkpoint_every.map(|k| k as u64));
    cfg.u8(match ckpt.config.selection {
        SelectionStrategy::Seu => 0,
        SelectionStrategy::Iws => 1,
    });
    b.section(section::CONFIG, cfg.into_bytes());

    let mut state = Enc::new();
    state.usize(ckpt.iteration);
    state.opt_u64(ckpt.pending.map(|x| x as u64));
    state.vec_bool(&ckpt.excluded);
    for &w in &ckpt.rng_state {
        state.u64(w);
    }
    state.opt_f64(ckpt.rng_gauss_spare);
    state.opt_f64(ckpt.chosen_p);
    b.section(section::STATE, state.into_bytes());

    let mut lin = Enc::new();
    lin.usize(ckpt.lineage.len());
    for rec in &ckpt.lineage {
        lin.u32(rec.lf.z);
        lin.i8(rec.lf.y.sign());
        lin.u32(rec.dev_example);
        lin.u32(rec.iteration);
    }
    b.section(section::LINEAGE, lin.into_bytes());

    let mut mat = Enc::new();
    mat.usize(ckpt.columns.len());
    for col in &ckpt.columns {
        mat.usize(col.len());
        for &(i, v) in col {
            mat.u32(i);
            mat.i8(v);
        }
    }
    b.section(section::MATRIX, mat.into_bytes());

    let mut out = Enc::new();
    out.vec_f64(&ckpt.train_p_pos);
    out.vec_f64(&ckpt.train_probs);
    out.vec_i8(&ckpt.valid_pred);
    out.vec_i8(&ckpt.test_pred);
    b.section(section::OUTPUTS, out.into_bytes());

    let mut warm = Enc::new();
    warm.usize(ckpt.warm_seeds.len());
    for seeds in &ckpt.warm_seeds {
        warm.vec_f64(seeds);
    }
    b.section(section::WARM, warm.into_bytes());

    let mut eng = Enc::new();
    eng.u32(ENGINE_VERSION);
    match &ckpt.engine {
        EngineState::Seu => eng.u8(0),
        EngineState::IwsV1 { answers } => {
            eng.u8(1);
            eng.usize(answers.len());
            for &(c, accept) in answers {
                eng.u32(c);
                eng.u8(accept as u8);
            }
        }
    }
    b.section(section::ENGINE, eng.into_bytes());

    b.into_bytes()
}

/// Deserialize a checkpoint from a file image (structural validation;
/// pass the result to `Session::restore` / `NemoSystem::restore` for
/// dataset-relative validation).
pub fn session_from_bytes(bytes: &[u8]) -> Result<SessionCheckpoint, PersistError> {
    let mut p = FileParser::open(bytes, KIND_SESSION)?;

    let mut cfg = p.section(section::CONFIG, "CONFIG")?;
    let n_iterations = cfg.usize()?;
    let eval_every = cfg.usize()?;
    let label_model = match cfg.u8()? {
        0 => LabelModelKind::Metal,
        1 => LabelModelKind::Generative,
        2 => LabelModelKind::Majority,
        _ => return Err(PersistError::InvalidValue("label-model tag must be 0, 1, or 2")),
    };
    let lr = cfg.f64()?;
    let epochs = cfg.usize()?;
    let l2 = cfg.f64()?;
    let fit_intercept = cfg.presence()?;
    let lfs_per_iteration = cfg.usize()?;
    let seed = cfg.u64()?;
    let checkpoint_every = cfg.opt_u64()?.map(to_usize).transpose()?;
    let selection = match cfg.u8()? {
        0 => SelectionStrategy::Seu,
        1 => SelectionStrategy::Iws,
        _ => return Err(PersistError::InvalidValue("selection-strategy tag must be 0 or 1")),
    };
    cfg.finish()?;
    let config = IdpConfig {
        n_iterations,
        eval_every,
        label_model,
        end_model: LogRegConfig { lr, epochs, l2, fit_intercept },
        lfs_per_iteration,
        seed,
        checkpoint_every,
        selection,
    };

    let mut state = p.section(section::STATE, "STATE")?;
    let iteration = state.usize()?;
    let pending = state.opt_u64()?.map(to_usize).transpose()?;
    let excluded = state.vec_bool()?;
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = state.u64()?;
    }
    let rng_gauss_spare = state.opt_f64()?;
    let chosen_p = state.opt_f64()?;
    state.finish()?;

    let mut lin = p.section(section::LINEAGE, "LINEAGE")?;
    let n_lfs = lin.usize()?;
    // Each record is 4 + 1 + 4 + 4 bytes; bound before allocating.
    if n_lfs.checked_mul(13).map_or(true, |b| b > lin.remaining()) {
        return Err(PersistError::LengthOverflow);
    }
    let mut lineage = Vec::with_capacity(n_lfs);
    for _ in 0..n_lfs {
        let z = lin.u32()?;
        let y = Label::from_sign(lin.i8()?)
            .ok_or(PersistError::InvalidValue("LF label sign must be ±1"))?;
        let dev_example = lin.u32()?;
        let iteration = lin.u32()?;
        lineage.push(TrackedLf { lf: PrimitiveLf::new(z, y), dev_example, iteration });
    }
    lin.finish()?;

    let mut mat = p.section(section::MATRIX, "MATRIX")?;
    let n_cols = mat.usize()?;
    if n_cols.checked_mul(8).map_or(true, |b| b > mat.remaining()) {
        return Err(PersistError::LengthOverflow);
    }
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let n_entries = mat.usize()?;
        if n_entries.checked_mul(5).map_or(true, |b| b > mat.remaining()) {
            return Err(PersistError::LengthOverflow);
        }
        let mut col = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let i = mat.u32()?;
            let v = mat.i8()?;
            col.push((i, v));
        }
        columns.push(col);
    }
    mat.finish()?;

    let mut out = p.section(section::OUTPUTS, "OUTPUTS")?;
    let train_p_pos = out.vec_f64()?;
    let train_probs = out.vec_f64()?;
    let valid_pred = out.vec_i8()?;
    let test_pred = out.vec_i8()?;
    out.finish()?;

    let mut warm = p.section(section::WARM, "WARM")?;
    let n_seeds = warm.usize()?;
    if n_seeds.checked_mul(8).map_or(true, |b| b > warm.remaining()) {
        return Err(PersistError::LengthOverflow);
    }
    let mut warm_seeds = Vec::with_capacity(n_seeds);
    for _ in 0..n_seeds {
        warm_seeds.push(warm.vec_f64()?);
    }
    warm.finish()?;

    let mut eng = p.section(section::ENGINE, "ENGINE")?;
    if eng.u32()? != ENGINE_VERSION {
        return Err(PersistError::InvalidValue("unknown ENGINE section version"));
    }
    let engine = match eng.u8()? {
        0 => EngineState::Seu,
        1 => {
            let n_answers = eng.usize()?;
            // Each answer is 4 + 1 bytes; bound before allocating.
            if n_answers.checked_mul(5).map_or(true, |b| b > eng.remaining()) {
                return Err(PersistError::LengthOverflow);
            }
            let mut answers = Vec::with_capacity(n_answers);
            for _ in 0..n_answers {
                let c = eng.u32()?;
                let accept = eng.presence()?;
                answers.push((c, accept));
            }
            EngineState::IwsV1 { answers }
        }
        _ => return Err(PersistError::InvalidValue("engine-state tag must be 0 or 1")),
    };
    eng.finish()?;
    p.finish()?;

    Ok(SessionCheckpoint {
        config,
        iteration,
        pending,
        lineage,
        columns,
        excluded,
        train_p_pos,
        train_probs,
        valid_pred,
        test_pred,
        chosen_p,
        rng_state,
        rng_gauss_spare,
        warm_seeds,
        engine,
    })
}

/// Write a checkpoint to `path` crash-safely (temp file + fsync + atomic
/// rename).
pub fn save_session(path: &Path, ckpt: &SessionCheckpoint) -> Result<(), PersistError> {
    write_atomic(path, &session_to_bytes(ckpt))
}

/// Load a checkpoint from `path` (structural validation only; see
/// [`session_from_bytes`]).
pub fn load_session(path: &Path) -> Result<SessionCheckpoint, PersistError> {
    session_from_bytes(&std::fs::read(path)?)
}

//! The immutable dataset artifact store.
//!
//! Serializes the expensive-to-build artifact set of a prepared dataset —
//! feature matrices with their column-major companions and cached row
//! norms, the primitive corpus, and the text pipeline's fitted state
//! (vocabulary + TF-IDF statistics) — into one checksummed file, so a
//! later process can load it near-instantly instead of re-running dataset
//! preparation (tokenization, TF-IDF fitting, CSC construction).
//!
//! Loading is hostile-input-safe: after the container layer verifies
//! framing and checksums, this module re-validates every cross-buffer
//! invariant (via the fallible `from_parts`/`from_raw_parts` importers and
//! a fallible replication of `Dataset::validate`), so a crafted file with
//! consistent CRCs still cannot produce a structurally-broken dataset or a
//! panic.

use std::path::Path;
use std::sync::Arc;

use nemo_core::SharedArtifacts;
use nemo_data::{Dataset, Features, Split};
use nemo_lf::{Label, Metric, PrimitiveCorpus};
use nemo_sparse::{CscIndex, CsrMatrix, DenseMatrix};
use nemo_text::{TfIdf, TfIdfModel, Vocab};

use crate::format::{write_atomic, Dec, Enc, FileBuilder, FileParser, PersistError, KIND_ARTIFACT};

/// Section ids of an artifact file, in their fixed on-disk order.
mod section {
    pub const META: u32 = 1;
    pub const TRAIN: u32 = 2;
    pub const VALID: u32 = 3;
    pub const TEST: u32 = 4;
    pub const TEXT: u32 = 5;
}

/// Everything the dataset-preparation pipeline produces that is worth
/// persisting: the dataset itself plus the fitted text-pipeline state
/// (present for text tasks, absent for dense-embedding tasks).
#[derive(Debug, Clone)]
pub struct ArtifactBundle {
    /// The prepared dataset (all three splits, features, corpora).
    pub dataset: Dataset,
    /// Token vocabulary, if the dataset came from the text pipeline.
    pub vocab: Option<Vocab>,
    /// Fitted TF-IDF statistics, if the dataset came from the text
    /// pipeline.
    pub tfidf: Option<TfIdfModel>,
}

impl ArtifactBundle {
    /// Move the bundle into the multi-tenant serving shape: the immutable
    /// [`SharedArtifacts`] every concurrent session borrows.
    pub fn into_shared(self) -> SharedArtifacts {
        SharedArtifacts::with_text(self.dataset, self.vocab, self.tfidf)
    }
}

impl From<ArtifactBundle> for SharedArtifacts {
    fn from(bundle: ArtifactBundle) -> Self {
        bundle.into_shared()
    }
}

/// Load an artifact file straight into the [`Arc`] handle a multi-tenant
/// deployment shares: one disk read, zero dataset copies, ready for
/// `nemo_core::pool::SessionPool`.
pub fn load_shared_artifacts(path: &Path) -> Result<Arc<SharedArtifacts>, PersistError> {
    Ok(Arc::new(load_artifact(path)?.into_shared()))
}

fn enc_split(e: &mut Enc, s: &Split) {
    e.vec_i8(&s.labels.iter().map(|l| l.sign()).collect::<Vec<_>>());
    e.vec_u32(&s.clusters);
    e.usize(s.corpus.len());
    for i in 0..s.corpus.len() {
        e.vec_u32(s.corpus.primitives_of(i));
    }
    let f = &s.features;
    let (row_offsets, indices, values) = f.csr().raw_parts();
    match (f.dense(), f.csc()) {
        (None, Some(csc)) => {
            e.u8(0); // sparse-backed
            e.vec_usize(row_offsets);
            e.vec_u32(indices);
            e.vec_f32(values);
            e.usize(f.dim());
            let (offsets, rows, vals) = csc.raw_parts();
            e.vec_usize(offsets);
            e.vec_u32(rows);
            e.vec_f32(vals);
        }
        (Some(d), None) => {
            e.u8(1); // dense-backed (CSR mirror persisted alongside)
            e.vec_usize(row_offsets);
            e.vec_u32(indices);
            e.vec_f32(values);
            e.usize(f.dim());
            e.usize(d.n_rows());
            e.usize(d.n_cols());
            e.vec_f32(d.flat());
        }
        // invariant: Features construction guarantees exactly one backing.
        _ => unreachable!("Features carries exactly one of dense/CSC"),
    }
    e.vec_f64(f.sq_norms());
}

fn dec_split(d: &mut Dec<'_>, n_primitives: usize) -> Result<Split, PersistError> {
    let signs = d.vec_i8()?;
    let labels = signs
        .iter()
        .map(|&s| Label::from_sign(s).ok_or(PersistError::InvalidValue("label sign must be ±1")))
        .collect::<Result<Vec<_>, _>>()?;
    let clusters = d.vec_u32()?;
    let n_docs = d.usize()?;
    // Each doc costs at least a u64 length prefix; bound before allocating.
    if n_docs.checked_mul(8).map_or(true, |b| b > d.remaining()) {
        return Err(PersistError::LengthOverflow);
    }
    let mut docs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let doc = d.vec_u32()?;
        // Pre-validate so `PrimitiveCorpus::new` cannot hit its domain
        // assertion on hostile input.
        if doc.iter().any(|&z| z as usize >= n_primitives) {
            return Err(PersistError::InvalidValue("corpus primitive id out of domain"));
        }
        docs.push(doc);
    }
    let corpus = PrimitiveCorpus::new(docs, n_primitives);

    let tag = d.u8()?;
    let row_offsets = d.vec_usize()?;
    let indices = d.vec_u32()?;
    let values = d.vec_f32()?;
    let n_cols = d.usize()?;
    let csr = CsrMatrix::from_raw_parts(row_offsets, indices, values, n_cols)
        .map_err(PersistError::InvalidValue)?;
    let n_rows = csr.n_rows();
    let features = match tag {
        0 => {
            let offsets = d.vec_usize()?;
            let rows = d.vec_u32()?;
            let vals = d.vec_f32()?;
            let csc = CscIndex::from_raw_parts(offsets, rows, vals, n_rows)
                .map_err(PersistError::InvalidValue)?;
            if csc.n_cols() != n_cols {
                return Err(PersistError::InvalidValue("CSC width does not match CSR"));
            }
            let sq_norms = d.vec_f64()?;
            Features::from_parts(csr, None, Some(csc), sq_norms)
                .map_err(PersistError::InvalidValue)?
        }
        1 => {
            let d_rows = d.usize()?;
            let d_cols = d.usize()?;
            let flat = d.vec_f32()?;
            if d_rows.checked_mul(d_cols) != Some(flat.len()) {
                return Err(PersistError::InvalidValue("dense buffer length ≠ rows × cols"));
            }
            let dense = DenseMatrix::from_flat(flat, d_rows, d_cols);
            let sq_norms = d.vec_f64()?;
            Features::from_parts(csr, Some(dense), None, sq_norms)
                .map_err(PersistError::InvalidValue)?
        }
        _ => return Err(PersistError::InvalidValue("feature backing tag must be 0 or 1")),
    };

    // Fallible replication of `Split::validate`.
    if labels.len() != features.n()
        || labels.len() != corpus.len()
        || labels.len() != clusters.len()
    {
        return Err(PersistError::InvalidValue("split field lengths disagree"));
    }
    Ok(Split { labels, features, corpus, clusters })
}

/// Serialize a bundle to its file image.
pub fn artifact_to_bytes(bundle: &ArtifactBundle) -> Vec<u8> {
    let ds = &bundle.dataset;
    let mut b = FileBuilder::new(KIND_ARTIFACT);

    let mut meta = Enc::new();
    meta.str(&ds.name);
    meta.u8(match ds.metric {
        Metric::Accuracy => 0,
        Metric::F1 => 1,
    });
    meta.usize(ds.n_primitives);
    meta.f64(ds.class_prior_pos);
    meta.usize(ds.primitive_names.len());
    for name in &ds.primitive_names {
        meta.str(name);
    }
    meta.vec_u32(&ds.lexicon);
    b.section(section::META, meta.into_bytes());

    for (id, split) in
        [(section::TRAIN, &ds.train), (section::VALID, &ds.valid), (section::TEST, &ds.test)]
    {
        let mut e = Enc::new();
        enc_split(&mut e, split);
        b.section(id, e.into_bytes());
    }

    let mut text = Enc::new();
    match &bundle.vocab {
        Some(v) => {
            text.u8(1);
            text.usize(v.tokens().len());
            for t in v.tokens() {
                text.str(t);
            }
        }
        None => text.u8(0),
    }
    match &bundle.tfidf {
        Some(m) => {
            text.u8(1);
            text.vec_f32(m.idf_weights());
            text.vec_u32(m.df_counts());
            text.u8(m.config().sublinear_tf as u8);
            text.u8(m.config().l2_normalize as u8);
            text.usize(m.n_train_docs());
        }
        None => text.u8(0),
    }
    b.section(section::TEXT, text.into_bytes());

    b.into_bytes()
}

/// Deserialize and fully validate a bundle from a file image.
pub fn artifact_from_bytes(bytes: &[u8]) -> Result<ArtifactBundle, PersistError> {
    let mut p = FileParser::open(bytes, KIND_ARTIFACT)?;

    let mut meta = p.section(section::META, "META")?;
    let name = meta.str()?;
    let metric = match meta.u8()? {
        0 => Metric::Accuracy,
        1 => Metric::F1,
        _ => return Err(PersistError::InvalidValue("metric tag must be 0 or 1")),
    };
    let n_primitives = meta.usize()?;
    let class_prior_pos = meta.f64()?;
    if !(0.0..=1.0).contains(&class_prior_pos) {
        return Err(PersistError::InvalidValue("class prior must lie in [0, 1]"));
    }
    let n_names = meta.usize()?;
    if n_names != n_primitives {
        return Err(PersistError::InvalidValue("primitive name count ≠ domain size"));
    }
    // Each name costs at least its u64 length prefix.
    if n_names.checked_mul(8).map_or(true, |b| b > meta.remaining()) {
        return Err(PersistError::LengthOverflow);
    }
    let mut primitive_names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        primitive_names.push(meta.str()?);
    }
    let lexicon = meta.vec_u32()?;
    if lexicon.windows(2).any(|w| w[0] >= w[1]) {
        return Err(PersistError::InvalidValue("lexicon must be sorted unique"));
    }
    if lexicon.last().is_some_and(|&max| max as usize >= n_primitives) {
        return Err(PersistError::InvalidValue("lexicon primitive out of domain"));
    }
    meta.finish()?;

    let mut train_dec = p.section(section::TRAIN, "TRAIN")?;
    let train = dec_split(&mut train_dec, n_primitives)?;
    train_dec.finish()?;
    let mut valid_dec = p.section(section::VALID, "VALID")?;
    let valid = dec_split(&mut valid_dec, n_primitives)?;
    valid_dec.finish()?;
    let mut test_dec = p.section(section::TEST, "TEST")?;
    let test = dec_split(&mut test_dec, n_primitives)?;
    test_dec.finish()?;

    let mut text = p.section(section::TEXT, "TEXT")?;
    let vocab = if text.presence()? {
        let n_tokens = text.usize()?;
        if n_tokens.checked_mul(8).map_or(true, |b| b > text.remaining()) {
            return Err(PersistError::LengthOverflow);
        }
        let mut tokens = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            tokens.push(text.str()?);
        }
        Some(Vocab::from_tokens(tokens).map_err(PersistError::InvalidValue)?)
    } else {
        None
    };
    let tfidf = if text.presence()? {
        let idf = text.vec_f32()?;
        let df = text.vec_u32()?;
        let config = TfIdf { sublinear_tf: text.presence()?, l2_normalize: text.presence()? };
        let n_train_docs = text.usize()?;
        Some(
            TfIdfModel::from_parts(idf, df, config, n_train_docs)
                .map_err(PersistError::InvalidValue)?,
        )
    } else {
        None
    };
    text.finish()?;
    p.finish()?;

    let dataset = Dataset {
        name,
        metric,
        train,
        valid,
        test,
        n_primitives,
        primitive_names,
        lexicon,
        class_prior_pos,
    };
    // `dec_split` + the META checks above fallibly replicate everything
    // `Dataset::validate` asserts, so a load never reaches a panic.
    Ok(ArtifactBundle { dataset, vocab, tfidf })
}

/// Write a bundle to `path` crash-safely (temp file + fsync + atomic
/// rename).
pub fn save_artifact(path: &Path, bundle: &ArtifactBundle) -> Result<(), PersistError> {
    write_atomic(path, &artifact_to_bytes(bundle))
}

/// Load and fully validate a bundle from `path`.
pub fn load_artifact(path: &Path) -> Result<ArtifactBundle, PersistError> {
    artifact_from_bytes(&std::fs::read(path)?)
}

//! The container format: header, checksummed sections, primitive codecs,
//! and crash-safe file replacement.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NEMOPRST"
//! 8       4     format version (little-endian u32; currently 1)
//! 12      4     endianness tag 0x0102_0304 (LE on disk; a byte-swapped
//!               writer would round-trip to 0x0403_0201)
//! 16      4     file kind (1 = dataset artifact, 2 = session checkpoint)
//! 20      4     section count
//! 24      4     CRC-32 (IEEE) over bytes 0..24
//! 28      …     sections, sequential:
//!               [u32 section id][u64 payload length][u32 payload CRC][payload]
//! ```
//!
//! All integers are little-endian. Sections appear in a fixed order per
//! file kind, so the reader knows exactly which id must come next — a
//! corrupted id is caught by position, not by searching.
//!
//! ## Why every corruption maps to a typed error
//!
//! - Any byte flip in the header trips the magic, version, endianness,
//!   kind, count, or header-CRC check.
//! - Any byte flip in a section id trips the fixed-order id check; in a
//!   length prefix it either desynchronizes the CRC framing or runs past
//!   the end of the buffer ([`PersistError::Truncated`] /
//!   [`PersistError::LengthOverflow`]); in a payload or its CRC it trips
//!   [`PersistError::ChecksumMismatch`].
//! - Truncation at any length cuts a header field, a section frame, or a
//!   payload — all of which read as [`PersistError::Truncated`] (or a
//!   CRC/count mismatch when the cut lands on a frame boundary).
//! - A *crafted* file with consistent CRCs can still lie inside a payload
//!   (an element count larger than the payload holds); the element
//!   decoders therefore validate every length prefix against the bytes
//!   actually remaining, with overflow-checked multiplication.
//!
//! `tests/persist_fault_injection.rs` exercises all of the above
//! byte-by-byte.

use std::fs;
use std::io::Write;
use std::path::Path;

/// On-disk magic, first 8 bytes of every file.
pub const MAGIC: [u8; 8] = *b"NEMOPRST";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Endianness canary: round-trips to itself only under the writer's
/// byte order.
pub const ENDIAN_TAG: u32 = 0x0102_0304;
/// File kind: immutable dataset artifact bundle.
pub const KIND_ARTIFACT: u32 = 1;
/// File kind: session checkpoint.
pub const KIND_SESSION: u32 = 2;
/// Header length in bytes (magic through header CRC).
pub const HEADER_LEN: usize = 28;

/// Why a persisted file could not be written or loaded.
///
/// Loading never panics on hostile input: every structural inconsistency
/// maps to one of these variants.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The endianness canary does not round-trip: the file was written
    /// with a different byte order.
    EndiannessMismatch,
    /// The file is of a different kind than requested (e.g. a session
    /// checkpoint opened as a dataset artifact).
    WrongKind {
        /// Kind requested by the caller.
        expected: u32,
        /// Kind recorded in the file.
        found: u32,
    },
    /// The file ends before a declared field or payload.
    Truncated,
    /// The header's or a section's CRC-32 does not match its bytes.
    ChecksumMismatch {
        /// What failed: `"header"` or the section name.
        what: &'static str,
    },
    /// A section id out of the fixed order for this file kind.
    UnexpectedSection {
        /// Section id required at this position.
        expected: u32,
        /// Section id found.
        found: u32,
    },
    /// The header's section count disagrees with the sections present.
    SectionCount {
        /// Sections the reader needed.
        expected: u32,
        /// Sections the header declared.
        found: u32,
    },
    /// A length prefix asks for more elements than the payload holds
    /// (or overflows the address space).
    LengthOverflow,
    /// A decoded value violates a documented invariant of its type.
    InvalidValue(&'static str),
    /// Valid sections were followed by unaccounted trailing bytes.
    TrailingBytes,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a nemo persist file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v} (this build reads {FORMAT_VERSION})")
            }
            PersistError::EndiannessMismatch => {
                write!(f, "file written with a different byte order")
            }
            PersistError::WrongKind { expected, found } => {
                write!(f, "wrong file kind: expected {expected}, found {found}")
            }
            PersistError::Truncated => write!(f, "file truncated"),
            PersistError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch in {what}")
            }
            PersistError::UnexpectedSection { expected, found } => {
                write!(f, "unexpected section id {found} (expected {expected})")
            }
            PersistError::SectionCount { expected, found } => {
                write!(
                    f,
                    "section count mismatch: header declares {found}, reader needs {expected}"
                )
            }
            PersistError::LengthOverflow => {
                write!(f, "length prefix exceeds the available payload")
            }
            PersistError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            PersistError::TrailingBytes => write!(f, "trailing bytes after the last section"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB8_8320) lookup tables,
/// built at compile time — the workspace is dependency-free by design, so
/// the checksum is implemented here. Eight tables implement the
/// slicing-by-8 variant: table `t` maps a byte to its CRC contribution
/// `t` positions further down the stream, so eight input bytes fold into
/// the running CRC per iteration instead of one. Checksumming is the
/// single largest cost of loading a multi-megabyte artifact, so the
/// bulk-path throughput is what makes checkpoint loads near-instant.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes`, eight bytes per table lookup round.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Convert a persisted `u64` count/index to `usize`, rejecting values the
/// address space cannot hold.
pub fn to_usize(v: u64) -> Result<usize, PersistError> {
    usize::try_from(v).map_err(|_| PersistError::LengthOverflow)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append-only payload encoder. All multi-byte values are little-endian;
/// variable-length data is length-prefixed with a `u64` element count.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append an `i8` (two's complement byte).
    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a little-endian `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a little-endian IEEE-754 `f32` (bit pattern preserved).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f64` (bit pattern preserved).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    /// Append an optional `f64` (presence byte + value).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
            None => self.u8(0),
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u32` slice.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Append a length-prefixed `usize` slice (as `u64`s).
    pub fn vec_usize(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    /// Append a length-prefixed `i8` slice.
    pub fn vec_i8(&mut self, v: &[i8]) {
        self.usize(v.len());
        for &x in v {
            self.i8(x);
        }
    }

    /// Append a length-prefixed bool slice (one byte per flag).
    pub fn vec_bool(&mut self, v: &[bool]) {
        self.usize(v.len());
        for &x in v {
            self.u8(x as u8);
        }
    }

    /// Append a length-prefixed `f32` slice.
    pub fn vec_f32(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }

    /// Append a length-prefixed `f64` slice.
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked payload cursor. Every read validates against the bytes
/// actually present; element counts are checked with overflow-safe
/// arithmetic *before* any allocation, so a lying length prefix cannot
/// trigger a huge allocation or a panic.
#[derive(Debug, Clone, Copy)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Require the payload to be fully consumed (a valid-CRC payload with
    /// leftover bytes is malformed, not silently acceptable).
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if n > self.remaining() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Read an `i8`.
    pub fn i8(&mut self) -> Result<i8, PersistError> {
        Ok(self.take(1)?[0] as i8)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `u64` and convert to `usize`.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        to_usize(self.u64()?)
    }

    /// Read an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a presence byte (`0`/`1`; anything else is invalid).
    pub fn presence(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::InvalidValue("presence byte must be 0 or 1")),
        }
    }

    /// Read an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, PersistError> {
        Ok(if self.presence()? { Some(self.u64()?) } else { None })
    }

    /// Read an optional `f64`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, PersistError> {
        Ok(if self.presence()? { Some(self.f64()?) } else { None })
    }

    /// Validate an element-count prefix against the remaining payload:
    /// `count * elem_size` must fit in `usize` *and* in the bytes left.
    fn checked_count(&self, count: usize, elem_size: usize) -> Result<usize, PersistError> {
        let bytes = count.checked_mul(elem_size).ok_or(PersistError::LengthOverflow)?;
        if bytes > self.remaining() {
            return Err(PersistError::LengthOverflow);
        }
        Ok(count)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::InvalidValue("string is not valid UTF-8"))
    }

    /// Read a length-prefixed `u32` vector.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Read a length-prefixed `usize` vector (stored as `u64`s).
    pub fn vec_usize(&mut self) -> Result<Vec<usize>, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 8)?;
        let bytes = self.take(n * 8)?;
        bytes
            .chunks_exact(8)
            .map(|c| to_usize(u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])))
            .collect()
    }

    /// Read a length-prefixed `i8` vector.
    pub fn vec_i8(&mut self) -> Result<Vec<i8>, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 1)?;
        let bytes = self.take(n)?;
        Ok(bytes.iter().map(|&b| b as i8).collect())
    }

    /// Read a length-prefixed bool vector (bytes must be 0/1).
    pub fn vec_bool(&mut self) -> Result<Vec<bool>, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 1)?;
        let bytes = self.take(n)?;
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(PersistError::InvalidValue("bool byte must be 0 or 1")),
            })
            .collect()
    }

    /// Read a length-prefixed `f32` vector (bit patterns preserved).
    pub fn vec_f32(&mut self) -> Result<Vec<f32>, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Read a length-prefixed `f64` vector (bit patterns preserved).
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.usize()?;
        let n = self.checked_count(n, 8)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// File assembly and parsing
// ---------------------------------------------------------------------------

/// Assembles a complete file image: header plus checksummed sections in
/// the order they are added.
#[derive(Debug)]
pub struct FileBuilder {
    kind: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl FileBuilder {
    /// Start a file of the given kind.
    pub fn new(kind: u32) -> Self {
        Self { kind, sections: Vec::new() }
    }

    /// Append a section.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// Produce the final byte image (header CRC and per-section CRCs
    /// computed here).
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Parses a file image: validates the header, then serves sections in the
/// caller's fixed order, verifying id, framing, and CRC for each.
#[derive(Debug)]
pub struct FileParser<'a> {
    buf: &'a [u8],
    pos: usize,
    sections_left: u32,
    sections_declared: u32,
    sections_read: u32,
}

impl<'a> FileParser<'a> {
    /// Validate the header of `buf` as a file of kind `expected_kind`.
    pub fn open(buf: &'a [u8], expected_kind: u32) -> Result<Self, PersistError> {
        if buf.len() < HEADER_LEN {
            // Distinguish "not even a magic" from a short header so tiny
            // files still produce a sensible error.
            if buf.len() < MAGIC.len() {
                return Err(if buf.is_empty() || !MAGIC.starts_with(buf) {
                    PersistError::BadMagic
                } else {
                    PersistError::Truncated
                });
            }
            if buf[..MAGIC.len()] != MAGIC {
                return Err(PersistError::BadMagic);
            }
            return Err(PersistError::Truncated);
        }
        if buf[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let word = |at: usize| u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        // The endianness canary is checked before the version: on a
        // byte-swapped file *every* header word is garbled, and the swap
        // is the actionable diagnosis.
        if word(12) != ENDIAN_TAG {
            return Err(PersistError::EndiannessMismatch);
        }
        if word(8) != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(word(8)));
        }
        if word(24) != crc32(&buf[..24]) {
            return Err(PersistError::ChecksumMismatch { what: "header" });
        }
        if word(16) != expected_kind {
            return Err(PersistError::WrongKind { expected: expected_kind, found: word(16) });
        }
        let n_sections = word(20);
        Ok(Self {
            buf,
            pos: HEADER_LEN,
            sections_left: n_sections,
            sections_declared: n_sections,
            sections_read: 0,
        })
    }

    /// Read the next section, which must carry `expected_id`
    /// (`name` labels checksum failures). Returns a [`Dec`] over the
    /// verified payload.
    pub fn section(
        &mut self,
        expected_id: u32,
        name: &'static str,
    ) -> Result<Dec<'a>, PersistError> {
        if self.sections_left == 0 {
            return Err(PersistError::SectionCount {
                expected: self.sections_read + 1,
                found: self.sections_declared,
            });
        }
        let frame = self.buf.get(self.pos..self.pos + 16).ok_or(PersistError::Truncated)?;
        let id = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        if id != expected_id {
            return Err(PersistError::UnexpectedSection { expected: expected_id, found: id });
        }
        let len = to_usize(u64::from_le_bytes([
            frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
        ]))?;
        let crc = u32::from_le_bytes([frame[12], frame[13], frame[14], frame[15]]);
        let start = self.pos + 16;
        let payload = self
            .buf
            .get(start..start.checked_add(len).ok_or(PersistError::LengthOverflow)?)
            .ok_or(PersistError::Truncated)?;
        if crc32(payload) != crc {
            return Err(PersistError::ChecksumMismatch { what: name });
        }
        self.pos = start + len;
        self.sections_left -= 1;
        self.sections_read += 1;
        Ok(Dec::new(payload))
    }

    /// Require the file to be fully consumed: no undeclared sections, no
    /// declared-but-unread sections, no trailing bytes.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.sections_left != 0 {
            return Err(PersistError::SectionCount {
                expected: self.sections_read,
                found: self.sections_declared,
            });
        }
        if self.pos != self.buf.len() {
            return Err(PersistError::TrailingBytes);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Crash-safe file replacement
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` crash-safely: write to a temporary file in the
/// same directory, fsync it, atomically rename it over `path`, then fsync
/// the directory. A crash at any point leaves either the old file or the
/// new file — never a partial mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Io(std::io::Error::other("path has no file name")))?;
    let tmp = {
        let mut name = std::ffi::OsString::from(".");
        name.push(file_name);
        name.push(format!(".tmp.{}", std::process::id()));
        match dir {
            Some(d) => d.join(name),
            None => std::path::PathBuf::from(name),
        }
    };
    let result = (|| -> Result<(), PersistError> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Make the rename itself durable (directory metadata).
        if let Some(d) = dir {
            if let Ok(dh) = fs::File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn primitive_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.i8(-3);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f32(-0.0);
        e.f64(f64::NEG_INFINITY);
        e.opt_f64(Some(1.5));
        e.opt_f64(None);
        e.opt_u64(Some(9));
        e.str("héllo");
        e.vec_u32(&[1, 2, 3]);
        e.vec_i8(&[-1, 1]);
        e.vec_bool(&[true, false]);
        e.vec_f64(&[0.25]);
        e.vec_usize(&[0, usize::MAX]);
        e.vec_f32(&[1.0, -2.5]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.i8().unwrap(), -3);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(d.opt_f64().unwrap(), Some(1.5));
        assert_eq!(d.opt_f64().unwrap(), None);
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.vec_i8().unwrap(), vec![-1, 1]);
        assert_eq!(d.vec_bool().unwrap(), vec![true, false]);
        assert_eq!(d.vec_f64().unwrap(), vec![0.25]);
        assert_eq!(d.vec_usize().unwrap(), vec![0, usize::MAX]);
        assert_eq!(d.vec_f32().unwrap(), vec![1.0, -2.5]);
        d.finish().unwrap();
    }

    #[test]
    fn lying_length_prefix_is_overflow_not_panic() {
        let mut e = Enc::new();
        e.usize(1_000_000); // declares a million elements…
        e.u32(1); // …but holds one
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.vec_u32(), Err(PersistError::LengthOverflow)));
        // Absurd count that would overflow `count * elem_size`.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.vec_f64(), Err(PersistError::LengthOverflow)));
    }

    #[test]
    fn truncated_reads_are_typed() {
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(d.u32(), Err(PersistError::Truncated)));
        let mut d = Dec::new(&[]);
        assert!(matches!(d.u8(), Err(PersistError::Truncated)));
    }

    #[test]
    fn file_roundtrip_and_finish() {
        let mut b = FileBuilder::new(KIND_ARTIFACT);
        let mut e = Enc::new();
        e.vec_u32(&[4, 5]);
        b.section(1, e.into_bytes());
        b.section(2, Vec::new());
        let bytes = b.into_bytes();
        let mut p = FileParser::open(&bytes, KIND_ARTIFACT).unwrap();
        let mut s1 = p.section(1, "first").unwrap();
        assert_eq!(s1.vec_u32().unwrap(), vec![4, 5]);
        s1.finish().unwrap();
        let s2 = p.section(2, "second").unwrap();
        s2.finish().unwrap();
        p.finish().unwrap();
    }

    #[test]
    fn header_violations_are_typed() {
        let mut b = FileBuilder::new(KIND_ARTIFACT);
        b.section(1, vec![1, 2, 3]);
        let good = b.into_bytes();

        assert!(matches!(FileParser::open(&[], KIND_ARTIFACT), Err(PersistError::BadMagic)));
        assert!(matches!(
            FileParser::open(&good[..10], KIND_ARTIFACT),
            Err(PersistError::Truncated)
        ));
        assert!(matches!(
            FileParser::open(&good, KIND_SESSION),
            Err(PersistError::WrongKind { expected: KIND_SESSION, found: KIND_ARTIFACT })
        ));

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(FileParser::open(&bad, KIND_ARTIFACT), Err(PersistError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99; // version — caught by the version check
        assert!(matches!(
            FileParser::open(&bad, KIND_ARTIFACT),
            Err(PersistError::UnsupportedVersion(99))
        ));

        let mut bad = good.clone();
        bad[12] ^= 0xFF; // endian tag
        assert!(matches!(
            FileParser::open(&bad, KIND_ARTIFACT),
            Err(PersistError::EndiannessMismatch)
        ));

        let mut bad = good.clone();
        bad[20] ^= 1; // section count — header CRC trips
        assert!(matches!(
            FileParser::open(&bad, KIND_ARTIFACT),
            Err(PersistError::ChecksumMismatch { what: "header" })
        ));
    }

    #[test]
    fn section_violations_are_typed() {
        let mut b = FileBuilder::new(KIND_SESSION);
        b.section(3, vec![9; 8]);
        let good = b.into_bytes();

        // Wrong id at this position.
        let mut p = FileParser::open(&good, KIND_SESSION).unwrap();
        assert!(matches!(
            p.section(4, "other"),
            Err(PersistError::UnexpectedSection { expected: 4, found: 3 })
        ));

        // Payload corruption.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        let mut p = FileParser::open(&bad, KIND_SESSION).unwrap();
        assert!(matches!(
            p.section(3, "payload"),
            Err(PersistError::ChecksumMismatch { what: "payload" })
        ));

        // Asking for more sections than declared.
        let mut p = FileParser::open(&good, KIND_SESSION).unwrap();
        p.section(3, "payload").unwrap();
        assert!(matches!(p.section(5, "missing"), Err(PersistError::SectionCount { .. })));

        // Declared sections left unread.
        let p = FileParser::open(&good, KIND_SESSION).unwrap();
        assert!(matches!(p.finish(), Err(PersistError::SectionCount { .. })));

        // Trailing garbage after the last section.
        let mut bad = good.clone();
        bad.push(0);
        // Header CRC does not cover the tail, so open succeeds…
        let mut p = FileParser::open(&bad, KIND_SESSION).unwrap();
        p.section(3, "payload").unwrap();
        // …but finish rejects the extra byte.
        assert!(matches!(p.finish(), Err(PersistError::TrailingBytes)));
    }

    #[test]
    fn write_atomic_replaces_and_survives_garbage_tmp() {
        let dir = std::env::temp_dir().join(format!("nemo-persist-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

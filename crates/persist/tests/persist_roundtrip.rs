//! Serialize → deserialize identity for every persisted type.
//!
//! The canonical-form property checked throughout: re-serializing a loaded
//! value reproduces the original file image byte-for-byte. Because the
//! file image contains the exact bit patterns of every float, offset, and
//! index, byte equality of images is bit-level equality of everything the
//! store persists — stronger than any field-by-field comparison.

use nemo_data::catalog::toy_text;
use nemo_data::{Dataset, Features, Split};
use nemo_lf::{Label, Metric, PrimitiveCorpus, PrimitiveLf, TrackedLf};
use nemo_persist::{
    artifact_from_bytes, artifact_to_bytes, load_artifact, load_session, save_artifact,
    save_session, session_from_bytes, session_to_bytes, ArtifactBundle,
};
use nemo_sparse::{CsrMatrix, DenseMatrix, SparseVec};
use nemo_text::{TfIdf, Vocab};
use proptest::prelude::*;
use proptest::TestRunner;

fn artifact_roundtrips(bundle: &ArtifactBundle) {
    let bytes = artifact_to_bytes(bundle);
    let loaded = artifact_from_bytes(&bytes).expect("valid image must load");
    assert_eq!(artifact_to_bytes(&loaded), bytes, "canonical form must be a fixed point");
}

fn session_roundtrips(ckpt: &nemo_core::SessionCheckpoint) {
    let bytes = session_to_bytes(ckpt);
    let loaded = session_from_bytes(&bytes).expect("valid image must load");
    assert_eq!(session_to_bytes(&loaded), bytes, "canonical form must be a fixed point");
}

/// A split with `n` examples over `n_primitives`, sparse- or dense-backed,
/// with shapes drawn from `rng` (including empty rows, hence zero norms).
fn random_split(
    rng: &mut TestRunner,
    n: usize,
    dim: usize,
    n_primitives: usize,
    dense: bool,
) -> Split {
    let labels: Vec<Label> =
        (0..n).map(|_| if rng.next_u64() & 1 == 0 { Label::Pos } else { Label::Neg }).collect();
    let clusters: Vec<u32> = (0..n).map(|_| (rng.next_u64() % 4) as u32).collect();
    let docs: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let len = (rng.next_u64() % 4) as usize;
            (0..len).map(|_| (rng.next_u64() % n_primitives as u64) as u32).collect()
        })
        .collect();
    let corpus = PrimitiveCorpus::new(docs, n_primitives);
    let features = if dense {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        // Mix zeros in so the CSR mirror has gaps.
                        if rng.next_u64() % 3 == 0 {
                            0.0
                        } else {
                            (rng.next_f64() * 2.0 - 1.0) as f32
                        }
                    })
                    .collect()
            })
            .collect();
        let mut m = DenseMatrix::zeros(n, dim);
        for (r, row) in rows.iter().enumerate() {
            m.row_mut(r).copy_from_slice(row);
        }
        Features::from_dense(m)
    } else {
        let rows: Vec<SparseVec> = (0..n)
            .map(|_| {
                if dim == 0 {
                    return SparseVec::zeros(0);
                }
                let nnz = (rng.next_u64() % (dim as u64 + 1)) as usize;
                let pairs: Vec<(u32, f32)> = (0..nnz)
                    .map(|_| {
                        ((rng.next_u64() % dim as u64) as u32, (rng.next_f64() * 4.0 - 2.0) as f32)
                    })
                    .collect();
                SparseVec::from_pairs(pairs, dim)
            })
            .collect();
        Features::from_csr(CsrMatrix::from_rows(&rows, dim))
    };
    Split { labels, features, corpus, clusters }
}

fn random_dataset(seed: u64, dense: bool) -> Dataset {
    let mut rng = TestRunner::new(seed);
    let n_primitives = 1 + (rng.next_u64() % 6) as usize;
    let dim = (rng.next_u64() % 5) as usize;
    let n_train = (rng.next_u64() % 7) as usize;
    let n_valid = (rng.next_u64() % 4) as usize;
    let n_test = (rng.next_u64() % 4) as usize;
    let lexicon: Vec<u32> = (0..n_primitives as u32).filter(|_| rng.next_u64() & 1 == 0).collect();
    let ds = Dataset {
        name: format!("random-{seed}"),
        metric: if rng.next_u64() & 1 == 0 { Metric::Accuracy } else { Metric::F1 },
        train: random_split(&mut rng, n_train, dim, n_primitives, dense),
        valid: random_split(&mut rng, n_valid, dim, n_primitives, dense),
        test: random_split(&mut rng, n_test, dim, n_primitives, dense),
        n_primitives,
        primitive_names: (0..n_primitives).map(|z| format!("z{z}")).collect(),
        lexicon,
        class_prior_pos: rng.next_f64(),
    };
    ds.validate();
    ds
}

#[test]
fn toy_text_artifact_roundtrips_with_text_state() {
    let dataset = toy_text(42);
    let vocab = Vocab::from_tokens(vec!["good".into(), "bad".into(), "meh".into()]).unwrap();
    let tfidf = TfIdf::default().fit(&[vec![0, 1], vec![1, 2], vec![0]], 3);
    artifact_roundtrips(&ArtifactBundle { dataset, vocab: Some(vocab), tfidf: Some(tfidf) });
}

#[test]
fn artifact_file_roundtrips_on_disk() {
    let dir = std::env::temp_dir().join(format!("nemo-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.artifact");
    let bundle = ArtifactBundle { dataset: toy_text(7), vocab: None, tfidf: None };
    save_artifact(&path, &bundle).unwrap();
    let loaded = load_artifact(&path).unwrap();
    assert_eq!(artifact_to_bytes(&loaded), artifact_to_bytes(&bundle));
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_sparse_artifacts_roundtrip(seed in 0u64..1_000_000) {
        let ds = random_dataset(seed, false);
        artifact_roundtrips(&ArtifactBundle { dataset: ds, vocab: None, tfidf: None });
    }

    #[test]
    fn random_dense_artifacts_roundtrip(seed in 0u64..1_000_000) {
        let ds = random_dataset(seed, true);
        artifact_roundtrips(&ArtifactBundle { dataset: ds, vocab: None, tfidf: None });
    }
}

/// Empty splits (0 examples), zero-width features (n×0), and all-zero rows
/// (zero norms) all survive the round trip.
#[test]
fn degenerate_shapes_roundtrip() {
    let empty_split = |dim: usize| Split {
        labels: vec![],
        features: Features::from_csr(CsrMatrix::from_rows(&[], dim)),
        corpus: PrimitiveCorpus::new(vec![], 1),
        clusters: vec![],
    };
    let zero_norm_split = |n: usize, dim: usize| Split {
        labels: vec![Label::Pos; n],
        features: {
            let rows: Vec<SparseVec> = (0..n).map(|_| SparseVec::zeros(dim)).collect();
            Features::from_csr(CsrMatrix::from_rows(&rows, dim))
        },
        corpus: PrimitiveCorpus::new(vec![vec![]; n], 1),
        clusters: vec![0; n],
    };
    for (train, valid, test) in [
        (empty_split(0), empty_split(0), empty_split(0)), // 0×0 everywhere
        (zero_norm_split(3, 0), empty_split(0), zero_norm_split(1, 0)), // n×0
        (zero_norm_split(2, 4), zero_norm_split(1, 4), zero_norm_split(2, 4)), // zero norms
    ] {
        let ds = Dataset {
            name: "degenerate".into(),
            metric: Metric::Accuracy,
            train,
            valid,
            test,
            n_primitives: 1,
            primitive_names: vec!["z0".into()],
            lexicon: vec![],
            class_prior_pos: 0.5,
        };
        ds.validate();
        artifact_roundtrips(&ArtifactBundle { dataset: ds, vocab: None, tfidf: None });
    }
}

fn random_checkpoint(seed: u64) -> nemo_core::SessionCheckpoint {
    let mut rng = TestRunner::new(seed);
    let n_train = 2 + (rng.next_u64() % 8) as usize;
    let n_lfs = (rng.next_u64() % 5) as usize;
    // Include floats whose bit patterns are easy to lose (−0.0, ±∞, NaN):
    // the codec persists raw bits, so all of them must survive.
    let weird = [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, f64::MIN_POSITIVE];
    let mut f = move || weird[(rng.next_u64() % weird.len() as u64) as usize];
    let mut rng = TestRunner::new(seed ^ 0xABCD);
    nemo_core::SessionCheckpoint {
        config: nemo_core::IdpConfig {
            n_iterations: (rng.next_u64() % 50) as usize,
            eval_every: 1 + (rng.next_u64() % 10) as usize,
            label_model: match rng.next_u64() % 3 {
                0 => nemo_core::LabelModelKind::Metal,
                1 => nemo_core::LabelModelKind::Generative,
                _ => nemo_core::LabelModelKind::Majority,
            },
            end_model: nemo_endmodel::LogRegConfig {
                lr: rng.next_f64(),
                epochs: (rng.next_u64() % 30) as usize,
                l2: rng.next_f64() * 1e-3,
                fit_intercept: rng.next_u64() & 1 == 0,
            },
            lfs_per_iteration: 1 + (rng.next_u64() % 3) as usize,
            seed: rng.next_u64(),
            checkpoint_every: if rng.next_u64() & 1 == 0 {
                Some(1 + (rng.next_u64() % 5) as usize)
            } else {
                None
            },
            selection: if rng.next_u64() & 1 == 0 {
                nemo_core::SelectionStrategy::Seu
            } else {
                nemo_core::SelectionStrategy::Iws
            },
        },
        iteration: (rng.next_u64() % 40) as usize,
        pending: if rng.next_u64() & 1 == 0 {
            Some((rng.next_u64() % n_train as u64) as usize)
        } else {
            None
        },
        lineage: (0..n_lfs)
            .map(|k| TrackedLf {
                lf: PrimitiveLf::new(
                    (rng.next_u64() % 6) as u32,
                    if rng.next_u64() & 1 == 0 { Label::Pos } else { Label::Neg },
                ),
                dev_example: (rng.next_u64() % n_train as u64) as u32,
                iteration: k as u32,
            })
            .collect(),
        columns: (0..n_lfs)
            .map(|_| {
                let n_entries = (rng.next_u64() % n_train as u64) as usize;
                (0..n_entries)
                    .map(|i| (i as u32, if rng.next_u64() & 1 == 0 { 1i8 } else { -1i8 }))
                    .collect()
            })
            .collect(),
        excluded: (0..n_train).map(|_| rng.next_u64() & 1 == 0).collect(),
        train_p_pos: (0..n_train).map(|_| f()).collect(),
        train_probs: (0..n_train).map(|_| f()).collect(),
        valid_pred: (0..3).map(|_| if rng.next_u64() & 1 == 0 { 1 } else { -1 }).collect(),
        test_pred: (0..3).map(|_| if rng.next_u64() & 1 == 0 { 1 } else { -1 }).collect(),
        chosen_p: if rng.next_u64() & 1 == 0 { Some(f()) } else { None },
        rng_state: [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()],
        rng_gauss_spare: if rng.next_u64() & 1 == 0 { Some(f()) } else { None },
        warm_seeds: (0..(rng.next_u64() % 4) as usize)
            .map(|_| (0..4).map(|_| f()).collect())
            .collect(),
        engine: if rng.next_u64() & 1 == 0 {
            nemo_core::EngineState::Seu
        } else {
            nemo_core::EngineState::IwsV1 {
                answers: (0..(rng.next_u64() % 6) as usize)
                    .map(|_| ((rng.next_u64() % 100) as u32, rng.next_u64() & 1 == 0))
                    .collect(),
            }
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_checkpoints_roundtrip(seed in 0u64..1_000_000) {
        session_roundtrips(&random_checkpoint(seed));
    }
}

#[test]
fn empty_checkpoint_roundtrips() {
    // A brand-new session: no lineage, no columns, nothing pending.
    let ckpt = nemo_core::SessionCheckpoint {
        config: nemo_core::IdpConfig::default(),
        iteration: 0,
        pending: None,
        lineage: vec![],
        columns: vec![],
        excluded: vec![],
        train_p_pos: vec![],
        train_probs: vec![],
        valid_pred: vec![],
        test_pred: vec![],
        chosen_p: None,
        rng_state: [1, 2, 3, 4],
        rng_gauss_spare: None,
        warm_seeds: vec![],
        engine: nemo_core::EngineState::Seu,
    };
    session_roundtrips(&ckpt);
}

#[test]
fn session_file_roundtrips_on_disk() {
    let dir = std::env::temp_dir().join(format!("nemo-rt-s-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.ckpt");
    let ckpt = random_checkpoint(99);
    save_session(&path, &ckpt).unwrap();
    let loaded = load_session(&path).unwrap();
    assert_eq!(session_to_bytes(&loaded), session_to_bytes(&ckpt));
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Fault injection: every way a persisted file can be damaged must
//! surface as a typed [`PersistError`] — never a panic, never a
//! successfully-loaded corrupted value.
//!
//! Three attack surfaces are exercised:
//!
//! 1. **Random damage** — single-byte corruption at *every* offset (three
//!    flip patterns per byte) and truncation at *every* length, applied to
//!    valid artifact and session files. CRC-32 detects all single-byte
//!    errors, so every such load must fail.
//! 2. **Header lies** — wrong magic, unsupported version, byte-swapped
//!    endianness canary, wrong file kind, and a section count that
//!    disagrees with the body, each with a *recomputed* header CRC so only
//!    the lie itself can be detected.
//! 3. **Payload lies** — structurally valid framing (correct CRCs) whose
//!    payload content lies: length prefixes larger than the payload,
//!    truncated field sequences, trailing bytes, and out-of-range tags.

use std::panic::{catch_unwind, AssertUnwindSafe};

use nemo_data::{Dataset, Features, Split};
use nemo_lf::{Label, Metric, PrimitiveCorpus, PrimitiveLf, TrackedLf};
use nemo_persist::format::{crc32, Enc, FileBuilder, KIND_ARTIFACT, KIND_SESSION};
use nemo_persist::{
    artifact_from_bytes, artifact_to_bytes, session_from_bytes, session_to_bytes, ArtifactBundle,
    PersistError,
};
use nemo_sparse::{CsrMatrix, SparseVec};
use nemo_text::{TfIdf, Vocab};

/// A deliberately small but feature-complete artifact (sparse features,
/// non-trivial corpus, lexicon, vocab + TF-IDF): every section and every
/// field kind is present, and the file stays a few hundred bytes so the
/// corruption loops visit every offset quickly.
fn tiny_artifact_bytes() -> Vec<u8> {
    let split = |labels: Vec<Label>, docs: Vec<Vec<u32>>| {
        let n = labels.len();
        let rows: Vec<SparseVec> = (0..n)
            .map(|i| SparseVec::from_pairs(vec![(i as u32 % 3, 1.0 + i as f32)], 3))
            .collect();
        Split {
            labels,
            features: Features::from_csr(CsrMatrix::from_rows(&rows, 3)),
            corpus: PrimitiveCorpus::new(docs, 3),
            clusters: vec![0; n],
        }
    };
    let dataset = Dataset {
        name: "tiny".into(),
        metric: Metric::F1,
        train: split(vec![Label::Pos, Label::Neg, Label::Pos], vec![vec![0, 1], vec![2], vec![1]]),
        valid: split(vec![Label::Neg], vec![vec![0]]),
        test: split(vec![Label::Pos], vec![vec![2]]),
        n_primitives: 3,
        primitive_names: vec!["a".into(), "b".into(), "c".into()],
        lexicon: vec![0, 2],
        class_prior_pos: 0.5,
    };
    dataset.validate();
    let vocab = Vocab::from_tokens(vec!["a".into(), "b".into(), "c".into()]).unwrap();
    let tfidf = TfIdf::default().fit(&[vec![0, 1], vec![2]], 3);
    artifact_to_bytes(&ArtifactBundle { dataset, vocab: Some(vocab), tfidf: Some(tfidf) })
}

/// A small checkpoint exercising every session section, including the
/// optional fields in both states.
fn tiny_session_bytes() -> Vec<u8> {
    let ckpt = nemo_core::SessionCheckpoint {
        config: nemo_core::IdpConfig { n_iterations: 4, seed: 9, ..Default::default() },
        iteration: 2,
        pending: Some(1),
        lineage: vec![
            TrackedLf { lf: PrimitiveLf::new(0, Label::Pos), dev_example: 0, iteration: 0 },
            TrackedLf { lf: PrimitiveLf::new(2, Label::Neg), dev_example: 2, iteration: 1 },
        ],
        columns: vec![vec![(0, 1), (2, 1)], vec![(1, -1)]],
        excluded: vec![true, true, false],
        train_p_pos: vec![0.75, 0.25, 0.5],
        train_probs: vec![0.9, 0.1, 0.5],
        valid_pred: vec![1],
        test_pred: vec![-1],
        chosen_p: Some(50.0),
        rng_state: [1, 2, 3, 4],
        rng_gauss_spare: None,
        warm_seeds: vec![vec![0.25, 0.5]],
        engine: nemo_core::EngineState::IwsV1 { answers: vec![(3, true), (7, false)] },
    };
    session_to_bytes(&ckpt)
}

/// Run a loader over damaged bytes; the only acceptable outcome is a
/// returned `Err`.
fn assert_typed_failure<T: std::fmt::Debug>(
    what: &str,
    load: impl Fn() -> Result<T, PersistError>,
) {
    match catch_unwind(AssertUnwindSafe(load)) {
        Ok(Err(_)) => {}
        Ok(Ok(_)) => panic!("{what}: corrupted file loaded successfully"),
        Err(_) => panic!("{what}: loader panicked"),
    }
}

fn corrupt_every_byte<T: std::fmt::Debug>(
    good: &[u8],
    load: impl Fn(&[u8]) -> Result<T, PersistError>,
) {
    for i in 0..good.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut bad = good.to_vec();
            bad[i] ^= flip;
            assert_typed_failure(&format!("byte {i} ^ {flip:#04x}"), || load(&bad));
        }
    }
}

fn truncate_every_length<T: std::fmt::Debug>(
    good: &[u8],
    load: impl Fn(&[u8]) -> Result<T, PersistError>,
) {
    for len in 0..good.len() {
        assert_typed_failure(&format!("truncated to {len} bytes"), || load(&good[..len]));
    }
}

#[test]
fn artifact_single_byte_corruption_at_every_offset_fails_typed() {
    let good = tiny_artifact_bytes();
    assert!(artifact_from_bytes(&good).is_ok(), "baseline must load");
    corrupt_every_byte(&good, artifact_from_bytes);
}

#[test]
fn artifact_truncation_at_every_length_fails_typed() {
    let good = tiny_artifact_bytes();
    truncate_every_length(&good, artifact_from_bytes);
}

#[test]
fn session_single_byte_corruption_at_every_offset_fails_typed() {
    let good = tiny_session_bytes();
    assert!(session_from_bytes(&good).is_ok(), "baseline must load");
    corrupt_every_byte(&good, session_from_bytes);
}

#[test]
fn session_truncation_at_every_length_fails_typed() {
    let good = tiny_session_bytes();
    truncate_every_length(&good, session_from_bytes);
}

/// Patch a header word and recompute the header CRC, so only the patched
/// lie itself can trip the loader.
fn patch_header_word(bytes: &[u8], at: usize, value: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[at..at + 4].copy_from_slice(&value.to_le_bytes());
    let crc = crc32(&out[..24]);
    out[24..28].copy_from_slice(&crc.to_le_bytes());
    out
}

#[test]
fn header_lies_with_valid_crc_fail_typed() {
    let good = tiny_session_bytes();

    let v9 = patch_header_word(&good, 8, 9);
    assert!(matches!(session_from_bytes(&v9), Err(PersistError::UnsupportedVersion(9))));

    let swapped = patch_header_word(&good, 12, 0x0403_0201);
    assert!(matches!(session_from_bytes(&swapped), Err(PersistError::EndiannessMismatch)));

    let wrong_kind = patch_header_word(&good, 16, KIND_ARTIFACT);
    assert!(matches!(
        session_from_bytes(&wrong_kind),
        Err(PersistError::WrongKind { expected: KIND_SESSION, found: KIND_ARTIFACT })
    ));

    // Cross-loading the two kinds also fails as WrongKind.
    assert!(matches!(
        artifact_from_bytes(&good),
        Err(PersistError::WrongKind { expected: KIND_ARTIFACT, found: KIND_SESSION })
    ));
    assert!(matches!(
        session_from_bytes(&tiny_artifact_bytes()),
        Err(PersistError::WrongKind { expected: KIND_SESSION, found: KIND_ARTIFACT })
    ));

    let mut bad_magic = good.clone();
    bad_magic[..8].copy_from_slice(b"NOTNEMO!");
    assert!(matches!(session_from_bytes(&bad_magic), Err(PersistError::BadMagic)));
}

#[test]
fn section_count_lies_with_valid_crc_fail_typed() {
    let good = tiny_session_bytes();
    let declared = u32::from_le_bytes(good[20..24].try_into().unwrap());

    // Declares one more section than the body holds: the reader consumes
    // all real sections, then finish() sees one still owed.
    let over = patch_header_word(&good, 20, declared + 1);
    assert!(matches!(session_from_bytes(&over), Err(PersistError::SectionCount { .. })));

    // Declares one fewer: the reader runs out of budget before the last
    // section it needs.
    let under = patch_header_word(&good, 20, declared - 1);
    assert!(matches!(session_from_bytes(&under), Err(PersistError::SectionCount { .. })));

    // Declares zero sections over an intact body.
    let zero = patch_header_word(&good, 20, 0);
    assert!(matches!(session_from_bytes(&zero), Err(PersistError::SectionCount { .. })));
}

/// Craft a structurally valid artifact file (consistent CRCs, correct
/// section order) whose META payload's length prefixes lie about the
/// bytes that follow.
#[test]
fn lying_length_prefixes_with_valid_crc_fail_typed() {
    // META declares u64::MAX primitive names: the element-count bound
    // (count × min-size vs remaining bytes) must trip before allocation.
    let mut meta = Enc::new();
    meta.str("craft");
    meta.u8(0); // Accuracy
    meta.u64(u64::MAX); // n_primitives
    meta.f64(0.5);
    meta.u64(u64::MAX); // primitive-name count "matching" the domain size
    let mut b = FileBuilder::new(KIND_ARTIFACT);
    b.section(1, meta.into_bytes());
    let bytes = b.into_bytes();
    assert_typed_failure("u64::MAX name count", || artifact_from_bytes(&bytes));

    // A string whose length prefix overruns its payload.
    let mut meta = Enc::new();
    meta.u64(1 << 40); // name length, no bytes behind it
    let mut b = FileBuilder::new(KIND_ARTIFACT);
    b.section(1, meta.into_bytes());
    let bytes = b.into_bytes();
    assert!(matches!(artifact_from_bytes(&bytes), Err(PersistError::LengthOverflow)));
}

#[test]
fn short_and_padded_payloads_with_valid_crc_fail_typed() {
    // CONFIG payload ends mid-field: Truncated from inside the section.
    let mut cfg = Enc::new();
    cfg.usize(10); // n_iterations, then nothing else
    let mut b = FileBuilder::new(KIND_SESSION);
    b.section(1, cfg.into_bytes());
    let bytes = b.into_bytes();
    assert!(matches!(session_from_bytes(&bytes), Err(PersistError::Truncated)));

    // A fully valid file with extra bytes appended after the last section
    // (outside every CRC's coverage): TrailingBytes.
    let mut padded = tiny_session_bytes();
    padded.extend_from_slice(&[0xAA; 3]);
    assert!(matches!(session_from_bytes(&padded), Err(PersistError::TrailingBytes)));

    // A section payload with valid fields followed by padding inside the
    // checksummed region: the per-section finish() rejects it.
    let good = tiny_session_bytes();
    let ckpt = session_from_bytes(&good).unwrap();
    let mut cfg = Enc::new();
    cfg.usize(ckpt.config.n_iterations);
    cfg.usize(ckpt.config.eval_every);
    cfg.u8(0);
    cfg.f64(0.5);
    cfg.usize(20);
    cfg.f64(2e-5);
    cfg.u8(1);
    cfg.usize(1);
    cfg.u64(0);
    cfg.u8(0); // checkpoint_every: None
    cfg.u8(0); // selection: Seu
    cfg.u8(0xEE); // padding byte inside the payload
    let mut b = FileBuilder::new(KIND_SESSION);
    b.section(1, cfg.into_bytes());
    let bytes = b.into_bytes();
    assert!(matches!(session_from_bytes(&bytes), Err(PersistError::TrailingBytes)));
}

/// A minimal valid CONFIG payload (defaults), for crafting session files
/// whose *later* sections carry the lie under test.
fn valid_config_payload() -> Vec<u8> {
    let mut cfg = Enc::new();
    cfg.usize(1); // n_iterations
    cfg.usize(1); // eval_every
    cfg.u8(0); // Metal
    cfg.f64(0.5); // lr
    cfg.usize(20); // epochs
    cfg.f64(2e-5); // l2
    cfg.u8(1); // fit_intercept
    cfg.usize(1); // lfs_per_iteration
    cfg.u64(0); // seed
    cfg.u8(0); // checkpoint_every: None
    cfg.u8(0); // selection: Seu
    cfg.into_bytes()
}

#[test]
fn out_of_range_values_with_valid_crc_fail_typed() {
    // Metric tag 7 in an otherwise-valid META section.
    let mut meta = Enc::new();
    meta.str("craft");
    meta.u8(7);
    let mut b = FileBuilder::new(KIND_ARTIFACT);
    b.section(1, meta.into_bytes());
    let bytes = b.into_bytes();
    assert!(matches!(artifact_from_bytes(&bytes), Err(PersistError::InvalidValue(_))));

    // An exclusion flag that is neither 0 nor 1.
    let mut state = Enc::new();
    state.usize(0); // iteration
    state.u8(0); // pending: None
    state.usize(2); // excluded: 2 flags…
    state.u8(1);
    state.u8(9); // …the second of which is not a boolean
    let mut b = FileBuilder::new(KIND_SESSION);
    b.section(1, valid_config_payload());
    b.section(2, state.into_bytes());
    let bytes = b.into_bytes();
    assert!(matches!(session_from_bytes(&bytes), Err(PersistError::InvalidValue(_))));

    // An LF label sign of 0 (abstain is not a valid lineage label).
    let mut state = Enc::new();
    state.usize(0);
    state.u8(0);
    state.usize(0); // excluded: empty
    for w in [1u64, 2, 3, 4] {
        state.u64(w); // rng_state
    }
    state.u8(0); // gauss spare: None
    state.u8(0); // chosen_p: None
    let mut lineage = Enc::new();
    lineage.usize(1);
    lineage.u32(0); // z
    lineage.i8(0); // sign 0 — invalid
    lineage.u32(0); // dev_example
    lineage.u32(0); // iteration
    let mut b = FileBuilder::new(KIND_SESSION);
    b.section(1, valid_config_payload());
    b.section(2, state.into_bytes());
    b.section(3, lineage.into_bytes());
    let bytes = b.into_bytes();
    assert!(matches!(
        session_from_bytes(&bytes),
        Err(PersistError::InvalidValue("LF label sign must be ±1"))
    ));
}

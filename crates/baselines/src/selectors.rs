//! The heuristic selection-only baselines of Cohen-Wang et al. \[9\]
//! (paper Sec. 5.2/5.3: "Snorkel-Abs" and "Snorkel-Dis").

use nemo_core::idp::{SelectionView, Selector};
use nemo_sparse::stats::argmax_set;
use nemo_sparse::DetRng;

/// Select the example on which the current LFs abstain the most — i.e.
/// with the fewest non-abstain votes. Early on almost every example is
/// fully abstained, so ties (broken uniformly at random) dominate and the
/// strategy degrades gracefully to random sampling, as in \[9\].
#[derive(Debug, Clone, Default)]
pub struct AbstainSelector;

impl Selector for AbstainSelector {
    fn name(&self) -> &'static str {
        "Abstain"
    }

    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize> {
        let avail = view.available();
        if avail.is_empty() {
            return None;
        }
        let summaries = view.matrix.vote_summaries();
        // Most abstains == fewest votes; negate for argmax.
        let scores: Vec<f64> = avail.iter().map(|&i| -(summaries[i].total() as f64)).collect();
        let ties = argmax_set(&scores);
        Some(avail[ties[rng.index(ties.len())]])
    }
}

/// Select the example on which the current LFs disagree the most,
/// measured by the number of conflicting vote pairs `pos · neg`.
#[derive(Debug, Clone, Default)]
pub struct DisagreeSelector;

impl Selector for DisagreeSelector {
    fn name(&self) -> &'static str {
        "Disagree"
    }

    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize> {
        let avail = view.available();
        if avail.is_empty() {
            return None;
        }
        let summaries = view.matrix.vote_summaries();
        let scores: Vec<f64> = avail.iter().map(|&i| summaries[i].conflicts() as f64).collect();
        let ties = argmax_set(&scores);
        Some(avail[ties[rng.index(ties.len())]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_core::idp::ModelOutputs;
    use nemo_data::catalog::toy_text;
    use nemo_lf::{Label, LabelMatrix, LfColumn, Lineage, PrimitiveLf};

    fn view_with_matrix<'a>(
        ds: &'a nemo_data::Dataset,
        matrix: &'a LabelMatrix,
        lineage: &'a Lineage,
        outputs: &'a ModelOutputs,
        excluded: &'a [bool],
    ) -> SelectionView<'a> {
        SelectionView { ds, lineage, matrix, outputs, excluded, iteration: 1, aggs: None }
    }

    #[test]
    fn abstain_prefers_uncovered() {
        let ds = toy_text(1);
        // Cover every example except #5 with a synthetic column.
        let mut matrix = LabelMatrix::new(ds.train.n());
        let entries: Vec<(u32, i8)> =
            (0..ds.train.n() as u32).filter(|&i| i != 5).map(|i| (i, 1)).collect();
        matrix.push(LfColumn::new(entries));
        let lineage = Lineage::new();
        let outputs = ModelOutputs::initial(&ds);
        let excluded = vec![false; ds.train.n()];
        let view = view_with_matrix(&ds, &matrix, &lineage, &outputs, &excluded);
        let mut rng = DetRng::new(1);
        assert_eq!(AbstainSelector.select(&view, &mut rng), Some(5));
    }

    #[test]
    fn disagree_prefers_conflicts() {
        let ds = toy_text(1);
        let mut matrix = LabelMatrix::new(ds.train.n());
        // Example 3 gets conflicting votes; example 4 agreeing votes.
        matrix.push(LfColumn::new(vec![(3, 1), (4, 1)]));
        matrix.push(LfColumn::new(vec![(3, -1), (4, 1)]));
        let lineage = Lineage::new();
        let outputs = ModelOutputs::initial(&ds);
        let excluded = vec![false; ds.train.n()];
        let view = view_with_matrix(&ds, &matrix, &lineage, &outputs, &excluded);
        let mut rng = DetRng::new(2);
        assert_eq!(DisagreeSelector.select(&view, &mut rng), Some(3));
    }

    #[test]
    fn both_respect_exclusions_and_exhaustion() {
        let ds = toy_text(1);
        let matrix = LabelMatrix::from_lfs(&[PrimitiveLf::new(0, Label::Pos)], &ds.train.corpus);
        let lineage = Lineage::new();
        let outputs = ModelOutputs::initial(&ds);
        let excluded = vec![true; ds.train.n()];
        let view = view_with_matrix(&ds, &matrix, &lineage, &outputs, &excluded);
        let mut rng = DetRng::new(3);
        assert_eq!(AbstainSelector.select(&view, &mut rng), None);
        assert_eq!(DisagreeSelector.select(&view, &mut rng), None);
    }

    #[test]
    fn ties_broken_randomly_not_first_index() {
        let ds = toy_text(1);
        let matrix = LabelMatrix::new(ds.train.n());
        let lineage = Lineage::new();
        let outputs = ModelOutputs::initial(&ds);
        let excluded = vec![false; ds.train.n()];
        let view = view_with_matrix(&ds, &matrix, &lineage, &outputs, &excluded);
        let mut rng = DetRng::new(4);
        let picks: std::collections::HashSet<usize> =
            (0..20).filter_map(|_| AbstainSelector.select(&view, &mut rng)).collect();
        assert!(picks.len() > 1, "all-tied selection must randomize");
    }
}

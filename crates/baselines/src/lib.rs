//! # nemo-baselines
//!
//! Every method the paper compares Nemo against (Sec. 5.2):
//!
//! | Paper name | Here | Kind |
//! |---|---|---|
//! | Snorkel \[28\] | [`methods::Method::Snorkel`] | vanilla IDP: random selection + standard learning |
//! | Snorkel-Abs \[9\] | [`selectors::AbstainSelector`] | selection-only IDP |
//! | Snorkel-Dis \[9\] | [`selectors::DisagreeSelector`] | selection-only IDP |
//! | ImplyLoss-L \[3\] | [`implyloss::ImplyLossPipeline`] | contextualized-learning-only IDP |
//! | US \[20\] | [`active::UncertaintyAcquisition`] | classic active learning |
//! | BALD \[12, 17\] | [`active::BaldAcquisition`] | Bayesian active learning |
//! | IWS-LSE \[6\] | [`iws::IwsLse`] | interactive weak supervision |
//! | Active WeaSuL \[5\] | [`weasul::ActiveWeasul`] | AL-assisted label-model denoising |
//!
//! [`methods::Method`] is the unified entry point the benchmark harness
//! uses: every method (including Nemo itself and its ablation variants)
//! runs under the same evaluation protocol and returns a
//! [`nemo_core::LearningCurve`].

#![warn(missing_docs)]

pub mod active;
pub mod implyloss;
pub mod iws;
pub mod methods;
pub mod selectors;
pub mod weasul;

pub use active::{ActiveLearning, BaldAcquisition, UncertaintyAcquisition};
pub use implyloss::ImplyLossPipeline;
pub use iws::IwsLse;
pub use methods::{run_method, Method, RunSpec};
pub use selectors::{AbstainSelector, DisagreeSelector};
pub use weasul::ActiveWeasul;

//! IWS-LSE: Interactive Weak Supervision, Boecking et al. \[6\].
//!
//! A different interactive contract from IDP: instead of showing *data*
//! and receiving LFs, the system proposes a *candidate LF* each iteration
//! and the user answers whether it is useful (better than random). A
//! probabilistic usefulness model over LF feature vectors generalizes the
//! feedback to the whole candidate family; the LSE ("largest set
//! expected") strategy queries so as to maximize the expected number of
//! useful LFs in the final set, which is then fed to the ordinary label
//! model → end model pipeline.
//!
//! Implementation notes (DESIGN.md §2, substitution 7): candidate LFs are
//! all `(primitive, label)` pairs above a coverage floor; LF features are
//! a seeded random projection of the normalized coverage signature plus
//! coverage and polarity scalars; the usefulness model is the workspace's
//! logistic regression; acquisition is greedy expected-usefulness with
//! random tie-breaking, and the final set keeps LFs whose predicted
//! usefulness exceeds 0.5 (queried LFs keep their oracle answer).

use nemo_core::config::IdpConfig;
use nemo_core::idp::LearningCurve;
use nemo_data::Dataset;
use nemo_endmodel::LogisticRegression;
use nemo_lf::{label_from_prob, Label, LabelMatrix, LfColumn, PrimitiveLf};
use nemo_sparse::stats::argmax_set;
use nemo_sparse::{CsrMatrix, DetRng, SparseVec};

/// Configuration for [`IwsLse`].
#[derive(Debug, Clone)]
pub struct IwsConfig {
    /// Minimum document frequency for a primitive to yield candidate LFs.
    pub min_df: usize,
    /// Dimensionality of the coverage-signature random projection.
    pub projection_dim: usize,
    /// Usefulness threshold for including *unqueried* LFs in the final
    /// set. Deliberately conservative: with few feedback points the
    /// usefulness model is weakly informed, and admitting every LF above
    /// 0.5 floods the label model with junk. Queried LFs always keep
    /// their oracle answer.
    pub include_threshold: f64,
    /// Exploration rate of the ε-greedy acquisition. Pure greedy
    /// exploitation of a usefulness model trained on a handful of (mostly
    /// negative) answers can lock onto a junk region and never confirm a
    /// single useful LF; IWS's own acquisition strategies are stochastic
    /// for the same reason.
    pub epsilon: f64,
    /// Margin the usefulness oracle adds on top of the user threshold: a
    /// candidate is judged useful iff `acc ≥ t + margin`. A human asked
    /// "is this heuristic better than random?" does not bless a keyword
    /// that is right 50.5% of the time; without the margin the confirmed
    /// set fills with statistically-random LFs (DESIGN.md §2, subst. 7).
    pub usefulness_margin: f64,
}

impl Default for IwsConfig {
    fn default() -> Self {
        Self {
            min_df: 5,
            projection_dim: 24,
            include_threshold: 0.75,
            epsilon: 0.3,
            usefulness_margin: 0.1,
        }
    }
}

/// The IWS-LSE baseline runner.
#[derive(Debug, Clone, Default)]
pub struct IwsLse {
    /// Configuration.
    pub config: IwsConfig,
}

/// Deterministic ±1 hash for the random projection.
fn sign_hash(example: u32, dim: usize, salt: u64) -> impl Iterator<Item = (usize, f32)> {
    let mut z = (example as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..dim).map(move |k| {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        let sign = if z & 1 == 0 { 1.0 } else { -1.0 };
        (k, sign)
    })
}

impl IwsLse {
    /// Enumerate candidate LFs and their feature vectors.
    pub fn candidates(&self, ds: &Dataset) -> (Vec<PrimitiveLf>, CsrMatrix) {
        let index = ds.train.corpus.index();
        let n = ds.train.n() as f64;
        let dim = self.config.projection_dim + 1;
        let mut lfs = Vec::new();
        let mut rows = Vec::new();
        for (z, postings) in index.iter_nonempty() {
            if postings.len() < self.config.min_df {
                continue;
            }
            // Shared coverage projection for both polarities of z.
            let mut proj = vec![0.0f32; self.config.projection_dim];
            let norm = (postings.len() as f32).sqrt();
            for &i in postings {
                for (k, s) in sign_hash(i, self.config.projection_dim, 0x1f5) {
                    proj[k] += s / norm;
                }
            }
            for y in Label::ALL {
                lfs.push(PrimitiveLf::new(z, y));
                // Signed output-signature projection: the two polarities of
                // a primitive get mirrored features (as in IWS, where LF
                // features derive from the LF's vote vector). A naked
                // polarity scalar would give the usefulness model a
                // class-level shortcut that locks acquisition onto one
                // polarity.
                let sign = y.sign() as f32;
                let mut pairs: Vec<(u32, f32)> = proj
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(k, &v)| (k as u32, sign * v))
                    .collect();
                pairs.push((self.config.projection_dim as u32, (postings.len() as f64 / n) as f32));
                rows.push(SparseVec::from_pairs(pairs, dim));
            }
        }
        (lfs, CsrMatrix::from_rows(&rows, dim))
    }

    /// Run the IWS loop under the shared protocol. The oracle answers
    /// "useful" iff the candidate's true accuracy ≥ `user_threshold`
    /// (mirroring the simulated user's expertise threshold).
    #[deprecated(
        note = "IWS is a first-class selection engine now: set `SelectionStrategy::Iws` on \
                `IdpConfig` and drive a `NemoSystem` (or `SessionPool`); for benchmark tables \
                go through `run_method(Method::IwsLse, ..)`"
    )]
    pub fn run(&self, ds: &Dataset, config: &IdpConfig, user_threshold: f64) -> LearningCurve {
        let mut rng = DetRng::new(config.seed ^ 0x115e_11f5);
        let (lfs, features) = self.candidates(ds);
        let n_cand = lfs.len();
        let mut queried = vec![false; n_cand];
        let mut answers = vec![0.5f64; n_cand]; // oracle answers for queried
        let mut curve = LearningCurve::default();
        // Strongly regularized usefulness model: with a handful of
        // feedback points an unregularized fit saturates its predictions.
        let trainer = LogisticRegression::new(nemo_endmodel::LogRegConfig {
            lr: 0.3,
            epochs: 30,
            l2: 1e-2,
            fit_intercept: true,
        });

        let bar = user_threshold + self.config.usefulness_margin;
        let oracle = |lf: &PrimitiveLf| -> bool {
            lf.accuracy_against(&ds.train.corpus, &ds.train.labels).is_some_and(|acc| acc >= bar)
        };

        let mut usefulness: Vec<f64> = vec![0.5; n_cand];
        for t in 0..config.n_iterations {
            if n_cand > 0 {
                // Acquisition: greedy expected usefulness among unqueried.
                let unqueried: Vec<usize> = (0..n_cand).filter(|&j| !queried[j]).collect();
                if !unqueried.is_empty() {
                    let explore = t < 2 || rng.bernoulli(self.config.epsilon);
                    let pick = if explore {
                        unqueried[rng.index(unqueried.len())]
                    } else {
                        let scores: Vec<f64> = unqueried.iter().map(|&j| usefulness[j]).collect();
                        let ties = argmax_set(&scores);
                        unqueried[ties[rng.index(ties.len())]]
                    };
                    queried[pick] = true;
                    answers[pick] = if oracle(&lfs[pick]) { 1.0 } else { 0.0 };

                    // Refit the usefulness model on all feedback so far.
                    let idx: Vec<u32> =
                        (0..n_cand as u32).filter(|&j| queried[j as usize]).collect();
                    let model = trainer.fit(
                        &features,
                        &answers,
                        Some(&idx),
                        config.seed.wrapping_add(t as u64),
                    );
                    usefulness = model.predict_proba(&features);
                    for j in 0..n_cand {
                        if queried[j] {
                            usefulness[j] = answers[j];
                        }
                    }
                }
            }

            if (t + 1) % config.eval_every == 0 {
                curve.push(
                    t + 1,
                    self.evaluate(ds, config, &lfs, &queried, &answers, &usefulness, t as u64),
                );
            }
        }
        curve
    }

    /// Assemble the final LF set and score the downstream pipeline.
    #[allow(clippy::too_many_arguments)]
    fn evaluate(
        &self,
        ds: &Dataset,
        config: &IdpConfig,
        lfs: &[PrimitiveLf],
        queried: &[bool],
        answers: &[f64],
        usefulness: &[f64],
        salt: u64,
    ) -> f64 {
        // Final set: every oracle-confirmed LF, plus at most an equal
        // number of high-confidence unqueried LFs (IWS-LSE evaluates
        // fixed-size final sets; an uncapped threshold lets the weakly
        // trained usefulness model flood the set with junk).
        let confirmed: Vec<usize> =
            (0..lfs.len()).filter(|&j| queried[j] && answers[j] > 0.5).collect();
        let mut extra: Vec<usize> = (0..lfs.len())
            .filter(|&j| !queried[j] && usefulness[j] > self.config.include_threshold)
            .collect();
        extra.sort_by(|&a, &b| {
            // invariant: usefulness scores are logistic outputs in
            // (0, 1), never NaN.
            usefulness[b].partial_cmp(&usefulness[a]).expect("finite usefulness")
        });
        extra.truncate(confirmed.len());
        let mut matrix = LabelMatrix::new(ds.train.n());
        let mut any = false;
        for &j in confirmed.iter().chain(extra.iter()) {
            matrix.push(LfColumn::from_lf(&lfs[j], &ds.train.corpus));
            any = true;
        }
        if std::env::var("NEMO_IWS_DEBUG").is_ok() {
            let accs: Vec<f64> = confirmed
                .iter()
                .chain(extra.iter())
                .map(|&j| {
                    lfs[j].accuracy_against(&ds.train.corpus, &ds.train.labels).unwrap_or(0.0)
                })
                .collect();
            let mean =
                if accs.is_empty() { 0.0 } else { accs.iter().sum::<f64>() / accs.len() as f64 };
            let pos =
                confirmed.iter().chain(extra.iter()).filter(|&&j| lfs[j].y == Label::Pos).count();
            eprintln!(
                "[iws] confirmed={} extra={} pos={} mean_acc={:.3}",
                confirmed.len(),
                extra.len(),
                pos,
                mean
            );
        }
        if !any {
            let prior_pred = vec![label_from_prob(ds.class_prior_pos); ds.test.n()];
            return ds.metric.score(&prior_pred, &ds.test.labels);
        }
        let label_model = config.label_model.build();
        let fitted = label_model.fit(&matrix, nemo_core::pipeline::UNIFORM_BALANCE);
        let posterior = fitted.predict(&matrix);
        let covered: Vec<u32> = matrix
            .vote_summaries()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.total() > 0)
            .map(|(i, _)| i as u32)
            .collect();
        let end = LogisticRegression::new(config.end_model.clone()).fit(
            ds.train.features.csr(),
            posterior.p_pos_slice(),
            Some(&covered),
            config.seed.wrapping_add(salt),
        );
        let valid_probs = end.predict_proba(ds.valid.features.csr());
        let test_probs = end.predict_proba(ds.test.features.csr());
        let (_, pred) = nemo_core::pipeline::hard_predictions(&valid_probs, &test_probs, ds);
        ds.metric.score(&pred, &ds.test.labels)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shim keeps its coverage until it is removed
mod tests {
    use super::*;
    use nemo_data::catalog::toy_text;

    #[test]
    fn candidate_family_has_both_polarities() {
        let ds = toy_text(1);
        let iws = IwsLse::default();
        let (lfs, feats) = iws.candidates(&ds);
        assert_eq!(lfs.len(), feats.n_rows());
        assert!(lfs.len() > 10);
        let pos = lfs.iter().filter(|lf| lf.y == Label::Pos).count();
        assert_eq!(pos * 2, lfs.len());
    }

    #[test]
    fn coverage_floor_respected() {
        let ds = toy_text(1);
        let iws = IwsLse { config: IwsConfig { min_df: 20, ..Default::default() } };
        let (lfs, _) = iws.candidates(&ds);
        for lf in &lfs {
            assert!(lf.coverage(&ds.train.corpus).len() >= 20);
        }
    }

    #[test]
    fn runs_under_default_protocol() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 20, eval_every: 10, seed: 1, ..Default::default() };
        let curve = IwsLse::default().run(&ds, &config, 0.5);
        assert_eq!(curve.points().len(), 2);
        // At t = 0.5 the oracle confirms many barely-better-than-random
        // LFs, so IWS stays weak (the paper reports the same: IWS-LSE
        // trails every IDP method); we only require sane output here.
        assert!(curve.final_score() > 0.3, "final {}", curve.final_score());
    }

    #[test]
    fn confirmed_lfs_meet_the_oracle_bar() {
        // Functional invariant of the machinery: whatever ends up
        // oracle-confirmed truly satisfies acc ≥ t + margin.
        let ds = toy_text(1);
        let iws = IwsLse::default();
        let config = IdpConfig { n_iterations: 30, eval_every: 30, seed: 2, ..Default::default() };
        let _ = iws.run(&ds, &config, 0.6);
        // Re-derive the oracle bar and verify against candidate accuracies
        // (the run is deterministic, so any confirmed LF passed this bar).
        let bar = 0.6 + iws.config.usefulness_margin;
        let (lfs, _) = iws.candidates(&ds);
        let passing = lfs
            .iter()
            .filter(|lf| {
                lf.accuracy_against(&ds.train.corpus, &ds.train.labels).is_some_and(|a| a >= bar)
            })
            .count();
        assert!(passing > 0, "toy family must contain confirmable LFs");
    }

    #[test]
    fn deterministic() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 10, eval_every: 5, seed: 9, ..Default::default() };
        let c1 = IwsLse::default().run(&ds, &config, 0.5);
        let c2 = IwsLse::default().run(&ds, &config, 0.5);
        assert_eq!(c1.points(), c2.points());
    }
}

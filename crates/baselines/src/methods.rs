//! Unified method registry: every method in the paper's evaluation —
//! Nemo, the IDP baselines, the other interactive schemes, and the
//! ablation variants from Tables 4–9 — behind one `run` entry point, so
//! the benchmark harness treats them uniformly.

use crate::active::{ActiveLearning, BaldAcquisition, UncertaintyAcquisition};
use crate::implyloss::ImplyLossPipeline;
use crate::iws::IwsLse;
use crate::selectors::{AbstainSelector, DisagreeSelector};
use crate::weasul::ActiveWeasul;
use nemo_core::config::{ContextualizerConfig, IdpConfig};
use nemo_core::idp::{IdpSession, LearningCurve, RandomSelector, Selector};
use nemo_core::oracle::{NoisyUser, SimulatedUser, User};
use nemo_core::pipeline::{ContextualizedPipeline, LearningPipeline, StandardPipeline};
use nemo_core::seu::SeuSelector;
use nemo_core::user_model::UserModelKind;
use nemo_core::utility::UtilityKind;
use nemo_data::Dataset;
use nemo_sparse::{DetRng, Distance};

/// Every runnable method/variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Full Nemo: SEU selection + contextualized learning (Table 2).
    Nemo,
    /// Vanilla IDP: random selection + standard learning \[28\].
    Snorkel,
    /// Selection-only IDP: abstain-based selection \[9\].
    SnorkelAbs,
    /// Selection-only IDP: disagreement-based selection \[9\].
    SnorkelDis,
    /// CL-only IDP: random selection + ImplyLoss-L learning \[3\].
    ImplyLossL,
    /// Active learning with uncertainty sampling \[20\].
    Us,
    /// Bayesian active learning \[12, 17\].
    Bald,
    /// Interactive weak supervision \[6\].
    IwsLse,
    /// Active WeaSuL \[5\].
    ActiveWeasul,
    /// Ablation: SEU selection + standard learning
    /// (Table 4 "No LF Contextualizer"; Table 5 "SEU").
    SeuOnly,
    /// Ablation: random selection + contextualized learning
    /// (Table 4 "No Data Selector"; Table 8 "Contextualized").
    ClOnly,
    /// Ablation: SEU with the uniform user model (Table 6).
    SeuUniformUserModel,
    /// Ablation: SEU utility without the informativeness term (Table 7).
    SeuNoInformativeness,
    /// Ablation: SEU utility without the correctness term (Table 7).
    SeuNoCorrectness,
    /// Ablation: contextualized learning with euclidean distance (Table 9).
    ClEuclidean,
}

impl Method {
    /// The Table 2 method roster, in the paper's column order.
    pub const TABLE2: [Method; 9] = [
        Method::Nemo,
        Method::Snorkel,
        Method::SnorkelAbs,
        Method::SnorkelDis,
        Method::ImplyLossL,
        Method::Us,
        Method::IwsLse,
        Method::Bald,
        Method::ActiveWeasul,
    ];

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Nemo => "Nemo",
            Method::Snorkel => "Snorkel",
            Method::SnorkelAbs => "Snorkel-Abs",
            Method::SnorkelDis => "Snorkel-Dis",
            Method::ImplyLossL => "ImplyLoss-L",
            Method::Us => "US",
            Method::Bald => "BALD",
            Method::IwsLse => "IWS-LSE",
            Method::ActiveWeasul => "AW",
            Method::SeuOnly => "SEU",
            Method::ClOnly => "Contextualized",
            Method::SeuUniformUserModel => "SEU-Uniform",
            Method::SeuNoInformativeness => "SEU-NoInfo",
            Method::SeuNoCorrectness => "SEU-NoCorrect",
            Method::ClEuclidean => "Contextualized-Euclidean",
        }
    }
}

/// Shared run protocol: the IDP config plus simulated-user settings.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// IDP protocol (iterations, cadence, models, seed).
    pub idp: IdpConfig,
    /// Simulated-user accuracy threshold `t` (paper default 0.5; swept in
    /// Fig. 8).
    pub user_threshold: f64,
    /// Replace the oracle user with a noisy one (user-study simulation):
    /// `(jitter, lapse)`.
    pub noisy_user: Option<(f64, f64)>,
}

impl Default for RunSpec {
    fn default() -> Self {
        Self { idp: IdpConfig::default(), user_threshold: 0.5, noisy_user: None }
    }
}

impl RunSpec {
    /// Copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        Self { idp: self.idp.with_seed(seed), ..self.clone() }
    }

    fn build_user(&self) -> Box<dyn User> {
        match self.noisy_user {
            Some((jitter, lapse)) => {
                let mut rng = DetRng::new(self.idp.seed ^ 0x0151_u64);
                Box::new(NoisyUser::new(self.user_threshold, jitter, lapse, &mut rng))
            }
            None => Box::new(SimulatedUser::with_threshold(self.user_threshold)),
        }
    }
}

fn idp_run(
    ds: &Dataset,
    spec: &RunSpec,
    selector: Box<dyn Selector>,
    pipeline: Box<dyn LearningPipeline>,
) -> LearningCurve {
    IdpSession::new(ds, spec.idp.clone(), selector, spec.build_user(), pipeline).run()
}

/// Run `method` on `ds` under `spec`, returning its learning curve.
// This dispatcher is the one supported caller of the deprecated
// per-baseline `run` shims; everything else goes through it.
#[allow(deprecated)]
pub fn run_method(method: Method, ds: &Dataset, spec: &RunSpec) -> LearningCurve {
    match method {
        Method::Nemo => idp_run(
            ds,
            spec,
            Box::new(SeuSelector::new()),
            Box::new(ContextualizedPipeline::default()),
        ),
        Method::Snorkel => idp_run(ds, spec, Box::new(RandomSelector), Box::new(StandardPipeline)),
        Method::SnorkelAbs => {
            idp_run(ds, spec, Box::new(AbstainSelector), Box::new(StandardPipeline))
        }
        Method::SnorkelDis => {
            idp_run(ds, spec, Box::new(DisagreeSelector), Box::new(StandardPipeline))
        }
        Method::ImplyLossL => {
            idp_run(ds, spec, Box::new(RandomSelector), Box::new(ImplyLossPipeline::default()))
        }
        Method::Us => ActiveLearning::new(UncertaintyAcquisition).run(ds, &spec.idp),
        Method::Bald => ActiveLearning::new(BaldAcquisition::default()).run(ds, &spec.idp),
        Method::IwsLse => IwsLse::default().run(ds, &spec.idp, spec.user_threshold),
        Method::ActiveWeasul => {
            let aw = ActiveWeasul {
                user: SimulatedUser::with_threshold(spec.user_threshold),
                ..Default::default()
            };
            aw.run(ds, &spec.idp)
        }
        Method::SeuOnly => {
            idp_run(ds, spec, Box::new(SeuSelector::new()), Box::new(StandardPipeline))
        }
        Method::ClOnly => {
            idp_run(ds, spec, Box::new(RandomSelector), Box::new(ContextualizedPipeline::default()))
        }
        Method::SeuUniformUserModel => idp_run(
            ds,
            spec,
            Box::new(SeuSelector::with(UserModelKind::Uniform, UtilityKind::Full)),
            Box::new(StandardPipeline),
        ),
        Method::SeuNoInformativeness => idp_run(
            ds,
            spec,
            Box::new(SeuSelector::with(
                UserModelKind::AccuracyWeighted,
                UtilityKind::NoInformativeness,
            )),
            Box::new(StandardPipeline),
        ),
        Method::SeuNoCorrectness => idp_run(
            ds,
            spec,
            Box::new(SeuSelector::with(
                UserModelKind::AccuracyWeighted,
                UtilityKind::NoCorrectness,
            )),
            Box::new(StandardPipeline),
        ),
        Method::ClEuclidean => idp_run(
            ds,
            spec,
            Box::new(RandomSelector),
            Box::new(ContextualizedPipeline::new(ContextualizerConfig {
                distance: Distance::Euclidean,
                ..Default::default()
            })),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_data::catalog::toy_text;

    fn quick_spec(seed: u64) -> RunSpec {
        RunSpec {
            idp: IdpConfig { n_iterations: 10, eval_every: 5, seed, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn every_method_runs_on_toy() {
        let ds = toy_text(1);
        let all = [
            Method::Nemo,
            Method::Snorkel,
            Method::SnorkelAbs,
            Method::SnorkelDis,
            Method::ImplyLossL,
            Method::Us,
            Method::Bald,
            Method::IwsLse,
            Method::ActiveWeasul,
            Method::SeuOnly,
            Method::ClOnly,
            Method::SeuUniformUserModel,
            Method::SeuNoInformativeness,
            Method::SeuNoCorrectness,
            Method::ClEuclidean,
        ];
        for method in all {
            let curve = run_method(method, &ds, &quick_spec(1));
            assert_eq!(curve.points().len(), 2, "{}", method.name());
            for &(_, s) in curve.points() {
                assert!((0.0..=1.0).contains(&s), "{} score {s}", method.name());
            }
        }
    }

    #[test]
    fn table2_roster_matches_paper() {
        let names: Vec<&str> = Method::TABLE2.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "Nemo",
                "Snorkel",
                "Snorkel-Abs",
                "Snorkel-Dis",
                "ImplyLoss-L",
                "US",
                "IWS-LSE",
                "BALD",
                "AW"
            ]
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let ds = toy_text(1);
        for method in [Method::Nemo, Method::Snorkel, Method::IwsLse] {
            let a = run_method(method, &ds, &quick_spec(3));
            let b = run_method(method, &ds, &quick_spec(3));
            assert_eq!(a.points(), b.points(), "{}", method.name());
        }
    }

    #[test]
    fn noisy_user_spec_runs() {
        let ds = toy_text(1);
        let spec = RunSpec { noisy_user: Some((0.05, 0.15)), ..quick_spec(5) };
        let curve = run_method(Method::Nemo, &ds, &spec);
        assert_eq!(curve.points().len(), 2);
    }
}

//! ImplyLoss-L: learning from rules generalizing labeled exemplars,
//! Awasthi et al. \[3\], with linear networks (the paper's "-L" variant,
//! Sec. 5.2 footnote 2).
//!
//! ImplyLoss consumes exactly the information Nemo's contextualizer does —
//! the (rule, exemplar) lineage — but through a dedicated joint objective
//! instead of coverage refinement:
//!
//! - a **classification network** `P_θ(y|x)` (here: linear logistic);
//! - per-rule **restriction networks** `g_j(x) ∈ [0,1]` (linear logistic)
//!   estimating where rule `j` should apply;
//! - the loss couples them:
//!
//! ```text
//! L(θ, φ) = Σ_j CE(P_θ(·|x_{e_j}), y_j)            (exemplar supervision)
//!         + Σ_j −log g_j(x_{e_j})                   (rules fire on their exemplar)
//!         + Σ_j Σ_{x ∈ cov(j)} −log(1 − g_j(x)·(1 − P_θ(y_j|x)))   (imply loss)
//! ```
//!
//! The imply term reads: if `g_j` believes the rule applies to `x`, the
//! classifier must assign the rule's label. Trained jointly with SGD;
//! predictions come from `P_θ`.

use nemo_core::config::IdpConfig;
use nemo_core::idp::ModelOutputs;
use nemo_core::pipeline::LearningPipeline;
use nemo_data::Dataset;
use nemo_labelmodel::Posterior;
use nemo_lf::{LabelMatrix, Lineage};
use nemo_sparse::stats::sigmoid;
use nemo_sparse::{CsrMatrix, DetRng};

/// Hyperparameters of the ImplyLoss-L trainer.
#[derive(Debug, Clone)]
pub struct ImplyLossConfig {
    /// SGD learning rate.
    pub lr: f64,
    /// Training epochs per IDP iteration.
    pub epochs: usize,
    /// Weight of the imply term relative to the exemplar terms.
    pub gamma: f64,
}

impl Default for ImplyLossConfig {
    fn default() -> Self {
        Self { lr: 0.3, epochs: 12, gamma: 0.3 }
    }
}

/// The ImplyLoss-L learning pipeline (a [`LearningPipeline`], so it runs
/// in the same IDP loop as every other method; the paper couples it with
/// random selection).
#[derive(Debug, Clone, Default)]
pub struct ImplyLossPipeline {
    /// Trainer hyperparameters.
    pub config: ImplyLossConfig,
}

struct Nets {
    /// Classifier weights + bias.
    w: Vec<f32>,
    b: f64,
    /// Per-rule restriction weights + biases (row-major `m × d`).
    u: Vec<f32>,
    c: Vec<f64>,
    dim: usize,
}

impl Nets {
    fn new(dim: usize, m: usize) -> Self {
        Self { w: vec![0.0; dim], b: 0.0, u: vec![0.0; dim * m], c: vec![0.0; m], dim }
    }

    fn class_prob_pos(&self, x: &CsrMatrix, i: usize) -> f64 {
        sigmoid(x.row(i).dot_dense(&self.w) + self.b)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn rule_gate(&self, j: usize, x: &CsrMatrix, i: usize) -> f64 {
        let u_j = &self.u[j * self.dim..(j + 1) * self.dim];
        sigmoid(x.row(i).dot_dense(u_j) + self.c[j])
    }
}

impl ImplyLossPipeline {
    fn train(&self, lineage: &Lineage, ds: &Dataset, seed: u64) -> Nets {
        let x = ds.train.features.csr();
        let m = lineage.len();
        let mut nets = Nets::new(x.n_cols(), m);
        if m == 0 {
            return nets;
        }
        let cfg = &self.config;
        let tracked = lineage.tracked();
        // Work list: (rule j, example i, is_exemplar).
        let mut work: Vec<(usize, u32, bool)> = Vec::new();
        for (j, rec) in tracked.iter().enumerate() {
            work.push((j, rec.dev_example, true));
            for &i in rec.lf.coverage(&ds.train.corpus) {
                if i != rec.dev_example {
                    work.push((j, i, false));
                }
            }
        }
        let mut rng = DetRng::new(seed ^ 0x1417_1055);
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut work);
            for &(j, i, is_exemplar) in &work {
                let i = i as usize;
                let row = x.row(i);
                let y_sign = tracked[j].lf.y.sign() as f64;
                let z = row.dot_dense(&nets.w) + nets.b;
                // q = P_θ(y_j | x) under the rule's label.
                let q = sigmoid(y_sign * z);
                let u_j = &nets.u[j * nets.dim..(j + 1) * nets.dim];
                let h = row.dot_dense(u_j) + nets.c[j];
                let g = sigmoid(h);

                let (dq, dg) = if is_exemplar {
                    // CE(P_θ, y_j) = −log q → dℓ/dq = −1/q;
                    // −log g_j(x_e) → dℓ/dg = −1/g.
                    (-1.0 / q.max(1e-6), -1.0 / g.max(1e-6))
                } else {
                    // Imply loss: ℓ = −log(1 − g(1−q)).
                    let denom = (1.0 - g * (1.0 - q)).max(1e-6);
                    (cfg.gamma * (-g / denom), cfg.gamma * ((1.0 - q) / denom))
                };
                // Chain rules: dq/dz = y_sign·q(1−q); dg/dh = g(1−g).
                let dz = dq * y_sign * q * (1.0 - q);
                let dh = dg * g * (1.0 - g);

                let step_w = (cfg.lr * dz) as f32;
                for (&col, &v) in row.indices.iter().zip(row.values) {
                    nets.w[col as usize] -= step_w * v;
                }
                nets.b -= cfg.lr * dz;
                let step_u = (cfg.lr * dh) as f32;
                let u_j = &mut nets.u[j * nets.dim..(j + 1) * nets.dim];
                for (&col, &v) in row.indices.iter().zip(row.values) {
                    u_j[col as usize] -= step_u * v;
                }
                nets.c[j] -= cfg.lr * dh;
            }
        }
        // Post-hoc intercept calibration. Every imply/exemplar update
        // pushes the bias toward the label of the rule being visited, so
        // with imbalanced rule labels the bias absorbs the imbalance and
        // the classifier predicts a single class on the (uncovered)
        // majority of the pool. Re-center the intercept so the mean
        // predicted probability over the training pool matches the
        // dataset's class prior (which the paper's protocol treats as
        // known; cf. `Dataset::prior`).
        nets.b += calibrate_intercept(x, &nets, ds.class_prior_pos);
        nets
    }
}

/// Solve the intercept shift `δ` with `mean_i sigmoid(z_i + δ) = target`
/// by bisection (the mean is monotone in `δ`; Newton diverges when the
/// sigmoids saturate).
fn calibrate_intercept(x: &CsrMatrix, nets: &Nets, target: f64) -> f64 {
    let z: Vec<f64> = (0..x.n_rows()).map(|i| x.row(i).dot_dense(&nets.w) + nets.b).collect();
    if z.is_empty() {
        return 0.0;
    }
    let n = z.len() as f64;
    let mean_prob = |delta: f64| z.iter().map(|&zi| sigmoid(zi + delta)).sum::<f64>() / n;
    let (mut lo, mut hi) = (-30.0, 30.0);
    if mean_prob(lo) > target || mean_prob(hi) < target {
        return 0.0;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mean_prob(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

impl LearningPipeline for ImplyLossPipeline {
    fn name(&self) -> &'static str {
        "implyloss-l"
    }

    fn learn(
        &mut self,
        lineage: &Lineage,
        _raw_matrix: &LabelMatrix,
        ds: &Dataset,
        _config: &IdpConfig,
        iter_seed: u64,
    ) -> ModelOutputs {
        if lineage.is_empty() {
            return ModelOutputs::initial(ds);
        }
        let nets = self.train(lineage, ds, iter_seed);
        let probs = |csr: &CsrMatrix| -> Vec<f64> {
            (0..csr.n_rows()).map(|i| nets.class_prob_pos(csr, i)).collect()
        };
        let train_probs = probs(ds.train.features.csr());
        let valid_probs = probs(ds.valid.features.csr());
        let test_probs = probs(ds.test.features.csr());
        let (valid_pred, test_pred) =
            nemo_core::pipeline::hard_predictions(&valid_probs, &test_probs, ds);
        ModelOutputs {
            train_posterior: Posterior::new(train_probs.clone()),
            train_probs,
            valid_pred,
            test_pred,
            chosen_p: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_core::idp::{IdpSession, RandomSelector};
    use nemo_core::oracle::SimulatedUser;
    use nemo_data::catalog::toy_text;

    #[test]
    fn empty_lineage_gives_prior() {
        let ds = toy_text(1);
        let mut p = ImplyLossPipeline::default();
        let out = p.learn(
            &Lineage::new(),
            &LabelMatrix::new(ds.train.n()),
            &ds,
            &IdpConfig::default(),
            0,
        );
        assert!((out.train_probs[0] - ds.class_prior_pos).abs() < 1e-9);
    }

    #[test]
    fn learns_on_toy_task() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 12, eval_every: 4, seed: 5, ..Default::default() };
        let mut session = IdpSession::new(
            &ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(ImplyLossPipeline::default()),
        );
        let curve = session.run();
        assert!(curve.final_score() > 0.52, "score {}", curve.final_score());
    }

    #[test]
    fn rule_gate_fires_on_exemplar() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 6, eval_every: 6, seed: 6, ..Default::default() };
        let mut session = IdpSession::new(
            &ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(ImplyLossPipeline::default()),
        );
        for _ in 0..6 {
            session.step();
        }
        // Retrain directly to inspect the gates. The imply term closes
        // gates wherever the classifier disagrees with the rule, so the
        // meaningful invariant is *relative*: a rule's gate at its own
        // exemplar must exceed its average gate over the rest of its
        // coverage.
        let pipeline = ImplyLossPipeline::default();
        let nets = pipeline.train(session.lineage(), &ds, 1);
        let x = ds.train.features.csr();
        let mut wins = 0;
        let mut total = 0;
        let tracked = session.lineage().tracked();
        for (j, rec) in tracked.iter().enumerate() {
            let cov = rec.lf.coverage(&ds.train.corpus);
            if cov.len() < 3 {
                continue;
            }
            let at_exemplar = nets.rule_gate(j, x, rec.dev_example as usize);
            let mean_cov: f64 = cov
                .iter()
                .filter(|&&i| i != rec.dev_example)
                .map(|&i| nets.rule_gate(j, x, i as usize))
                .sum::<f64>()
                / (cov.len() - 1) as f64;
            total += 1;
            if at_exemplar > mean_cov {
                wins += 1;
            }
        }
        assert!(total > 0);
        assert!(wins * 2 >= total, "gates should favor their exemplars ({wins}/{total})");
    }

    #[test]
    fn deterministic() {
        let ds = toy_text(1);
        let run = |seed| {
            let config = IdpConfig { n_iterations: 5, eval_every: 5, seed, ..Default::default() };
            IdpSession::new(
                &ds,
                config,
                Box::new(RandomSelector),
                Box::new(SimulatedUser::default()),
                Box::new(ImplyLossPipeline::default()),
            )
            .run()
            .points()
            .to_vec()
        };
        assert_eq!(run(3), run(3));
    }
}

//! Classic active-learning baselines (paper Sec. 5.2, "Other Interactive
//! Schemes"): Uncertainty Sampling \[20\] and BALD \[12, 17\].
//!
//! Unlike the IDP methods, active learning solicits a *single label
//! annotation* per iteration: the oracle reveals the selected example's
//! ground-truth label, and the end model (the same logistic regression
//! all methods use) trains on the labeled set. This is exactly the
//! functional-supervision-vs-label-supervision contrast the paper draws
//! in Sec. 3 ("Connection to Active Learning").

use nemo_core::config::IdpConfig;
use nemo_core::idp::LearningCurve;
use nemo_data::Dataset;
use nemo_endmodel::{bald_scores, BootstrapEnsemble, FittedLogReg, LogisticRegression};
use nemo_lf::Label;
use nemo_sparse::stats::{argmax_set, binary_entropy};
use nemo_sparse::DetRng;

/// An acquisition function over the unlabeled pool.
pub trait Acquisition {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Score every training example (higher = more informative). Called
    /// with the current labeled set; implementations fit whatever model
    /// they need internally.
    fn scores(&self, ds: &Dataset, labeled: &[(u32, Label)], seed: u64) -> Vec<f64>;
}

/// Uncertainty sampling: predictive entropy of the current classifier.
#[derive(Debug, Clone, Default)]
pub struct UncertaintyAcquisition;

impl Acquisition for UncertaintyAcquisition {
    fn name(&self) -> &'static str {
        "US"
    }

    fn scores(&self, ds: &Dataset, labeled: &[(u32, Label)], seed: u64) -> Vec<f64> {
        let model = fit_on_labeled(ds, labeled, seed);
        model.predict_proba(ds.train.features.csr()).into_iter().map(binary_entropy).collect()
    }
}

/// BALD: mutual information between the prediction and the (bootstrap-
/// approximated) model posterior.
#[derive(Debug, Clone)]
pub struct BaldAcquisition {
    /// Ensemble size.
    pub n_models: usize,
}

impl Default for BaldAcquisition {
    fn default() -> Self {
        Self { n_models: 8 }
    }
}

impl Acquisition for BaldAcquisition {
    fn name(&self) -> &'static str {
        "BALD"
    }

    fn scores(&self, ds: &Dataset, labeled: &[(u32, Label)], seed: u64) -> Vec<f64> {
        let (targets, idx) = targets_of(ds, labeled);
        let ens = BootstrapEnsemble { n_models: self.n_models, ..Default::default() };
        let members = ens.fit(ds.train.features.csr(), &targets, &idx, seed);
        let probs: Vec<Vec<f64>> =
            members.iter().map(|m| m.predict_proba(ds.train.features.csr())).collect();
        bald_scores(&probs)
    }
}

fn targets_of(ds: &Dataset, labeled: &[(u32, Label)]) -> (Vec<f64>, Vec<u32>) {
    let mut targets = vec![0.5; ds.train.n()];
    let mut idx = Vec::with_capacity(labeled.len());
    for &(i, y) in labeled {
        targets[i as usize] = if y == Label::Pos { 1.0 } else { 0.0 };
        idx.push(i);
    }
    (targets, idx)
}

fn fit_on_labeled(ds: &Dataset, labeled: &[(u32, Label)], seed: u64) -> FittedLogReg {
    let (targets, idx) = targets_of(ds, labeled);
    LogisticRegression::default().fit(ds.train.features.csr(), &targets, Some(&idx), seed)
}

/// The active-learning session runner.
pub struct ActiveLearning<A: Acquisition> {
    /// Acquisition strategy.
    pub acquisition: A,
}

impl<A: Acquisition> ActiveLearning<A> {
    /// Create a runner.
    pub fn new(acquisition: A) -> Self {
        Self { acquisition }
    }

    /// Run the AL loop under the shared protocol: one label query per
    /// iteration (oracle = ground truth), evaluation on the paper cadence.
    #[deprecated(
        note = "bespoke per-baseline entry point; go through `run_method(Method::Us, ..)` / \
                `run_method(Method::Bald, ..)` so every baseline runs one shared protocol"
    )]
    pub fn run(&self, ds: &Dataset, config: &IdpConfig) -> LearningCurve {
        let mut rng = DetRng::new(config.seed ^ 0xac71_4e1e);
        let mut labeled: Vec<(u32, Label)> = Vec::new();
        let mut excluded = vec![false; ds.train.n()];
        let mut curve = LearningCurve::default();
        for t in 0..config.n_iterations {
            let avail: Vec<usize> = (0..ds.train.n()).filter(|&i| !excluded[i]).collect();
            if !avail.is_empty() {
                let pick = if labeled.len() < 2 {
                    // Cold start: random until both classes can exist.
                    avail[rng.index(avail.len())]
                } else {
                    let iter_seed = config.seed.wrapping_add(t as u64 * 101);
                    let all_scores = self.acquisition.scores(ds, &labeled, iter_seed);
                    let scores: Vec<f64> = avail.iter().map(|&i| all_scores[i]).collect();
                    let ties = argmax_set(&scores);
                    avail[ties[rng.index(ties.len())]]
                };
                excluded[pick] = true;
                labeled.push((pick as u32, ds.train.labels[pick]));
            }
            if (t + 1) % config.eval_every == 0 {
                let model = fit_on_labeled(ds, &labeled, config.seed.wrapping_add(t as u64));
                let valid_probs = model.predict_proba(ds.valid.features.csr());
                let test_probs = model.predict_proba(ds.test.features.csr());
                let (_, pred) =
                    nemo_core::pipeline::hard_predictions(&valid_probs, &test_probs, ds);
                curve.push(t + 1, ds.metric.score(&pred, &ds.test.labels));
            }
        }
        curve
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shim keeps its coverage until it is removed
mod tests {
    use super::*;
    use nemo_data::catalog::toy_text;

    fn config(n: usize, seed: u64) -> IdpConfig {
        IdpConfig { n_iterations: n, eval_every: n / 2, seed, ..Default::default() }
    }

    #[test]
    fn us_learns_on_toy() {
        // 30 true labels on the toy task leave substantial per-seed
        // variance; assert the seed-averaged final score beats chance.
        let ds = toy_text(1);
        let mean = (0..5)
            .map(|seed| {
                ActiveLearning::new(UncertaintyAcquisition)
                    .run(&ds, &config(30, seed))
                    .final_score()
            })
            .sum::<f64>()
            / 5.0;
        assert!(mean > 0.5, "US mean final {mean}");
    }

    #[test]
    fn bald_learns_on_toy() {
        let ds = toy_text(1);
        let mean = (0..5)
            .map(|seed| {
                ActiveLearning::new(BaldAcquisition { n_models: 4 })
                    .run(&ds, &config(30, seed))
                    .final_score()
            })
            .sum::<f64>()
            / 5.0;
        assert!(mean > 0.5, "BALD mean final {mean}");
    }

    #[test]
    fn labels_come_from_ground_truth_one_per_iteration() {
        // After n iterations exactly n examples are labeled (pool big
        // enough), checked indirectly through curve length.
        let ds = toy_text(1);
        let curve = ActiveLearning::new(UncertaintyAcquisition).run(&ds, &config(10, 3));
        assert_eq!(curve.points().len(), 2);
    }

    #[test]
    fn deterministic() {
        let ds = toy_text(1);
        let c1 = ActiveLearning::new(UncertaintyAcquisition).run(&ds, &config(12, 7));
        let c2 = ActiveLearning::new(UncertaintyAcquisition).run(&ds, &config(12, 7));
        assert_eq!(c1.points(), c2.points());
    }

    #[test]
    fn us_scores_are_entropies() {
        let ds = toy_text(1);
        let labeled = vec![(0u32, ds.train.labels[0]), (1u32, ds.train.labels[1])];
        let scores = UncertaintyAcquisition.scores(&ds, &labeled, 1);
        assert_eq!(scores.len(), ds.train.n());
        assert!(scores.iter().all(|&s| (0.0..=std::f64::consts::LN_2 + 1e-9).contains(&s)));
    }
}

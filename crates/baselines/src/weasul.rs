//! Active WeaSuL: active learning to improve weak supervision,
//! Biegel et al. \[5\].
//!
//! The method assumes a *fixed* set of LFs and spends its query budget on
//! ground-truth labels that help the label model denoise them. Following
//! the paper's setup (Sec. 5.2): the first 10 iterations run Snorkel
//! (random selection + simulated user) to collect the LF set; every later
//! iteration queries the true label of one training example and anchors
//! it in the aggregation. Selection uses the maximum-divergence criterion
//! restricted to covered examples (for a binary anchored posterior this
//! reduces to maximum label-model entropy — the anchor moves the
//! posterior to a point mass, so the KL gain *is* the entropy).

use nemo_core::config::IdpConfig;
use nemo_core::idp::LearningCurve;
use nemo_core::oracle::{SimulatedUser, User};
use nemo_data::Dataset;
use nemo_endmodel::LogisticRegression;
use nemo_lf::{label_from_prob, Label, LabelMatrix, LfColumn};
use nemo_sparse::stats::argmax_set;
use nemo_sparse::DetRng;

/// The Active WeaSuL baseline runner.
#[derive(Debug, Clone)]
pub struct ActiveWeasul {
    /// Iterations spent collecting LFs before switching to label queries
    /// (paper: 10).
    pub warmup_iterations: usize,
    /// Simulated user that writes the warmup LFs.
    pub user: SimulatedUser,
}

impl Default for ActiveWeasul {
    fn default() -> Self {
        Self { warmup_iterations: 10, user: SimulatedUser::default() }
    }
}

impl ActiveWeasul {
    /// Run under the shared protocol.
    #[deprecated(note = "bespoke per-baseline entry point; go through \
                `run_method(Method::ActiveWeasul, ..)` so every baseline runs one shared protocol")]
    pub fn run(&self, ds: &Dataset, config: &IdpConfig) -> LearningCurve {
        let mut rng = DetRng::new(config.seed ^ 0xa077_e50e);
        let mut user = self.user.clone();
        let mut matrix = LabelMatrix::new(ds.train.n());
        let mut excluded = vec![false; ds.train.n()];
        let mut anchors: Vec<(u32, Label)> = Vec::new();
        let mut curve = LearningCurve::default();

        for t in 0..config.n_iterations {
            let avail: Vec<usize> = (0..ds.train.n()).filter(|&i| !excluded[i]).collect();
            if !avail.is_empty() {
                if t < self.warmup_iterations {
                    // Snorkel warmup: random dev example → user LF.
                    let x = avail[rng.index(avail.len())];
                    excluded[x] = true;
                    if let Some(lf) = user.provide_lf(x, ds, &mut rng) {
                        matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
                    }
                } else {
                    // Label query: maximum anchored-KL gain == label-model
                    // entropy over covered, unanchored examples.
                    let posterior = self.posterior(ds, config, &matrix, &anchors);
                    let summaries = matrix.vote_summaries();
                    let scores: Vec<f64> = avail
                        .iter()
                        .map(|&i| {
                            if summaries[i].total() > 0 {
                                posterior[i].1
                            } else {
                                f64::NEG_INFINITY
                            }
                        })
                        .collect();
                    let pick = if scores.iter().all(|s| s.is_infinite()) {
                        avail[rng.index(avail.len())]
                    } else {
                        let ties = argmax_set(&scores);
                        avail[ties[rng.index(ties.len())]]
                    };
                    excluded[pick] = true;
                    anchors.push((pick as u32, ds.train.labels[pick]));
                }
            }

            if (t + 1) % config.eval_every == 0 {
                curve.push(t + 1, self.evaluate(ds, config, &matrix, &anchors, t as u64));
            }
        }
        curve
    }

    /// Label-model posterior with anchors applied: `(p_pos, entropy)` per
    /// training example.
    fn posterior(
        &self,
        ds: &Dataset,
        config: &IdpConfig,
        matrix: &LabelMatrix,
        anchors: &[(u32, Label)],
    ) -> Vec<(f64, f64)> {
        let label_model = config.label_model.build();
        let fitted = label_model.fit(matrix, nemo_core::pipeline::UNIFORM_BALANCE);
        let post = fitted.predict(matrix);
        let mut out: Vec<(f64, f64)> =
            (0..ds.train.n()).map(|i| (post.p_pos(i), post.entropy(i))).collect();
        for &(i, y) in anchors {
            out[i as usize] = (if y == Label::Pos { 1.0 } else { 0.0 }, 0.0);
        }
        out
    }

    fn evaluate(
        &self,
        ds: &Dataset,
        config: &IdpConfig,
        matrix: &LabelMatrix,
        anchors: &[(u32, Label)],
        salt: u64,
    ) -> f64 {
        let posterior = self.posterior(ds, config, matrix, anchors);
        let summaries = matrix.vote_summaries();
        let mut targets: Vec<f64> = posterior.iter().map(|&(p, _)| p).collect();
        let mut train_idx: Vec<u32> = summaries
            .iter()
            .enumerate()
            .filter(|(_, s)| s.total() > 0)
            .map(|(i, _)| i as u32)
            .collect();
        // Anchored points always train the end model with their true label.
        for &(i, y) in anchors {
            targets[i as usize] = if y == Label::Pos { 1.0 } else { 0.0 };
            if summaries[i as usize].total() == 0 {
                train_idx.push(i);
            }
        }
        if train_idx.is_empty() {
            let prior_pred = vec![label_from_prob(ds.class_prior_pos); ds.test.n()];
            return ds.metric.score(&prior_pred, &ds.test.labels);
        }
        train_idx.sort_unstable();
        train_idx.dedup();
        let end = LogisticRegression::new(config.end_model.clone()).fit(
            ds.train.features.csr(),
            &targets,
            Some(&train_idx),
            config.seed.wrapping_add(salt),
        );
        let valid_probs = end.predict_proba(ds.valid.features.csr());
        let test_probs = end.predict_proba(ds.test.features.csr());
        let (_, pred) = nemo_core::pipeline::hard_predictions(&valid_probs, &test_probs, ds);
        ds.metric.score(&pred, &ds.test.labels)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shim keeps its coverage until it is removed
mod tests {
    use super::*;
    use nemo_data::catalog::toy_text;

    #[test]
    fn runs_and_learns_on_toy() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 20, eval_every: 10, seed: 1, ..Default::default() };
        let curve = ActiveWeasul::default().run(&ds, &config);
        assert_eq!(curve.points().len(), 2);
        assert!(curve.final_score() > 0.5, "final {}", curve.final_score());
    }

    #[test]
    fn deterministic() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 14, eval_every: 7, seed: 4, ..Default::default() };
        let c1 = ActiveWeasul::default().run(&ds, &config);
        let c2 = ActiveWeasul::default().run(&ds, &config);
        assert_eq!(c1.points(), c2.points());
    }

    #[test]
    fn anchors_override_posterior() {
        let ds = toy_text(1);
        let config = IdpConfig::default();
        let aw = ActiveWeasul::default();
        let matrix = LabelMatrix::new(ds.train.n());
        let anchors = vec![(3u32, Label::Pos), (4u32, Label::Neg)];
        let post = aw.posterior(&ds, &config, &matrix, &anchors);
        assert_eq!(post[3], (1.0, 0.0));
        assert_eq!(post[4], (0.0, 0.0));
    }
}

//! Bootstrap ensembles and the BALD acquisition score.
//!
//! BALD \[12, 17\] scores an example by the mutual information between its
//! predicted label and the model posterior, approximated over an ensemble
//! of `K` models as
//!
//! ```text
//! I(y; θ | x) ≈ H( mean_k p_k(x) ) − mean_k H( p_k(x) )
//! ```
//!
//! The ensemble here is a bag of logistic regressions trained on bootstrap
//! resamples — the standard cheap stand-in for a Bayesian posterior.

use crate::logreg::{FittedLogReg, LogisticRegression};
use nemo_sparse::stats::binary_entropy;
use nemo_sparse::{CsrMatrix, DetRng};

/// A bag of bootstrap-trained logistic regressions.
#[derive(Debug, Clone)]
pub struct BootstrapEnsemble {
    /// Ensemble size.
    pub n_models: usize,
    /// Base trainer.
    pub base: LogisticRegression,
}

impl Default for BootstrapEnsemble {
    fn default() -> Self {
        Self { n_models: 8, base: LogisticRegression::default() }
    }
}

impl BootstrapEnsemble {
    /// Fit `n_models` members on bootstrap resamples of `indices`.
    pub fn fit(
        &self,
        x: &CsrMatrix,
        targets: &[f64],
        indices: &[u32],
        seed: u64,
    ) -> Vec<FittedLogReg> {
        let mut rng = DetRng::new(seed ^ 0xb007_57ae);
        (0..self.n_models)
            .map(|k| {
                if indices.is_empty() {
                    return FittedLogReg::zeros(x.n_cols());
                }
                let resample: Vec<u32> =
                    (0..indices.len()).map(|_| indices[rng.index(indices.len())]).collect();
                self.base.fit(x, targets, Some(&resample), seed.wrapping_add(k as u64 * 7919))
            })
            .collect()
    }

    /// Per-example mean probability over fitted members.
    pub fn mean_proba(members: &[FittedLogReg], x: &CsrMatrix) -> Vec<f64> {
        let n = x.n_rows();
        let mut mean = vec![0.0; n];
        for m in members {
            for (i, p) in m.predict_proba(x).into_iter().enumerate() {
                mean[i] += p;
            }
        }
        let k = members.len().max(1) as f64;
        mean.iter_mut().for_each(|p| *p /= k);
        mean
    }
}

/// BALD mutual-information scores given per-member probability vectors
/// (`probs[k][i]` = member `k`'s `P(y_i = +1)`).
pub fn bald_scores(probs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!probs.is_empty(), "bald_scores needs at least one member");
    let n = probs[0].len();
    let k = probs.len() as f64;
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let mut mean = 0.0;
        let mut mean_h = 0.0;
        for member in probs {
            debug_assert_eq!(member.len(), n);
            mean += member[i];
            mean_h += binary_entropy(member[i]);
        }
        mean /= k;
        mean_h /= k;
        scores.push((binary_entropy(mean) - mean_h).max(0.0));
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_sparse::SparseVec;

    #[test]
    fn bald_zero_when_members_agree() {
        let probs = vec![vec![0.9, 0.1], vec![0.9, 0.1]];
        let s = bald_scores(&probs);
        assert!(s.iter().all(|&v| v < 1e-9), "{s:?}");
    }

    #[test]
    fn bald_high_when_members_confidently_disagree() {
        // Two members sure of opposite labels → mean 0.5 (max entropy),
        // member entropies ≈ 0 → MI ≈ ln 2.
        let probs = vec![vec![0.99], vec![0.01]];
        let s = bald_scores(&probs);
        assert!(s[0] > 0.5, "score {}", s[0]);
    }

    #[test]
    fn bald_low_for_aleatoric_uncertainty() {
        // Members agree the example is ambiguous (both say 0.5):
        // predictive entropy is high but MI is zero — the BALD property
        // that distinguishes it from plain uncertainty sampling.
        let probs = vec![vec![0.5], vec![0.5]];
        let s = bald_scores(&probs);
        assert!(s[0] < 1e-9);
    }

    #[test]
    fn ensemble_fits_and_averages() {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..30 {
            rows.push(SparseVec::from_pairs(vec![(0, 1.0)], 2));
            targets.push(1.0);
            rows.push(SparseVec::from_pairs(vec![(1, 1.0)], 2));
            targets.push(0.0);
        }
        let x = CsrMatrix::from_rows(&rows, 2);
        let idx: Vec<u32> = (0..x.n_rows() as u32).collect();
        let ens = BootstrapEnsemble { n_models: 4, ..Default::default() };
        let members = ens.fit(&x, &targets, &idx, 11);
        assert_eq!(members.len(), 4);
        let mean = BootstrapEnsemble::mean_proba(&members, &x);
        assert!(mean[0] > 0.6);
        assert!(mean[1] < 0.4);
    }

    #[test]
    fn ensemble_deterministic() {
        let rows = vec![SparseVec::from_pairs(vec![(0, 1.0)], 1); 10];
        let x = CsrMatrix::from_rows(&rows, 1);
        let targets = vec![1.0; 10];
        let idx: Vec<u32> = (0..10).collect();
        let ens = BootstrapEnsemble { n_models: 3, ..Default::default() };
        let a = ens.fit(&x, &targets, &idx, 5);
        let b = ens.fit(&x, &targets, &idx, 5);
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(ma.weights(), mb.weights());
        }
    }

    #[test]
    fn empty_indices_gives_uninformative_members() {
        let rows = vec![SparseVec::from_pairs(vec![(0, 1.0)], 1); 3];
        let x = CsrMatrix::from_rows(&rows, 1);
        let ens = BootstrapEnsemble { n_models: 2, ..Default::default() };
        let members = ens.fit(&x, &[0.5; 3], &[], 1);
        let mean = BootstrapEnsemble::mean_proba(&members, &x);
        assert!(mean.iter().all(|&p| (p - 0.5).abs() < 1e-9));
    }
}

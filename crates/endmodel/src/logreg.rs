//! Logistic regression on sparse features with probabilistic targets.
//!
//! Trained by mini-batchless SGD over a (sub)set of examples with soft
//! cross-entropy loss `−t·log p − (1−t)·log(1−p)`; the gradient for a
//! soft target is simply `(p − t)·x`, so probabilistic labels from the
//! label model plug in directly (the standard noise-aware DP end-model
//! objective). L2 regularization is applied as per-epoch weight decay —
//! cheap, deterministic, and indistinguishable from per-step decay at the
//! learning rates used here.

use nemo_sparse::stats::sigmoid;
use nemo_sparse::{CsrMatrix, DetRng};

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// Learning rate.
    pub lr: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
    /// L2 regularization strength (per-epoch weight decay `lr · l2`).
    pub l2: f64,
    /// Whether to fit an intercept.
    pub fit_intercept: bool,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self { lr: 0.5, epochs: 20, l2: 2e-5, fit_intercept: true }
    }
}

/// Logistic-regression trainer.
#[derive(Debug, Clone, Default)]
pub struct LogisticRegression {
    /// Hyperparameters.
    pub config: LogRegConfig,
}

impl LogisticRegression {
    /// Construct with a config.
    pub fn new(config: LogRegConfig) -> Self {
        Self { config }
    }

    /// Fit on rows `indices` of `x` (all rows when `None`) against soft
    /// targets `targets[i] = P(y_i = +1)` (indexed by *row id*, not by
    /// position in `indices`). Deterministic in `seed`.
    pub fn fit(
        &self,
        x: &CsrMatrix,
        targets: &[f64],
        indices: Option<&[u32]>,
        seed: u64,
    ) -> FittedLogReg {
        assert_eq!(x.n_rows(), targets.len(), "targets length mismatch");
        let owned: Vec<u32>;
        let idx: &[u32] = match indices {
            Some(ids) => ids,
            None => {
                owned = (0..x.n_rows() as u32).collect();
                &owned
            }
        };
        let mut w = vec![0.0f32; x.n_cols()];
        let mut b = 0.0f64;
        if idx.is_empty() {
            return FittedLogReg { weights: w, bias: 0.0 };
        }
        // Canonicalize before the seeded shuffle so the fit is invariant
        // to the order in which callers list the covered rows.
        let mut order: Vec<u32> = idx.to_vec();
        order.sort_unstable();
        let mut rng = DetRng::new(seed ^ 0x7095_71c5_u64);
        let cfg = &self.config;
        // Per-step L2 weight decay, applied in chunks of `DECAY_CHUNK`
        // steps so the dense `w *= c` sweep amortizes over sparse updates
        // (equivalent up to O(lr²·l2²) to exact per-step decay).
        const DECAY_CHUNK: usize = 64;
        let chunk_decay = (1.0 - cfg.lr * cfg.l2).max(0.0).powi(DECAY_CHUNK as i32) as f32;
        let mut steps_since_decay = 0usize;
        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i as usize);
                let z = row.dot_dense(&w) + b;
                let p = sigmoid(z);
                let g = p - targets[i as usize];
                let step = (cfg.lr * g) as f32;
                for (&col, &v) in row.indices.iter().zip(row.values) {
                    w[col as usize] -= step * v;
                }
                if cfg.fit_intercept {
                    b -= cfg.lr * g;
                }
                if cfg.l2 > 0.0 {
                    steps_since_decay += 1;
                    if steps_since_decay == DECAY_CHUNK {
                        steps_since_decay = 0;
                        for wi in &mut w {
                            *wi *= chunk_decay;
                        }
                    }
                }
            }
        }
        FittedLogReg { weights: w, bias: b as f32 }
    }
}

/// A fitted logistic-regression model.
#[derive(Debug, Clone)]
pub struct FittedLogReg {
    weights: Vec<f32>,
    bias: f32,
}

impl FittedLogReg {
    /// A zero model (predicts 0.5 everywhere) of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Self { weights: vec![0.0; dim], bias: 0.0 }
    }

    /// Weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Intercept.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Decision value `w·x + b` for one row.
    pub fn decision(&self, x: &CsrMatrix, i: usize) -> f64 {
        x.row(i).dot_dense(&self.weights) + self.bias as f64
    }

    /// `P(y = +1)` for one row.
    pub fn predict_proba_one(&self, x: &CsrMatrix, i: usize) -> f64 {
        sigmoid(self.decision(x, i))
    }

    /// `P(y = +1)` for every row.
    pub fn predict_proba(&self, x: &CsrMatrix) -> Vec<f64> {
        (0..x.n_rows()).map(|i| self.predict_proba_one(x, i)).collect()
    }

    /// Signed hard predictions (+1/−1 as `i8`), threshold 0.5.
    pub fn predict_signs(&self, x: &CsrMatrix) -> Vec<i8> {
        self.predict_proba(x).into_iter().map(|p| if p >= 0.5 { 1 } else { -1 }).collect()
    }
}

/// Full-batch soft cross-entropy loss and gradient (used by tests for
/// finite-difference verification, and by the ImplyLoss baseline's linear
/// classification head).
pub fn loss_and_grad(
    x: &CsrMatrix,
    targets: &[f64],
    indices: &[u32],
    weights: &[f32],
    bias: f64,
) -> (f64, Vec<f64>, f64) {
    let mut loss = 0.0;
    let mut gw = vec![0.0f64; x.n_cols()];
    let mut gb = 0.0;
    let eps = 1e-12;
    for &i in indices {
        let row = x.row(i as usize);
        let p = sigmoid(row.dot_dense(weights) + bias);
        let t = targets[i as usize];
        loss -= t * (p.max(eps)).ln() + (1.0 - t) * ((1.0 - p).max(eps)).ln();
        let g = p - t;
        for (&col, &v) in row.indices.iter().zip(row.values) {
            gw[col as usize] += g * v as f64;
        }
        gb += g;
    }
    let n = indices.len().max(1) as f64;
    (loss / n, gw.iter().map(|g| g / n).collect(), gb / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_sparse::SparseVec;

    /// Linearly separable toy set: feature 0 → positive, feature 1 → negative.
    fn toy() -> (CsrMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for k in 0..40 {
            let strength = 0.5 + (k % 5) as f32 * 0.1;
            rows.push(SparseVec::from_pairs(vec![(0, strength)], 2));
            targets.push(1.0);
            rows.push(SparseVec::from_pairs(vec![(1, strength)], 2));
            targets.push(0.0);
        }
        (CsrMatrix::from_rows(&rows, 2), targets)
    }

    #[test]
    fn learns_separable_data() {
        let (x, t) = toy();
        let model = LogisticRegression::default().fit(&x, &t, None, 1);
        let probs = model.predict_proba(&x);
        for (i, &target) in t.iter().enumerate() {
            if target > 0.5 {
                assert!(probs[i] > 0.7, "pos example {i} got {}", probs[i]);
            } else {
                assert!(probs[i] < 0.3, "neg example {i} got {}", probs[i]);
            }
        }
    }

    #[test]
    fn soft_targets_are_respected() {
        // All-identical features with soft target 0.8 → predictions ≈ 0.8.
        let rows: Vec<SparseVec> =
            (0..50).map(|_| SparseVec::from_pairs(vec![(0, 1.0)], 1)).collect();
        let x = CsrMatrix::from_rows(&rows, 1);
        let t = vec![0.8; 50];
        let cfg = LogRegConfig { epochs: 200, lr: 0.3, l2: 0.0, fit_intercept: true };
        let model = LogisticRegression::new(cfg).fit(&x, &t, None, 2);
        let p = model.predict_proba_one(&x, 0);
        assert!((p - 0.8).abs() < 0.03, "converged to {p}");
    }

    #[test]
    fn subset_training_ignores_other_rows() {
        let (x, mut t) = toy();
        // Poison the targets of rows we exclude.
        let train_idx: Vec<u32> = (0..x.n_rows() as u32).filter(|i| i % 2 == 0).collect();
        for i in (1..t.len()).step_by(2) {
            t[i] = 0.5;
        }
        let model = LogisticRegression::default().fit(&x, &t, Some(&train_idx), 3);
        // Even rows are all the positive-feature rows in `toy`'s layout.
        assert!(model.predict_proba_one(&x, 0) > 0.6);
    }

    #[test]
    fn empty_subset_yields_zero_model() {
        let (x, t) = toy();
        let model = LogisticRegression::default().fit(&x, &t, Some(&[]), 4);
        assert_eq!(model.predict_proba_one(&x, 0), 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, t) = toy();
        let m1 = LogisticRegression::default().fit(&x, &t, None, 7);
        let m2 = LogisticRegression::default().fit(&x, &t, None, 7);
        assert_eq!(m1.weights(), m2.weights());
        assert_eq!(m1.bias(), m2.bias());
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, t) = toy();
        let loose = LogisticRegression::new(LogRegConfig { l2: 0.0, ..Default::default() })
            .fit(&x, &t, None, 5);
        let tight = LogisticRegression::new(LogRegConfig { l2: 0.05, ..Default::default() })
            .fit(&x, &t, None, 5);
        let norm = |m: &FittedLogReg| m.weights().iter().map(|&w| (w as f64).powi(2)).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, t) = toy();
        let idx: Vec<u32> = (0..x.n_rows() as u32).collect();
        let w = vec![0.3f32, -0.2];
        let b = 0.1;
        let (_, gw, gb) = loss_and_grad(&x, &t, &idx, &w, b);
        let h = 1e-4;
        for d in 0..2 {
            let mut wp = w.clone();
            wp[d] += h as f32;
            let (lp, _, _) = loss_and_grad(&x, &t, &idx, &wp, b);
            let mut wm = w.clone();
            wm[d] -= h as f32;
            let (lm, _, _) = loss_and_grad(&x, &t, &idx, &wm, b);
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - gw[d]).abs() < 1e-3, "dim {d}: fd {fd} vs analytic {}", gw[d]);
        }
        let (lp, _, _) = loss_and_grad(&x, &t, &idx, &w, b + h);
        let (lm, _, _) = loss_and_grad(&x, &t, &idx, &w, b - h);
        let fd = (lp - lm) / (2.0 * h);
        assert!((fd - gb).abs() < 1e-3, "bias: fd {fd} vs analytic {gb}");
    }

    #[test]
    fn predict_signs_threshold() {
        let (x, t) = toy();
        let model = LogisticRegression::default().fit(&x, &t, None, 6);
        let signs = model.predict_signs(&x);
        assert_eq!(signs[0], 1);
        assert_eq!(signs[1], -1);
    }

    #[test]
    fn zero_model_predicts_half() {
        let (x, _) = toy();
        let model = FittedLogReg::zeros(2);
        assert!(model.predict_proba(&x).iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }
}

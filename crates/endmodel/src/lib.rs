//! # nemo-endmodel
//!
//! The discriminative end model of the DP pipeline (paper Sec. 2, stage 3):
//! logistic regression trained on probabilistic soft labels, exactly the
//! configuration the paper fixes for all methods ("We fix the end model to
//! be logistic regression for all methods", Sec. 5.1).
//!
//! The crate is deliberately label-type-agnostic: it consumes `f64` soft
//! targets (`P(y=+1)`) and produces `f64` probabilities; callers convert
//! to/from [`nemo_lf::Label`]. Also provided: a small Adam optimizer
//! (shared with the ImplyLoss baseline) and bootstrap ensembles with the
//! BALD mutual-information score for the Bayesian active-learning baseline.

#![warn(missing_docs)]

pub mod ensemble;
pub mod logreg;
pub mod optim;

pub use ensemble::{bald_scores, BootstrapEnsemble};
pub use logreg::{FittedLogReg, LogRegConfig, LogisticRegression};
pub use optim::Adam;

//! Adam optimizer over a flat parameter vector.
//!
//! Used by the ImplyLoss-L baseline (paper Sec. 5.2, \[3\]), whose joint
//! objective over the classification and rule networks is easier to train
//! with an adaptive method than with plain SGD.

/// Adam state for one flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Create with standard betas (0.9, 0.999).
    pub fn new(n_params: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Number of parameters this optimizer was sized for.
    pub fn n_params(&self) -> usize {
        self.m.len()
    }

    /// Apply one update step: `params -= lr · m̂ / (sqrt(v̂) + eps)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= (self.lr * m_hat / (v_hat.sqrt() + self.eps)) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x0 − 3)^2 + (x1 + 2)^2
        let mut params = vec![0.0f32, 0.0];
        let mut opt = Adam::new(2, 0.1);
        for _ in 0..500 {
            let grads = vec![2.0 * (params[0] as f64 - 3.0), 2.0 * (params[1] as f64 + 2.0)];
            opt.step(&mut params, &grads);
        }
        assert!((params[0] - 3.0).abs() < 0.05, "x0 = {}", params[0]);
        assert!((params[1] + 2.0).abs() < 0.05, "x1 = {}", params[1]);
    }

    #[test]
    fn first_step_magnitude_close_to_lr() {
        // Adam's bias correction makes the first step ≈ lr regardless of
        // gradient scale.
        let mut params = vec![0.0f32];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut params, &[1000.0]);
        assert!((params[0] + 0.1).abs() < 1e-3, "step {}", params[0]);
    }

    #[test]
    #[should_panic(expected = "param length mismatch")]
    fn rejects_wrong_size() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[0.0]);
    }
}

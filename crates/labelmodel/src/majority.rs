//! Majority-vote label model.
//!
//! Every LF is assumed equally accurate; "fitting" assigns a fixed
//! accuracy to all LFs, which makes the naive-Bayes aggregation equivalent
//! to (soft) majority vote with a prior tie-break. The fixed accuracy acts
//! as a temperature: higher values make the vote margin steeper.

use crate::traits::{FittedLabelModel, LabelModel, NaiveBayesFit};
use nemo_lf::LabelMatrix;

/// The majority-vote aggregator.
#[derive(Debug, Clone)]
pub struct MajorityVote {
    /// Assumed uniform LF accuracy (default 0.7).
    pub assumed_accuracy: f64,
}

impl Default for MajorityVote {
    fn default() -> Self {
        Self { assumed_accuracy: 0.7 }
    }
}

impl LabelModel for MajorityVote {
    fn name(&self) -> &'static str {
        "majority-vote"
    }

    fn fit(&self, matrix: &LabelMatrix, prior: [f64; 2]) -> Box<dyn FittedLabelModel> {
        Box::new(NaiveBayesFit::new(vec![self.assumed_accuracy; matrix.n_lfs()], prior))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_lf::{Label, PrimitiveCorpus, PrimitiveLf};

    #[test]
    fn majority_direction_wins() {
        // Two +1 LFs vs one −1 LF on example 0.
        let corpus = PrimitiveCorpus::new(vec![vec![0, 1, 2]], 3);
        let m = LabelMatrix::from_lfs(
            &[
                PrimitiveLf::new(0, Label::Pos),
                PrimitiveLf::new(1, Label::Pos),
                PrimitiveLf::new(2, Label::Neg),
            ],
            &corpus,
        );
        let fitted = MajorityVote::default().fit(&m, [0.5, 0.5]);
        let post = fitted.predict(&m);
        assert!(post.p_pos(0) > 0.5);
        assert_eq!(post.hard_labels()[0], Label::Pos);
    }

    #[test]
    fn tie_resolves_to_prior() {
        let corpus = PrimitiveCorpus::new(vec![vec![0, 1]], 2);
        let m = LabelMatrix::from_lfs(
            &[PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)],
            &corpus,
        );
        let fitted = MajorityVote::default().fit(&m, [0.8, 0.2]);
        let post = fitted.predict(&m);
        assert!((post.p_pos(0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn all_lfs_same_accuracy() {
        let corpus = PrimitiveCorpus::new(vec![vec![0], vec![1]], 2);
        let m = LabelMatrix::from_lfs(
            &[PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)],
            &corpus,
        );
        let fitted = MajorityVote { assumed_accuracy: 0.65 }.fit(&m, [0.5, 0.5]);
        assert!(fitted.lf_accuracies().iter().all(|&a| (a - 0.65).abs() < 1e-12));
    }
}

//! # nemo-labelmodel
//!
//! Label-model substrate (paper Sec. 2, stage 2): learn per-LF accuracies
//! from the label matrix `L` and aggregate weak votes into probabilistic
//! soft labels `P(y_i | L)`.
//!
//! Three estimators are provided:
//!
//! - [`MajorityVote`] — the classic baseline aggregator.
//! - [`GenerativeModel`] — a conditionally-independent generative model
//!   with per-LF accuracy parameters fit by EM. This is the binary
//!   specialization of the MeTaL \[30\] model class and the default label
//!   model throughout the reproduction (the paper adopts MeTaL).
//! - [`TripletModel`] — the closed-form method-of-moments estimator of
//!   FlyingSquid \[11\], used as an alternative estimator and as a
//!   cross-check in tests.
//!
//! All models share the [`LabelModel`] → [`FittedLabelModel`] interface:
//! fitting happens on the training label matrix; the fitted model can then
//! score *any* label matrix over the same LFs (e.g. the validation split,
//! which the contextualizer's percentile tuner uses).

#![warn(missing_docs)]

pub mod generative;
pub mod majority;
pub mod posterior;
pub mod traits;
pub mod triplet;

pub use generative::GenerativeModel;
pub use majority::MajorityVote;
pub use posterior::Posterior;
pub use traits::{FittedLabelModel, LabelModel, NaiveBayesFit};
pub use triplet::TripletModel;

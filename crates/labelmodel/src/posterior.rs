//! Per-example posterior distributions `P(y_i | L)`.

use nemo_lf::{label_from_prob, Label};
use nemo_sparse::stats::binary_entropy;

/// Probabilistic soft labels for a set of examples.
#[derive(Debug, Clone)]
pub struct Posterior {
    p_pos: Vec<f64>,
}

impl Posterior {
    /// Wrap a `P(y = +1)` vector (each entry clamped to `[0, 1]`).
    pub fn new(p_pos: Vec<f64>) -> Self {
        let p_pos = p_pos.into_iter().map(|p| p.clamp(0.0, 1.0)).collect();
        Self { p_pos }
    }

    /// Uniform-prior posterior over `n` examples.
    pub fn from_prior(n: usize, prior_pos: f64) -> Self {
        Self::new(vec![prior_pos; n])
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.p_pos.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.p_pos.is_empty()
    }

    /// `P(y_i = +1)`.
    #[inline]
    pub fn p_pos(&self, i: usize) -> f64 {
        self.p_pos[i]
    }

    /// The full `P(y = +1)` vector.
    pub fn p_pos_slice(&self) -> &[f64] {
        &self.p_pos
    }

    /// `[P(y_i = −1), P(y_i = +1)]`.
    #[inline]
    pub fn probs(&self, i: usize) -> [f64; 2] {
        [1.0 - self.p_pos[i], self.p_pos[i]]
    }

    /// Label-model uncertainty `ψ(x_i)` (Shannon entropy of the posterior,
    /// paper Eq. 3).
    #[inline]
    pub fn entropy(&self, i: usize) -> f64 {
        binary_entropy(self.p_pos[i])
    }

    /// Entropies of all examples.
    pub fn entropies(&self) -> Vec<f64> {
        self.p_pos.iter().map(|&p| binary_entropy(p)).collect()
    }

    /// Hard labels (0.5 threshold, ties positive).
    pub fn hard_labels(&self) -> Vec<Label> {
        self.p_pos.iter().map(|&p| label_from_prob(p)).collect()
    }

    /// Mean entropy across examples (a global uncertainty summary).
    pub fn mean_entropy(&self) -> f64 {
        if self.p_pos.is_empty() {
            return 0.0;
        }
        self.p_pos.iter().map(|&p| binary_entropy(p)).sum::<f64>() / self.p_pos.len() as f64
    }

    /// Mean log-likelihood of gold `labels` under these posteriors — the
    /// proper scoring rule `tune_p` selects the refinement percentile
    /// with. Probabilities are clamped to `[ε, 1−ε]` (ε = 1e-6) so a
    /// confidently wrong posterior scores a large finite penalty instead
    /// of `−∞`. The sum runs in label order and divides once, so two
    /// calls over content-equal inputs are **bitwise** identical — the
    /// property the equivalence-class score dedup relies on. An empty
    /// label slice scores a vacuous `0.0` (no evidence either way).
    pub fn mean_log_likelihood(&self, labels: &[Label]) -> f64 {
        if labels.is_empty() {
            return 0.0;
        }
        let eps = 1e-6;
        let mut loglik = 0.0;
        for (i, &gold) in labels.iter().enumerate() {
            let p_pos = self.p_pos[i].clamp(eps, 1.0 - eps);
            loglik += match gold {
                Label::Pos => p_pos.ln(),
                Label::Neg => (1.0 - p_pos).ln(),
            };
        }
        loglik / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_inputs() {
        let p = Posterior::new(vec![-0.5, 1.7, 0.3]);
        assert_eq!(p.p_pos(0), 0.0);
        assert_eq!(p.p_pos(1), 1.0);
        assert_eq!(p.p_pos(2), 0.3);
    }

    #[test]
    fn probs_sum_to_one() {
        let p = Posterior::new(vec![0.2, 0.9]);
        for i in 0..2 {
            let [n, pos] = p.probs(i);
            assert!((n + pos - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn entropy_peaks_at_half() {
        let p = Posterior::new(vec![0.5, 0.0, 1.0, 0.9]);
        assert!(p.entropy(0) > p.entropy(3));
        assert_eq!(p.entropy(1), 0.0);
        assert_eq!(p.entropy(2), 0.0);
    }

    #[test]
    fn hard_labels_threshold() {
        let p = Posterior::new(vec![0.49, 0.5, 0.51]);
        assert_eq!(p.hard_labels(), vec![Label::Neg, Label::Pos, Label::Pos]);
    }

    #[test]
    fn prior_constructor() {
        let p = Posterior::from_prior(3, 0.3);
        assert_eq!(p.len(), 3);
        assert!((p.p_pos(2) - 0.3).abs() < 1e-12);
        assert!(p.mean_entropy() > 0.0);
    }

    #[test]
    fn mean_log_likelihood_matches_manual_sum() {
        let p = Posterior::new(vec![0.9, 0.2, 0.5]);
        let labels = [Label::Pos, Label::Neg, Label::Pos];
        let expect = (0.9f64.ln() + 0.8f64.ln() + 0.5f64.ln()) / 3.0;
        assert!((p.mean_log_likelihood(&labels) - expect).abs() < 1e-12);
    }

    #[test]
    fn mean_log_likelihood_clamps_and_handles_empty() {
        // A posterior of exactly 0/1 on the wrong label must stay finite.
        let p = Posterior::new(vec![0.0, 1.0]);
        let s = p.mean_log_likelihood(&[Label::Pos, Label::Neg]);
        assert!(s.is_finite() && s < -10.0, "confidently wrong scores a large penalty: {s}");
        let empty = Posterior::new(vec![]);
        assert_eq!(empty.mean_log_likelihood(&[]), 0.0);
    }

    #[test]
    fn mean_log_likelihood_is_deterministic_bitwise() {
        let p = Posterior::new(vec![0.31, 0.72, 0.99999999, 0.1]);
        let labels = [Label::Pos, Label::Neg, Label::Pos, Label::Neg];
        let a = p.mean_log_likelihood(&labels);
        let b = Posterior::new(vec![0.31, 0.72, 0.99999999, 0.1]).mean_log_likelihood(&labels);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

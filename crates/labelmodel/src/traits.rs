//! Label-model interfaces and the shared naive-Bayes aggregation step.

use crate::posterior::Posterior;
use nemo_lf::LabelMatrix;
use nemo_sparse::stats::sigmoid;

/// An (unfitted) label model. `Send + Sync` so percentile tuning can fit
/// independent grid points in parallel (all estimators are plain-data
/// configuration structs).
pub trait LabelModel: Send + Sync {
    /// Estimator name (for reports).
    fn name(&self) -> &'static str;

    /// Fit LF accuracies on `matrix` with class prior
    /// `prior = [P(y=−1), P(y=+1)]`, returning a fitted aggregator.
    fn fit(&self, matrix: &LabelMatrix, prior: [f64; 2]) -> Box<dyn FittedLabelModel>;

    /// Fit, optionally seeding the estimator from previously fitted
    /// per-LF accuracies (`warm_acc[j]` seeds LF `j`; missing tail
    /// entries use the estimator's default initialization, extra entries
    /// are ignored).
    ///
    /// Closed-form estimators (moments, majority vote) have nothing to
    /// seed and fall through to [`LabelModel::fit`]; iterative
    /// estimators ([`crate::GenerativeModel`]) override this to converge
    /// from the seed instead of from scratch. Callers that tolerate
    /// convergence-level (rather than bitwise) reproducibility can chain
    /// fits over slowly-changing matrices this way — the
    /// percentile-tuning loop of the contextualizer is the intended
    /// consumer.
    fn fit_from(
        &self,
        matrix: &LabelMatrix,
        prior: [f64; 2],
        warm_acc: Option<&[f64]>,
    ) -> Box<dyn FittedLabelModel> {
        let _ = warm_acc;
        self.fit(matrix, prior)
    }
}

/// A fitted label model: can score any label matrix over the same LFs.
pub trait FittedLabelModel: Send + Sync {
    /// Per-LF accuracy estimates `P(λ_j correct | λ_j ≠ 0)`.
    fn lf_accuracies(&self) -> &[f64];

    /// Aggregate votes into posteriors `P(y_i | L)`.
    fn predict(&self, matrix: &LabelMatrix) -> Posterior;

    /// [`FittedLabelModel::predict`], also returning the ascending ids of
    /// examples with at least one non-abstain vote — the subset the end
    /// model trains on. The default derives coverage with a second
    /// `O(nnz + n)` matrix pass ([`LabelMatrix::covered_examples`]);
    /// [`NaiveBayesFit`] overrides it to mark coverage while scattering
    /// vote logits, so the pipeline's per-round predict-then-train
    /// hand-off scans the tuned train matrix exactly once. Both paths
    /// return bitwise-identical posteriors and the identical id list.
    fn predict_with_coverage(&self, matrix: &LabelMatrix) -> (Posterior, Vec<u32>) {
        (self.predict(matrix), matrix.covered_examples())
    }

    /// Predict on `matrix` and score the posteriors against gold
    /// `labels` in one call
    /// ([`crate::Posterior::mean_log_likelihood`]) — the validation
    /// entry point percentile tuning drives once per score equivalence
    /// class. Deterministic given the fitted parameters and the matrix
    /// *contents*: two calls over content-equal matrices return bitwise
    /// the same score, which is why a class representative's score can
    /// stand in for every member's.
    fn score_log_likelihood(&self, matrix: &LabelMatrix, labels: &[nemo_lf::Label]) -> f64 {
        self.predict(matrix).mean_log_likelihood(labels)
    }
}

/// The common fitted form: per-LF accuracies + class prior, aggregated with
/// the conditionally-independent (naive-Bayes) rule
///
/// ```text
/// logit P(y=+1 | L_i) = log(π₊/π₋) + Σ_{j: L_ij≠0} L_ij · log(a_j / (1−a_j))
/// ```
///
/// All three estimators in this crate differ only in how they *estimate*
/// `a_j`; they share this aggregation step (as MeTaL, FlyingSquid, and
/// majority vote all do in the binary case).
#[derive(Debug, Clone)]
pub struct NaiveBayesFit {
    accuracies: Vec<f64>,
    log_odds: Vec<f64>,
    prior_logit: f64,
}

impl NaiveBayesFit {
    /// Minimum/maximum admissible accuracy (keeps log-odds finite).
    pub const ACC_CLAMP: (f64, f64) = (0.05, 0.95);

    /// Build from per-LF accuracies and `[π₋, π₊]`.
    pub fn new(accuracies: Vec<f64>, prior: [f64; 2]) -> Self {
        let (lo, hi) = Self::ACC_CLAMP;
        let accuracies: Vec<f64> = accuracies.into_iter().map(|a| a.clamp(lo, hi)).collect();
        let log_odds = accuracies.iter().map(|&a| (a / (1.0 - a)).ln()).collect();
        let eps = 1e-9;
        let prior_logit = ((prior[1].max(eps)) / (prior[0].max(eps))).ln();
        Self { accuracies, log_odds, prior_logit }
    }

    /// The class-prior logit `log(π₊/π₋)`.
    pub fn prior_logit(&self) -> f64 {
        self.prior_logit
    }

    /// Scatter every vote into per-example logits, invoking `on_vote`
    /// with each touched example id — the single pass both
    /// [`FittedLabelModel::predict`] (no-op observer) and the fused
    /// [`FittedLabelModel::predict_with_coverage`] (coverage marking)
    /// share, so their posteriors are bitwise-identical by construction.
    fn scatter_logits(&self, matrix: &LabelMatrix, mut on_vote: impl FnMut(u32)) -> Vec<f64> {
        assert_eq!(
            matrix.n_lfs(),
            self.accuracies.len(),
            "label matrix has {} LFs; model was fitted on {}",
            matrix.n_lfs(),
            self.accuracies.len()
        );
        let mut logits = vec![self.prior_logit; matrix.n_examples()];
        for (j, col) in matrix.columns().enumerate() {
            let w = self.log_odds[j];
            for &(i, v) in col.entries() {
                logits[i as usize] += v as f64 * w;
                on_vote(i);
            }
        }
        logits
    }
}

impl FittedLabelModel for NaiveBayesFit {
    fn lf_accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    fn predict(&self, matrix: &LabelMatrix) -> Posterior {
        let logits = self.scatter_logits(matrix, |_| {});
        Posterior::new(logits.into_iter().map(sigmoid).collect())
    }

    /// Fused variant: coverage is marked while the votes are scattered,
    /// replacing the default implementation's second matrix pass.
    fn predict_with_coverage(&self, matrix: &LabelMatrix) -> (Posterior, Vec<u32>) {
        let mut voted = vec![false; matrix.n_examples()];
        let logits = self.scatter_logits(matrix, |i| voted[i as usize] = true);
        let posterior = Posterior::new(logits.into_iter().map(sigmoid).collect());
        let covered =
            voted.iter().enumerate().filter(|&(_, &v)| v).map(|(i, _)| i as u32).collect();
        (posterior, covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_lf::{Label, LfColumn, PrimitiveCorpus, PrimitiveLf};

    fn matrix() -> LabelMatrix {
        // 4 examples; LF0 (+1) covers {0,1}; LF1 (−1) covers {1,2}.
        let corpus = PrimitiveCorpus::new(vec![vec![0], vec![0, 1], vec![1], vec![]], 2);
        LabelMatrix::from_lfs(
            &[PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)],
            &corpus,
        )
    }

    #[test]
    fn uncovered_examples_get_prior() {
        let fit = NaiveBayesFit::new(vec![0.8, 0.8], [0.3, 0.7]);
        let post = fit.predict(&matrix());
        assert!((post.p_pos(3) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn votes_shift_posterior() {
        let fit = NaiveBayesFit::new(vec![0.8, 0.8], [0.5, 0.5]);
        let post = fit.predict(&matrix());
        assert!(post.p_pos(0) > 0.5); // only +1 vote
        assert!(post.p_pos(2) < 0.5); // only −1 vote
                                      // Example 1 has equal-accuracy conflicting votes → prior.
        assert!((post.p_pos(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_accuracy_wins_conflicts() {
        let fit = NaiveBayesFit::new(vec![0.9, 0.6], [0.5, 0.5]);
        let post = fit.predict(&matrix());
        // LF0 (+1, acc 0.9) beats LF1 (−1, acc 0.6) on example 1.
        assert!(post.p_pos(1) > 0.5);
    }

    #[test]
    fn accuracy_clamping() {
        let fit = NaiveBayesFit::new(vec![0.0, 1.0], [0.5, 0.5]);
        assert_eq!(fit.lf_accuracies(), &[0.05, 0.95]);
    }

    #[test]
    #[should_panic(expected = "fitted on")]
    fn predict_rejects_wrong_width() {
        let fit = NaiveBayesFit::new(vec![0.8], [0.5, 0.5]);
        fit.predict(&matrix());
    }

    #[test]
    fn posterior_matches_manual_naive_bayes() {
        let fit = NaiveBayesFit::new(vec![0.8, 0.7], [0.5, 0.5]);
        let post = fit.predict(&matrix());
        // Example 0: logit = log(0.8/0.2) = 1.3862…
        let expect = sigmoid((0.8f64 / 0.2).ln());
        assert!((post.p_pos(0) - expect).abs() < 1e-9);
        // Example 1: +log(4) − log(0.7/0.3)
        let expect1 = sigmoid((0.8f64 / 0.2).ln() - (0.7f64 / 0.3).ln());
        assert!((post.p_pos(1) - expect1).abs() < 1e-9);
    }

    #[test]
    fn fused_coverage_matches_separate_passes() {
        let m = matrix();
        let fit = NaiveBayesFit::new(vec![0.8, 0.7], [0.4, 0.6]);
        let (post, covered) = fit.predict_with_coverage(&m);
        // Same single scatter pass ⇒ bitwise-equal posteriors.
        let separate = fit.predict(&m);
        for i in 0..m.n_examples() {
            assert_eq!(post.p_pos(i).to_bits(), separate.p_pos(i).to_bits());
        }
        // Coverage identical to the unfused two-pass derivation;
        // example 3 is uncovered.
        assert_eq!(covered, m.covered_examples());
        assert_eq!(covered, vec![0, 1, 2]);

        let empty = LabelMatrix::new(2);
        let none = NaiveBayesFit::new(vec![], [0.5, 0.5]);
        let (p, c) = none.predict_with_coverage(&empty);
        assert_eq!(p.len(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_matrix_predict() {
        let fit = NaiveBayesFit::new(vec![], [0.4, 0.6]);
        let m = LabelMatrix::new(3);
        let post = fit.predict(&m);
        assert_eq!(post.len(), 3);
        assert!((post.p_pos(0) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn mixed_vote_column_supported() {
        // A column with heterogeneous votes (the Active WeaSuL expert LF).
        let mut m = LabelMatrix::new(3);
        m.push(LfColumn::new(vec![(0, 1), (1, -1)]));
        let fit = NaiveBayesFit::new(vec![0.9], [0.5, 0.5]);
        let post = fit.predict(&m);
        assert!(post.p_pos(0) > 0.8);
        assert!(post.p_pos(1) < 0.2);
        assert!((post.p_pos(2) - 0.5).abs() < 1e-9);
    }
}

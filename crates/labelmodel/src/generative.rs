//! Generative label model fit by expectation-maximization.
//!
//! The model class is the binary specialization of MeTaL \[30\] (and of the
//! original data-programming generative model \[29\]): conditionally on the
//! true label `y`, LFs vote independently; LF `j` has accuracy
//! `a_j = P(λ_j(x) = y | λ_j(x) ≠ 0)` and a label-independent abstain
//! propensity (which cancels in the posterior and therefore needs no
//! parameter). The class balance is taken from the supplied prior (the
//! paper estimates it from the validation split).
//!
//! EM alternates the textbook Dawid–Skene steps:
//! - **E-step**: posteriors `q_i(y) ∝ Π_{j: L_ij≠0} a_j^{1[L_ij=y]}
//!   (1−a_j)^{1[L_ij≠y]}` — the naive-Bayes aggregation.
//! - **M-step**: `a_j ← (Σ_{i∈cov(j)} q_i(L_ij) + s·a₀) / (|cov(j)| + s)`
//!   with pseudo-count anchoring toward the init accuracy `a₀`.
//!
//! Two deliberate deviations from the naive transcription, both load-
//! bearing (see `self_feedback_regression` below for the failure they
//! prevent):
//!
//! 1. **The E-step inside EM uses a symmetric class prior**; the true
//!    class prior enters only the *final* aggregation. On an example
//!    covered by a single LF, the self-consistent posterior equals the
//!    LF's own accuracy estimate — with an asymmetric prior folded in, a
//!    constant bias term accumulates across EM iterations and drifts the
//!    estimate monotonically until the LF's votes silently *flip*.
//!    Accuracy is a prior-free quantity; estimating it under a symmetric
//!    prior removes the drift while leaving the genuine agreement signal
//!    intact.
//! 2. **Anchored smoothing**: the M-step shrinks toward `a₀` (not toward
//!    0.5), so LFs with little or no overlap evidence keep a sensible
//!    better-than-random weight — the role of MeTaL's regularizer.

use crate::traits::{FittedLabelModel, LabelModel, NaiveBayesFit};
use nemo_lf::LabelMatrix;
use nemo_sparse::stats::sigmoid;

/// EM-fitted generative label model (the reproduction's "MeTaL").
#[derive(Debug, Clone)]
pub struct GenerativeModel {
    /// Iteration cap. Sized so EM normally stops on `tol` (the session
    /// matrices converge in ~60 iterations), not on the cap: warm starts
    /// resume from the previous *fixed point*, and a cap-truncated fit
    /// would make warm and cold runs converge to measurably different
    /// parameters instead of agreeing within `tol`.
    pub n_iters: usize,
    /// Accuracy initialization and anchor (the value LFs keep when they
    /// have no cross-LF overlap evidence).
    pub init_accuracy: f64,
    /// Pseudo-count strength of the anchor in the M-step. Plays the role
    /// of MeTaL's regularization toward the prior accuracy: with few LFs
    /// the pairwise-overlap evidence is a handful of noisy entries, and an
    /// unanchored M-step collapses all accuracies toward 0.5; the anchor
    /// keeps estimates near `init_accuracy` until genuine agreement
    /// evidence accumulates (overlap counts ≫ `smoothing`).
    pub smoothing: f64,
    /// Early-stop threshold on the max accuracy change per iteration.
    /// Tight enough that a warm-started fit lands within ~1e-9 of the
    /// cold fixed point — far below any score gap selection could turn
    /// on — at the cost of a few dozen extra cold iterations.
    pub tol: f64,
    /// Aitken Δ² acceleration: every third EM step, extrapolate each
    /// accuracy along its geometric tail (`a* = a₂ − Δ₂²/(Δ₂ − Δ₁)`,
    /// safeguarded by a step cap and the admissible-accuracy clamp).
    /// EM's per-coordinate convergence here is linear with a rate near 1
    /// on weakly-covered matrices, so the tail dominates the iteration
    /// count; extrapolating it roughly halves the iterations to the
    /// *same* fixed point (plain and accelerated fits agree within `tol`
    /// — differential-tested). `false` restores the plain
    /// fixed-point iteration, the pre-acceleration reference.
    pub accel: bool,
}

impl Default for GenerativeModel {
    fn default() -> Self {
        Self { n_iters: 400, init_accuracy: 0.7, smoothing: 12.0, tol: 1e-10, accel: true }
    }
}

impl GenerativeModel {
    /// Run EM to convergence, optionally seeded from previously fitted
    /// accuracies, returning the fitted aggregator and the number of EM
    /// iterations actually performed (the early-stop makes this the
    /// quantity warm-starting saves).
    ///
    /// `warm_acc[j]` seeds LF `j`; LFs beyond `warm_acc.len()` start at
    /// [`GenerativeModel::init_accuracy`] (exactly right when a matrix
    /// gained LFs since the seed was fitted), and extra seed entries are
    /// ignored. A seed at EM's fixed point converges in one iteration;
    /// any seed reaches the same fixed point as a cold start within the
    /// early-stop tolerance `tol` — tolerance-level, not bitwise,
    /// equality (differential-tested in
    /// `tests/incremental_differential.rs`).
    pub fn fit_em(
        &self,
        matrix: &LabelMatrix,
        prior: [f64; 2],
        warm_acc: Option<&[f64]>,
    ) -> (NaiveBayesFit, usize) {
        let m = matrix.n_lfs();
        let mut acc = vec![self.init_accuracy; m];
        if let Some(seed) = warm_acc {
            for (a, &s) in acc.iter_mut().zip(seed) {
                *a = s;
            }
        }
        if m == 0 {
            return (NaiveBayesFit::new(acc, prior), 0);
        }
        let (clamp_lo, clamp_hi) = NaiveBayesFit::ACC_CLAMP;
        let mut iters = 0;
        // Last two plain-EM iterates, for the Aitken Δ² cycle.
        let mut history: Vec<Vec<f64>> = Vec::new();
        for _ in 0..self.n_iters {
            iters += 1;
            // E-step under a *symmetric* prior (see module docs, point 1).
            let log_odds: Vec<f64> = acc
                .iter()
                .map(|&a| {
                    let a = a.clamp(clamp_lo, clamp_hi);
                    (a / (1.0 - a)).ln()
                })
                .collect();
            let mut logits = vec![0.0f64; matrix.n_examples()];
            for (j, col) in matrix.columns().enumerate() {
                for &(i, v) in col.entries() {
                    logits[i as usize] += v as f64 * log_odds[j];
                }
            }
            // M-step: expected correctness over the coverage, anchored at
            // the init accuracy.
            let mut max_delta = 0.0f64;
            for (j, col) in matrix.columns().enumerate() {
                let mut expected_correct = 0.0;
                for &(i, v) in col.entries() {
                    let p_pos = sigmoid(logits[i as usize]);
                    expected_correct += if v > 0 { p_pos } else { 1.0 - p_pos };
                }
                let n_cov = col.coverage() as f64;
                let new_acc = (expected_correct + self.smoothing * self.init_accuracy)
                    / (n_cov + self.smoothing);
                max_delta = max_delta.max((new_acc - acc[j]).abs());
                acc[j] = new_acc;
            }
            if max_delta < self.tol {
                break;
            }
            if self.accel {
                // Aitken Δ²: with iterates a₀ → a₁ → a₂ on a linearly
                // convergent tail, `a₂ − Δ₂²/(Δ₂ − Δ₁)` jumps to the
                // tail's limit. Safeguards: skip degenerate denominators,
                // cap the extrapolation at 10× the last step (a wild jump
                // means the tail isn't geometric yet), and clamp into the
                // admissible accuracy range. Convergence is still judged
                // on the plain-step delta above, so a bad extrapolation
                // can slow the fit but never terminate it early.
                history.push(acc.clone());
                if history.len() == 3 {
                    for j in 0..m {
                        let d1 = history[1][j] - history[0][j];
                        let d2 = history[2][j] - history[1][j];
                        let denom = d2 - d1;
                        if denom.abs() > 1e-14 {
                            let step = -d2 * d2 / denom;
                            if step.abs() <= 10.0 * d2.abs() {
                                acc[j] = (history[2][j] + step).clamp(clamp_lo, clamp_hi);
                            }
                        }
                    }
                    history.clear();
                }
            }
        }
        // The true class prior enters only the final aggregation.
        (NaiveBayesFit::new(acc, prior), iters)
    }
}

impl LabelModel for GenerativeModel {
    fn name(&self) -> &'static str {
        "generative-em"
    }

    fn fit(&self, matrix: &LabelMatrix, prior: [f64; 2]) -> Box<dyn FittedLabelModel> {
        Box::new(self.fit_em(matrix, prior, None).0)
    }

    fn fit_from(
        &self,
        matrix: &LabelMatrix,
        prior: [f64; 2],
        warm_acc: Option<&[f64]>,
    ) -> Box<dyn FittedLabelModel> {
        Box::new(self.fit_em(matrix, prior, warm_acc).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_lf::{Label, LfColumn};
    use nemo_sparse::DetRng;

    /// Plant a label matrix: `n` examples with random labels; each LF has a
    /// target accuracy and coverage rate. Returns (matrix, true labels,
    /// planted accuracies).
    fn planted(
        n: usize,
        specs: &[(f64, f64)], // (accuracy, coverage)
        seed: u64,
    ) -> (LabelMatrix, Vec<Label>, Vec<f64>) {
        let mut rng = DetRng::new(seed);
        let labels: Vec<Label> = (0..n).map(|_| Label::from_bool(rng.bernoulli(0.5))).collect();
        let mut matrix = LabelMatrix::new(n);
        for &(acc, cov) in specs {
            let mut entries = Vec::new();
            for (i, &y) in labels.iter().enumerate() {
                if rng.bernoulli(cov) {
                    let vote = if rng.bernoulli(acc) { y.sign() } else { y.flip().sign() };
                    entries.push((i as u32, vote));
                }
            }
            matrix.push(LfColumn::new(entries));
        }
        (matrix, labels, specs.iter().map(|&(a, _)| a).collect())
    }

    #[test]
    fn recovers_planted_accuracies() {
        let (matrix, _, truth) =
            planted(4000, &[(0.9, 0.3), (0.7, 0.3), (0.55, 0.3), (0.85, 0.2)], 1);
        let fitted = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        for (est, want) in fitted.lf_accuracies().iter().zip(&truth) {
            assert!((est - want).abs() < 0.06, "estimated {est:.3} for planted {want:.3}");
        }
    }

    #[test]
    fn aggregation_beats_average_lf_on_covered() {
        let (matrix, labels, _) = planted(3000, &[(0.8, 0.5), (0.75, 0.5), (0.7, 0.5)], 2);
        let fitted = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        let post = fitted.predict(&matrix);
        let pred = post.hard_labels();
        let summaries = matrix.vote_summaries();
        let (mut correct, mut covered) = (0usize, 0usize);
        for i in 0..labels.len() {
            if summaries[i].total() > 0 {
                covered += 1;
                if pred[i] == labels[i] {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / covered as f64;
        // Mean LF accuracy is 0.75; aggregation should beat it on the
        // covered region (multiply-covered examples get denoised).
        assert!(acc > 0.76, "covered aggregated accuracy {acc}");
    }

    #[test]
    fn em_orders_lfs_by_quality() {
        // Accuracy ordering is identifiable from three mutually
        // overlapping LFs (it is not from two — pairwise agreement is
        // symmetric, exactly FlyingSquid's triplet-identifiability fact).
        let (matrix, _, _) = planted(5000, &[(0.9, 0.4), (0.6, 0.4), (0.8, 0.4)], 3);
        let fitted = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        let accs = fitted.lf_accuracies();
        assert!(accs[0] > accs[2] && accs[2] > accs[1], "accs {accs:?}");
    }

    #[test]
    fn empty_matrix_returns_prior_model() {
        let matrix = LabelMatrix::new(10);
        let fitted = GenerativeModel::default().fit(&matrix, [0.3, 0.7]);
        let post = fitted.predict(&matrix);
        assert!((post.p_pos(0) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn single_lf_keeps_anchor_accuracy() {
        // With one LF there is no cross-LF evidence at all; the estimate
        // must stay exactly at the anchor rather than drift.
        let (matrix, _, _) = planted(1000, &[(0.9, 0.5)], 4);
        let model = GenerativeModel::default();
        let fitted = model.fit(&matrix, [0.5, 0.5]);
        let a = fitted.lf_accuracies()[0];
        assert!((a - model.init_accuracy).abs() < 1e-9, "single-LF accuracy {a}");
    }

    #[test]
    fn self_feedback_regression() {
        // Regression test for the drift pathology: two (nearly) disjoint
        // LFs, one per class, under an asymmetric class prior. A naive
        // M-step that feeds an LF's own vote into its accuracy estimate
        // drifts the positive LF's accuracy below 0.5, silently flipping
        // its votes. The leave-one-out M-step keeps both anchored.
        let mut rng = DetRng::new(99);
        let labels: Vec<Label> = (0..800).map(|_| Label::from_bool(rng.bernoulli(0.49))).collect();
        let mut matrix = LabelMatrix::new(800);
        let mut pos_entries = Vec::new();
        let mut neg_entries = Vec::new();
        for (i, &y) in labels.iter().enumerate() {
            // Disjoint coverage: evens → LF0 (votes Pos), odds → LF1 (Neg).
            if i % 2 == 0 && rng.bernoulli(0.2) {
                let v = if rng.bernoulli(0.85) { y.sign() } else { y.flip().sign() };
                if v != 0 {
                    pos_entries.push((i as u32, v));
                }
            } else if i % 2 == 1 && rng.bernoulli(0.2) {
                let v = if rng.bernoulli(0.85) { y.sign() } else { y.flip().sign() };
                neg_entries.push((i as u32, v));
            }
        }
        matrix.push(LfColumn::new(pos_entries));
        matrix.push(LfColumn::new(neg_entries));
        let fitted = GenerativeModel::default().fit(&matrix, [0.513, 0.487]);
        for &a in fitted.lf_accuracies() {
            assert!(a > 0.5, "disjoint LF drifted to {a} (vote-flip pathology)");
        }
    }

    #[test]
    fn warm_start_from_fixed_point_converges_immediately() {
        // Uncap the iteration budget so the cold fit genuinely reaches
        // its fixed point (the default cap of 50 can stop short, in which
        // case a "warm" restart simply resumes the climb).
        let (matrix, _, _) = planted(3000, &[(0.85, 0.4), (0.7, 0.4), (0.6, 0.3)], 7);
        let model = GenerativeModel { n_iters: 5000, ..Default::default() };
        let (cold, cold_iters) = model.fit_em(&matrix, [0.5, 0.5], None);
        assert!(cold_iters < 5000, "cold fit never converged");
        let (warm, warm_iters) = model.fit_em(&matrix, [0.5, 0.5], Some(cold.lf_accuracies()));
        assert!(warm_iters <= 3, "re-fit from the fixed point took {warm_iters} EM iterations");
        assert!(warm_iters < cold_iters, "warm {warm_iters} vs cold {cold_iters}");
        for (w, c) in warm.lf_accuracies().iter().zip(cold.lf_accuracies()) {
            assert!((w - c).abs() < 1e-4, "warm {w} vs cold {c}");
        }
    }

    #[test]
    fn warm_seed_shorter_than_matrix_pads_with_init() {
        // Seeding with fewer accuracies than LFs (a matrix that gained an
        // LF since the seed was fitted) must not panic and must fit all
        // LFs; a seed longer than the matrix is truncated.
        let (matrix, _, _) = planted(1500, &[(0.85, 0.4), (0.7, 0.4), (0.6, 0.3)], 8);
        let model = GenerativeModel::default();
        for seed_len in [0usize, 1, 2, 5] {
            let seed = vec![0.8; seed_len];
            let (fit, _) = model.fit_em(&matrix, [0.5, 0.5], Some(&seed));
            assert_eq!(fit.lf_accuracies().len(), 3);
        }
    }

    #[test]
    fn accelerated_and_plain_em_share_the_fixed_point() {
        let (matrix, _, _) = planted(2500, &[(0.85, 0.4), (0.7, 0.3), (0.6, 0.3)], 11);
        let accel = GenerativeModel::default();
        let plain = GenerativeModel { accel: false, n_iters: 5000, ..Default::default() };
        let (fa, ia) = accel.fit_em(&matrix, [0.5, 0.5], None);
        let (fp, ip) = plain.fit_em(&matrix, [0.5, 0.5], None);
        assert!(ia < ip, "acceleration did not reduce iterations ({ia} vs {ip})");
        for (a, p) in fa.lf_accuracies().iter().zip(fp.lf_accuracies()) {
            assert!((a - p).abs() < 1e-6, "accelerated {a} vs plain {p}");
        }
    }

    #[test]
    fn fit_from_matches_fit_without_seed() {
        let (matrix, _, _) = planted(2000, &[(0.8, 0.3), (0.7, 0.3)], 9);
        let model = GenerativeModel::default();
        let plain = model.fit(&matrix, [0.5, 0.5]);
        let seeded_none = model.fit_from(&matrix, [0.5, 0.5], None);
        assert_eq!(plain.lf_accuracies(), seeded_none.lf_accuracies());
    }

    #[test]
    fn deterministic_fit() {
        let (matrix, _, _) = planted(2000, &[(0.8, 0.3), (0.7, 0.3)], 5);
        let f1 = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        let f2 = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        assert_eq!(f1.lf_accuracies(), f2.lf_accuracies());
    }

    #[test]
    fn adversarial_lf_downweighted() {
        // An LF with accuracy ~0.2 (systematically wrong) should end up
        // with estimated accuracy < 0.5 so its votes get *flipped* by the
        // aggregation — the denoising the generative model exists for.
        let (matrix, labels, _) = planted(4000, &[(0.85, 0.4), (0.8, 0.4), (0.2, 0.4)], 6);
        let fitted = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        assert!(fitted.lf_accuracies()[2] < 0.5);
        // With the adversarial LF's votes flipped by the learned weight,
        // covered-region accuracy should stay high.
        let post = fitted.predict(&matrix);
        let pred = post.hard_labels();
        let summaries = matrix.vote_summaries();
        let (mut correct, mut covered) = (0usize, 0usize);
        for i in 0..labels.len() {
            if summaries[i].total() > 0 {
                covered += 1;
                if pred[i] == labels[i] {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / covered as f64;
        assert!(acc > 0.75, "covered accuracy with adversarial LF {acc}");
    }
}

//! Triplet (method-of-moments) label model — FlyingSquid \[11\].
//!
//! Under the conditionally-independent binary model with symmetric
//! accuracies and balanced classes, the pairwise agreement moment between
//! two LFs on their jointly-covered examples factorizes:
//!
//! ```text
//! M_jk := E[λ_j λ_k | λ_j ≠ 0, λ_k ≠ 0] = (2a_j − 1)(2a_k − 1)
//! ```
//!
//! so any *triplet* `(j, k, l)` identifies LF `j`'s accuracy in closed form:
//!
//! ```text
//! |2a_j − 1| = sqrt(|M_jk · M_jl / M_kl|)
//! ```
//!
//! with the sign fixed by the better-than-random assumption `a_j > 0.5`.
//! The estimator averages over all informative triplets and falls back to a
//! default accuracy for LFs without enough overlap signal. Aggregation then
//! uses the shared naive-Bayes rule.

use crate::traits::{FittedLabelModel, LabelModel, NaiveBayesFit};
use nemo_lf::LabelMatrix;

/// Closed-form triplet label model.
#[derive(Debug, Clone)]
pub struct TripletModel {
    /// Minimum jointly-covered examples for a pair moment to be used.
    pub min_overlap: usize,
    /// Minimum |moment| in the denominator (avoids blow-up).
    pub min_moment: f64,
    /// Accuracy assigned when no informative triplet exists for an LF,
    /// and the shrinkage target for weakly-supported estimates.
    pub fallback_accuracy: f64,
    /// Pseudo-count strength of shrinkage toward `fallback_accuracy`.
    /// Triplet estimates are weighted by their minimum pairwise overlap
    /// (the moment's effective sample size), so estimates from a handful
    /// of co-covered examples barely move the anchor while estimates from
    /// hundreds dominate it — the role regularization plays in MeTaL's
    /// matrix-completion step.
    pub shrinkage: f64,
}

impl Default for TripletModel {
    fn default() -> Self {
        Self { min_overlap: 5, min_moment: 0.05, fallback_accuracy: 0.82, shrinkage: 10.0 }
    }
}

impl TripletModel {
    /// Pairwise agreement moments and overlap counts.
    fn pair_moments(matrix: &LabelMatrix) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
        let m = matrix.n_lfs();
        let mut moments = vec![vec![0.0; m]; m];
        let mut overlaps = vec![vec![0usize; m]; m];
        for j in 0..m {
            for k in (j + 1)..m {
                let (mut agree, mut total) = (0i64, 0i64);
                let (a, b) = (matrix.column(j).entries(), matrix.column(k).entries());
                let (mut p, mut q) = (0usize, 0usize);
                while p < a.len() && q < b.len() {
                    match a[p].0.cmp(&b[q].0) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            total += 1;
                            agree += (a[p].1 as i64) * (b[q].1 as i64);
                            p += 1;
                            q += 1;
                        }
                    }
                }
                let moment = if total > 0 { agree as f64 / total as f64 } else { 0.0 };
                moments[j][k] = moment;
                moments[k][j] = moment;
                overlaps[j][k] = total as usize;
                overlaps[k][j] = total as usize;
            }
        }
        (moments, overlaps)
    }
}

impl LabelModel for TripletModel {
    fn name(&self) -> &'static str {
        "triplet"
    }

    fn fit(&self, matrix: &LabelMatrix, prior: [f64; 2]) -> Box<dyn FittedLabelModel> {
        let m = matrix.n_lfs();
        if m < 3 {
            return Box::new(NaiveBayesFit::new(vec![self.fallback_accuracy; m], prior));
        }
        let (moments, overlaps) = Self::pair_moments(matrix);
        let mut accuracies = Vec::with_capacity(m);
        for j in 0..m {
            // Overlap-weighted average of triplet estimates, shrunk toward
            // the anchor by a pseudo-count.
            let mut weighted_sum = self.shrinkage * self.fallback_accuracy;
            let mut total_weight = self.shrinkage;
            for k in 0..m {
                if k == j || overlaps[j][k] < self.min_overlap {
                    continue;
                }
                for l in (k + 1)..m {
                    if l == j
                        || overlaps[j][l] < self.min_overlap
                        || overlaps[k][l] < self.min_overlap
                        || moments[k][l].abs() < self.min_moment
                    {
                        continue;
                    }
                    let sq = (moments[j][k] * moments[j][l] / moments[k][l]).abs();
                    let centered = sq.sqrt().min(1.0);
                    let estimate = 0.5 + centered / 2.0;
                    let w = overlaps[j][k].min(overlaps[j][l]).min(overlaps[k][l]) as f64;
                    weighted_sum += w * estimate;
                    total_weight += w;
                }
            }
            accuracies.push(weighted_sum / total_weight);
        }
        Box::new(NaiveBayesFit::new(accuracies, prior))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_lf::{Label, LfColumn};
    use nemo_sparse::DetRng;

    fn planted(n: usize, specs: &[(f64, f64)], seed: u64) -> (LabelMatrix, Vec<Label>) {
        let mut rng = DetRng::new(seed);
        let labels: Vec<Label> = (0..n).map(|_| Label::from_bool(rng.bernoulli(0.5))).collect();
        let mut matrix = LabelMatrix::new(n);
        for &(acc, cov) in specs {
            let mut entries = Vec::new();
            for (i, &y) in labels.iter().enumerate() {
                if rng.bernoulli(cov) {
                    let vote = if rng.bernoulli(acc) { y.sign() } else { y.flip().sign() };
                    entries.push((i as u32, vote));
                }
            }
            matrix.push(LfColumn::new(entries));
        }
        (matrix, labels)
    }

    #[test]
    fn recovers_planted_accuracies() {
        let specs = [(0.9, 0.5), (0.75, 0.5), (0.6, 0.5), (0.85, 0.5)];
        let (matrix, _) = planted(20_000, &specs, 1);
        let fitted = TripletModel::default().fit(&matrix, [0.5, 0.5]);
        for (est, &(want, _)) in fitted.lf_accuracies().iter().zip(&specs) {
            assert!((est - want).abs() < 0.05, "estimated {est:.3} vs planted {want:.3}");
        }
    }

    #[test]
    fn agrees_with_em_on_planted_data() {
        use crate::generative::GenerativeModel;
        let specs = [(0.85, 0.4), (0.7, 0.4), (0.8, 0.4)];
        let (matrix, _) = planted(10_000, &specs, 2);
        let t = TripletModel::default().fit(&matrix, [0.5, 0.5]);
        let g = GenerativeModel::default().fit(&matrix, [0.5, 0.5]);
        for (a, b) in t.lf_accuracies().iter().zip(g.lf_accuracies()) {
            assert!((a - b).abs() < 0.08, "triplet {a:.3} vs em {b:.3}");
        }
    }

    #[test]
    fn fallback_for_fewer_than_three_lfs() {
        let (matrix, _) = planted(500, &[(0.9, 0.5), (0.6, 0.5)], 3);
        let model = TripletModel::default();
        let fitted = model.fit(&matrix, [0.5, 0.5]);
        assert!(fitted
            .lf_accuracies()
            .iter()
            .all(|&a| (a - model.fallback_accuracy).abs() < 1e-12));
    }

    #[test]
    fn fallback_for_disjoint_coverage() {
        // Three LFs with disjoint coverage: no overlap moments.
        let mut matrix = LabelMatrix::new(30);
        matrix.push(LfColumn::new((0..10).map(|i| (i, 1)).collect()));
        matrix.push(LfColumn::new((10..20).map(|i| (i, 1)).collect()));
        matrix.push(LfColumn::new((20..30).map(|i| (i, -1)).collect()));
        let model = TripletModel::default();
        let fitted = model.fit(&matrix, [0.5, 0.5]);
        assert!(fitted
            .lf_accuracies()
            .iter()
            .all(|&a| (a - model.fallback_accuracy).abs() < 1e-12));
    }

    #[test]
    fn aggregation_denoises() {
        let specs = [(0.85, 0.6), (0.75, 0.6), (0.7, 0.6), (0.65, 0.6)];
        let (matrix, labels) = planted(5_000, &specs, 4);
        let fitted = TripletModel::default().fit(&matrix, [0.5, 0.5]);
        let post = fitted.predict(&matrix);
        let pred = post.hard_labels();
        let summaries = matrix.vote_summaries();
        let (mut correct, mut covered) = (0usize, 0usize);
        for i in 0..labels.len() {
            if summaries[i].total() > 0 {
                covered += 1;
                if pred[i] == labels[i] {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / covered as f64;
        // Mean LF accuracy is ~0.74; aggregation must beat it on covered.
        assert!(acc > 0.78, "covered aggregated accuracy {acc}");
    }
}

//! Comment/string-aware classification of Rust source.
//!
//! The rule engine must not fire on `HashMap` inside a string literal or
//! an `.unwrap()` mentioned in a doc comment, and must skip
//! `#[cfg(test)]` items entirely (the doctrine only constrains
//! production code). This module splits a source file into per-line
//! *code text* (literal contents and comments blanked out) and *comment
//! text* (the bodies of `//`/`/* */` comments, which is where the
//! `// invariant:` and `// lint: allow(...)` justifications live), and
//! marks the line ranges covered by `#[cfg(test)]` items.
//!
//! This is a token-level scanner, not a parser: it tracks exactly the
//! lexical state needed to tell code from non-code — line and (nested)
//! block comments, string/raw-string/byte-string literals, char literals
//! versus lifetimes — and nothing more.

/// One classified source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code, with comments and the contents of string/char
    /// literals replaced by spaces (delimiters kept, so token boundaries
    /// survive).
    pub code: String,
    /// The concatenated bodies of comments on this line.
    pub comment: String,
    /// Whether the line lies inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comments; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw (byte) string; the payload is the number of `#` delimiters.
    RawStr(u32),
    CharLit,
}

/// Classify `source` into per-line code/comment text and test regions.
pub fn classify(source: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let n = chars.len();
    // The last code character emitted, used to tell a raw-string prefix
    // (`r"`, `br#"`) from an identifier that merely ends in `r`/`b`.
    let mut prev_code: char = ' ';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let c2 = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && c2 == '/' {
                    state = State::LineComment;
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '/' && c2 == '*' {
                    state = State::BlockComment(1);
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    // A `"` in code opens a string; raw strings are
                    // recognized below at their `r`/`b` prefix.
                    state = State::Str;
                    cur.code.push('"');
                    prev_code = '"';
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident(prev_code) {
                    // Possible raw-string / byte-string / byte-char
                    // prefix: r", r#", br", b", b'.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let has_r = c == 'r' || chars.get(i + 1) == Some(&'r');
                    if has_r && chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            cur.code.push(' ');
                        }
                        cur.code.pop();
                        cur.code.push('"');
                        state = State::RawStr(hashes);
                        prev_code = '"';
                        i = j + 1;
                    } else if c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'"') {
                        cur.code.push_str(" \"");
                        state = State::Str;
                        prev_code = '"';
                        i += 2;
                    } else if c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'\'') {
                        cur.code.push_str(" '");
                        state = State::CharLit;
                        prev_code = '\'';
                        i += 2;
                    } else {
                        cur.code.push(c);
                        prev_code = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime. A char literal is either
                    // an escape (`'\n'`, `'\u{1F600}'`) or exactly one
                    // character followed by a closing quote.
                    let next = chars.get(i + 1).copied();
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    cur.code.push('\'');
                    prev_code = '\'';
                    i += 1;
                    if is_char {
                        state = State::CharLit;
                    }
                } else {
                    cur.code.push(c);
                    prev_code = c;
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let c2 = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '*' && c2 == '/' {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && c2 == '*' {
                    state = State::BlockComment(depth + 1);
                    cur.comment.push(' ');
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    prev_code = '"';
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push(' ');
                        }
                        prev_code = '"';
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        cur.code.push(' ');
                        i += 1;
                    }
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    prev_code = '\'';
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

/// Whether `c` can appear in an identifier.
pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `word` occurs in `code` as a standalone identifier (not as a
/// substring of a longer identifier).
pub fn has_ident(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1] as char);
        let after_ok = end >= code.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Mark the line ranges covered by `#[cfg(test)]` items. After the
/// attribute, everything up to the end of the next item — the matching
/// close of its first `{`, or a `;` for a braceless item — is test code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].in_test && lines[i].code.contains("#[cfg(test)") {
            lines[i].in_test = true;
            let mut depth = 0usize;
            let mut opened = false;
            'outer: for line in lines.iter_mut().skip(i) {
                line.in_test = true;
                for c in line.code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        ';' if !opened => break 'outer,
                        _ => {}
                    }
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = classify("let x = \"HashMap\"; // uses unwrap()\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = classify("let s = r#\"Mutex \"quoted\" Instant\"#; let t = Mutex;\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(has_ident(&lines[0].code, "Mutex"), "code after the raw string survives");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = classify("fn f<'a>(x: &'a str) -> char { 'x' }\nlet y = '\\n';\n");
        assert!(lines[0].code.contains("'a"), "lifetimes stay in code");
        assert!(!lines[0].code.contains('x') || lines[0].code.contains("x:"), "char blanked");
        assert!(lines[1].code.contains("''") || lines[1].code.contains("'  '"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = classify("/* outer /* inner */ still comment */ let a = 1;\n");
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(!lines[0].code.contains("outer"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let lines = classify(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn ident_boundaries() {
        assert!(has_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident("let MyHashMap = 1;", "HashMap"));
        assert!(!has_ident("hash_map()", "HashMap"));
    }
}

#![warn(missing_docs)]
//! Workspace static analysis for the nemo doctrine.
//!
//! Every speedup in this workspace rests on one promise: fast paths are
//! bit-identical to their reference paths under any thread count,
//! eviction order, or checkpoint churn. The differential tests and
//! bench gates enforce that promise dynamically; `nemo-lint` enforces
//! the *conventions* that keep it enforceable statically:
//!
//! - **determinism/**: no `HashMap`/`HashSet`, wall-clock reads, or
//!   ambient randomness in result-affecting crates; synchronization
//!   confined to the scheduler modules.
//! - **panic/**: `unwrap`/`expect`/`panic!`/unchecked indexing in
//!   production code requires an adjacent `// invariant:` comment or a
//!   `// lint: allow(<rule>): <reason>` annotation.
//! - **doctrine/**: every config switch has a differential test, every
//!   recorded bench section has a gated kernel, every published crate
//!   warns on missing docs, and `Cargo.lock` stays hermetic.
//!
//! Run as `cargo run -p nemo-lint -- --deny`, or call
//! [`check_workspace`] / [`rules::check_source`] from tests.

pub mod doctrine;
pub mod rules;
pub mod scan;

pub use rules::{Finding, RuleId, ALL_RULES, JUSTIFICATION_WINDOW};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect the production `.rs` sources under `root` that the
/// file-scoped rules apply to: `crates/*/src/**/*.rs` plus the facade
/// `src/**/*.rs`. Paths are returned workspace-relative with forward
/// slashes, sorted, so findings are reproducible across platforms.
pub fn production_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut out)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let rel = path
                .strip_prefix(root)
                // invariant: every collected path is built by joining root.
                .expect("collected path is under root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Run every rule — file-scoped and structural — over the workspace at
/// `root`. Findings are sorted by (file, line, rule) for stable output.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in production_sources(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        findings.extend(rules::check_source(&rel, &source));
    }
    findings.extend(doctrine::check(root)?);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Walk upward from `start` to the workspace root: the first ancestor
/// holding both `Cargo.lock` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

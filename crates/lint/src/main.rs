//! `nemo-lint` CLI: run the doctrine gates over the workspace.
//!
//! Usage: `cargo run -p nemo-lint -- [--deny] [--root <dir>] [--list-rules]`
//!
//! Findings print as `file:line: rule-id: message`, one per line. With
//! `--deny`, any finding makes the process exit nonzero (the CI gate);
//! without it the pass is advisory.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("nemo-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: nemo-lint [--deny] [--root <dir>] [--list-rules]");
                println!("  --deny        exit nonzero if any finding is reported");
                println!("  --root <dir>  workspace root (default: discovered from cwd)");
                println!("  --list-rules  print the rule catalog and exit");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nemo-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in nemo_lint::ALL_RULES {
            println!("{}", rule.as_str());
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("nemo-lint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match nemo_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "nemo-lint: no workspace root (Cargo.lock + crates/) above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match nemo_lint::check_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nemo-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        eprintln!("nemo-lint: ok ({} rules, 0 findings)", nemo_lint::ALL_RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("nemo-lint: {} finding(s)", findings.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

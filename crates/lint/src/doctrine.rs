//! The cross-file structural rules: every fast path keeps its reference
//! path honest.
//!
//! These checks read the workspace as a whole — the config-switch
//! registry against the differential-test suite, `BENCH_kernel.json`
//! against the bench harness, `#![warn(missing_docs)]` on the published
//! crates, and `Cargo.lock` hermeticity.

use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{justified, Finding, RuleId};
use crate::scan;

/// The config-switch registry: every fast-path/reference-path switch in
/// the workspace, with the file declaring it. A new switch must be added
/// here *and* exercised by a differential test under `tests/` — the
/// [`RuleId::DoctrineUnregisteredSwitch`] rule flags any `pub enum` in
/// `crates/core/src/config.rs` that is neither registered nor annotated.
pub const SWITCH_REGISTRY: &[(&str, &str)] = &[
    ("DistanceBackend", "crates/core/src/config.rs"),
    ("SeuScoring", "crates/core/src/config.rs"),
    ("WarmStart", "crates/core/src/config.rs"),
    ("RefinementCaching", "crates/core/src/config.rs"),
    ("PosteriorDedup", "crates/core/src/config.rs"),
    ("SelectionStrategy", "crates/core/src/config.rs"),
    ("DenseBackend", "crates/sparse/src/dense.rs"),
];

/// Published crates that must carry `#![warn(missing_docs)]` in their
/// `src/lib.rs` (escalated to an error by `clippy -D warnings` in CI).
/// `bench` (harness binary) and `proptest` (test shim) are exempt.
pub const DOCUMENTED_CRATES: &[&str] = &[
    "baselines",
    "core",
    "data",
    "endmodel",
    "labelmodel",
    "lf",
    "lint",
    "persist",
    "sparse",
    "text",
];

/// Top-level `BENCH_kernel.json` keys that are metadata, not kernel
/// sections.
const BENCH_META_KEYS: &[&str] = &["profile", "dataset", "train_n", "benchmarks"];

/// Where the kernel bench harness lives.
const BENCH_FILE: &str = "crates/bench/benches/kernel_microbench.rs";

/// Run every structural rule against the workspace at `root`.
pub fn check(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    check_switches(root, &mut findings)?;
    check_bench_sections(root, &mut findings)?;
    check_missing_docs(root, &mut findings)?;
    check_lockfile(root, &mut findings)?;
    Ok(findings)
}

fn read_rel(root: &Path, rel: &str) -> io::Result<Option<String>> {
    let path = root.join(rel);
    if !path.is_file() {
        return Ok(None);
    }
    fs::read_to_string(path).map(Some)
}

/// 0-based line of the `pub enum <name>` declaration in classified
/// `lines`, if any.
fn enum_decl_line(lines: &[scan::Line], name: &str) -> Option<usize> {
    lines
        .iter()
        .position(|l| !l.in_test && l.code.contains("pub enum") && scan::has_ident(&l.code, name))
}

fn check_switches(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    // Gather the differential-test corpus once: raw text of tests/*.rs.
    let tests_dir = root.join("tests");
    let mut test_sources: Vec<String> = Vec::new();
    if tests_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&tests_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        entries.sort();
        for p in entries {
            test_sources.push(fs::read_to_string(p)?);
        }
    }

    for &(name, decl_file) in SWITCH_REGISTRY {
        let Some(source) = read_rel(root, decl_file)? else {
            findings.push(Finding {
                rule: RuleId::DoctrineSwitchDifferential,
                file: decl_file.to_string(),
                line: 1,
                message: format!("registered switch `{name}`: declaration file is missing"),
            });
            continue;
        };
        let lines = scan::classify(&source);
        let Some(decl) = enum_decl_line(&lines, name) else {
            findings.push(Finding {
                rule: RuleId::DoctrineSwitchDifferential,
                file: decl_file.to_string(),
                line: 1,
                message: format!(
                    "registered switch `{name}` is no longer declared here; update the \
                     nemo-lint SWITCH_REGISTRY alongside the enum"
                ),
            });
            continue;
        };
        let exercised = test_sources.iter().any(|s| scan::has_ident(s, name));
        if !exercised && !justified(&lines, decl, RuleId::DoctrineSwitchDifferential) {
            findings.push(Finding {
                rule: RuleId::DoctrineSwitchDifferential,
                file: decl_file.to_string(),
                line: decl + 1,
                message: format!(
                    "config switch `{name}` has no differential test: no file under tests/ \
                     mentions it; every fast path must be pinned bit-identical to its \
                     reference path"
                ),
            });
        }
    }

    // Any pub enum in config.rs outside the registry is a config switch
    // the doctrine does not know about.
    let config_rel = "crates/core/src/config.rs";
    if let Some(source) = read_rel(root, config_rel)? {
        let lines = scan::classify(&source);
        for (i, l) in lines.iter().enumerate() {
            if l.in_test || !l.code.contains("pub enum") {
                continue;
            }
            let name = l
                .code
                .split("pub enum")
                .nth(1)
                .map(|rest| rest.trim_start().chars().take_while(|&c| scan::is_ident(c)).collect())
                .unwrap_or_else(String::new);
            if name.is_empty() || SWITCH_REGISTRY.iter().any(|&(n, _)| n == name) {
                continue;
            }
            if !justified(&lines, i, RuleId::DoctrineUnregisteredSwitch) {
                findings.push(Finding {
                    rule: RuleId::DoctrineUnregisteredSwitch,
                    file: config_rel.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{name}` is not in the nemo-lint switch registry: register it with a \
                         differential test, or annotate why it is not a fast/reference switch"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Top-level keys of a JSON object with their 1-based line numbers, via
/// a depth-tracking scan (string-aware; no JSON parser dependency).
fn json_top_level_keys(text: &str) -> Vec<(String, usize)> {
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut cur_key = String::new();
    let mut line = 1usize;
    // After a string closes at depth 1, a ':' makes it a key.
    let mut pending: Option<(String, usize)> = None;
    for c in text.chars() {
        if c == '\n' {
            line += 1;
        }
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
                if depth == 1 {
                    pending = Some((std::mem::take(&mut cur_key), line));
                }
            } else if depth == 1 {
                cur_key.push(c);
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur_key.clear();
            }
            ':' => {
                if let Some(kv) = pending.take() {
                    keys.push(kv);
                }
            }
            '{' | '[' => {
                depth += 1;
                pending = None;
            }
            '}' | ']' => {
                depth -= 1;
                pending = None;
            }
            ',' => pending = None,
            _ => {}
        }
    }
    keys
}

fn check_bench_sections(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let Some(json) = read_rel(root, "BENCH_kernel.json")? else {
        findings.push(Finding {
            rule: RuleId::DoctrineBenchKernel,
            file: "BENCH_kernel.json".to_string(),
            line: 1,
            message: "BENCH_kernel.json is missing; run the kernel microbench to record it"
                .to_string(),
        });
        return Ok(());
    };
    let Some(bench_src) = read_rel(root, BENCH_FILE)? else {
        findings.push(Finding {
            rule: RuleId::DoctrineBenchKernel,
            file: BENCH_FILE.to_string(),
            line: 1,
            message: "the kernel microbench harness is missing".to_string(),
        });
        return Ok(());
    };
    let bench_lines = scan::classify(&bench_src);
    let raw_lines: Vec<&str> = bench_src.lines().collect();

    // Top-level functions of the harness: (name, 0-based decl line).
    let mut fns: Vec<(String, usize)> = Vec::new();
    for (i, l) in bench_lines.iter().enumerate() {
        if let Some(rest) = l.code.strip_prefix("fn ") {
            let name: String =
                rest.trim_start().chars().take_while(|&c| scan::is_ident(c)).collect();
            if !name.is_empty() {
                fns.push((name, i));
            }
        }
    }

    for (key, line) in json_top_level_keys(&json) {
        if BENCH_META_KEYS.contains(&key.as_str()) {
            continue;
        }
        let kernel_fn = fns.iter().position(|(name, _)| {
            *name == format!("{key}_bench") || *name == format!("{key}_summary")
        });
        let Some(at) = kernel_fn else {
            findings.push(Finding {
                rule: RuleId::DoctrineBenchKernel,
                file: "BENCH_kernel.json".to_string(),
                line,
                message: format!(
                    "section `{key}` has no matching bench kernel: expected fn `{key}_bench` \
                     or `{key}_summary` in {BENCH_FILE}"
                ),
            });
            continue;
        };
        let (_, decl) = &fns[at];
        let body_end = fns.get(at + 1).map(|(_, l)| *l).unwrap_or(raw_lines.len());
        // NEMO_BENCH_ENFORCE appears inside a string literal
        // (`env::var("NEMO_BENCH_ENFORCE")`), so search the raw text.
        let gated = raw_lines[*decl..body_end].iter().any(|l| l.contains("NEMO_BENCH_ENFORCE"));
        if !gated && !justified(&bench_lines, *decl, RuleId::DoctrineBenchEnforce) {
            findings.push(Finding {
                rule: RuleId::DoctrineBenchEnforce,
                file: BENCH_FILE.to_string(),
                line: decl + 1,
                message: format!(
                    "bench kernel for section `{key}` has no NEMO_BENCH_ENFORCE gate: every \
                     recorded section must fail the build when its speedup regresses"
                ),
            });
        }
    }
    Ok(())
}

fn check_missing_docs(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    // The facade crate plus every published workspace crate.
    let mut targets: Vec<(String, String)> =
        vec![("src/lib.rs".to_string(), "nemo (facade)".to_string())];
    for name in DOCUMENTED_CRATES {
        targets.push((format!("crates/{name}/src/lib.rs"), format!("nemo-{name}")));
    }
    for (rel, label) in targets {
        let Some(source) = read_rel(root, &rel)? else {
            findings.push(Finding {
                rule: RuleId::DoctrineMissingDocs,
                file: rel.clone(),
                line: 1,
                message: format!("{label}: src/lib.rs is missing"),
            });
            continue;
        };
        if !source.contains("#![warn(missing_docs)]") {
            findings.push(Finding {
                rule: RuleId::DoctrineMissingDocs,
                file: rel.clone(),
                line: 1,
                message: format!(
                    "{label}: published crate must carry #![warn(missing_docs)] (CI escalates \
                     it to an error)"
                ),
            });
        }
    }
    Ok(())
}

fn check_lockfile(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let Some(lock) = read_rel(root, "Cargo.lock")? else {
        findings.push(Finding {
            rule: RuleId::DoctrineLockfileHermetic,
            file: "Cargo.lock".to_string(),
            line: 1,
            message: "Cargo.lock is missing; the workspace pins a hermetic lockfile".to_string(),
        });
        return Ok(());
    };
    let mut package = String::new();
    for (i, line) in lock.lines().enumerate() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name = ") {
            package = rest.trim_matches('"').to_string();
        }
        if line.starts_with("source = ") {
            findings.push(Finding {
                rule: RuleId::DoctrineLockfileHermetic,
                file: "Cargo.lock".to_string(),
                line: i + 1,
                message: format!(
                    "package `{package}` has a non-path source: the workspace is hermetic — \
                     in-repo replacements only, no registry dependencies"
                ),
            });
        }
    }
    Ok(())
}

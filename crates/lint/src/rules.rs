//! The file-scoped rule families: determinism and panic-safety.
//!
//! Rules fire on classified code lines (see [`crate::scan`]) and are
//! suppressed by an adjacent justification comment — `// invariant:` for
//! panic-safety, or the explicit `// lint: allow(<rule-id>): <reason>`
//! grammar for anything — on the flagged line or up to
//! [`JUSTIFICATION_WINDOW`] lines above it.

use crate::scan::{self, Line};

/// How far above a flagged line a justification comment may sit (in
/// lines). Same-line trailing comments always count.
pub const JUSTIFICATION_WINDOW: usize = 3;

/// Identity of a lint rule. String forms are `family/name`, e.g.
/// `determinism/hash-collections`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in a determinism-critical crate: iteration
    /// order is seeded per process and leaks straight into results.
    DetHashCollections,
    /// `Instant`/`SystemTime` in a determinism-critical crate.
    DetWallClock,
    /// Ambient randomness (`thread_rng`, `RandomState`, …) in a
    /// determinism-critical crate; all randomness must flow through
    /// `nemo_sparse::rng::DetRng`.
    DetAmbientRandomness,
    /// `Mutex`/`RwLock`/`Condvar`/atomics outside the two modules allowed
    /// to own shared-state concurrency (`nemo_sparse::parallel`,
    /// `nemo_core::pool`).
    DetSyncPrimitives,
    /// `.unwrap()` without an adjacent justification.
    PanicUnwrap,
    /// `.expect(...)` without an adjacent justification.
    PanicExpect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` without an
    /// adjacent justification.
    PanicExplicit,
    /// `get_unchecked` / `get_unchecked_mut` without an adjacent
    /// justification.
    PanicUncheckedIndex,
    /// A config-switch enum with no differential test under `tests/`.
    DoctrineSwitchDifferential,
    /// A `pub enum` in `crates/core/src/config.rs` that is not in the
    /// lint's switch registry (add it there plus a differential test, or
    /// annotate why it is not a fast/reference switch).
    DoctrineUnregisteredSwitch,
    /// A `BENCH_kernel.json` section with no matching bench kernel
    /// function.
    DoctrineBenchKernel,
    /// A bench kernel function without an `NEMO_BENCH_ENFORCE` gate.
    DoctrineBenchEnforce,
    /// A published crate missing `#![warn(missing_docs)]`.
    DoctrineMissingDocs,
    /// A `Cargo.lock` package with a registry source: the workspace is
    /// hermetic by doctrine (workspace members only).
    DoctrineLockfileHermetic,
    /// A malformed or unknown `lint: allow(...)` annotation.
    BadAllow,
}

/// Every rule, for CLI listings and annotation validation.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::DetHashCollections,
    RuleId::DetWallClock,
    RuleId::DetAmbientRandomness,
    RuleId::DetSyncPrimitives,
    RuleId::PanicUnwrap,
    RuleId::PanicExpect,
    RuleId::PanicExplicit,
    RuleId::PanicUncheckedIndex,
    RuleId::DoctrineSwitchDifferential,
    RuleId::DoctrineUnregisteredSwitch,
    RuleId::DoctrineBenchKernel,
    RuleId::DoctrineBenchEnforce,
    RuleId::DoctrineMissingDocs,
    RuleId::DoctrineLockfileHermetic,
    RuleId::BadAllow,
];

impl RuleId {
    /// The `family/name` string form used in output and annotations.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::DetHashCollections => "determinism/hash-collections",
            RuleId::DetWallClock => "determinism/wall-clock",
            RuleId::DetAmbientRandomness => "determinism/ambient-randomness",
            RuleId::DetSyncPrimitives => "determinism/sync-primitives",
            RuleId::PanicUnwrap => "panic/unwrap",
            RuleId::PanicExpect => "panic/expect",
            RuleId::PanicExplicit => "panic/explicit-panic",
            RuleId::PanicUncheckedIndex => "panic/unchecked-index",
            RuleId::DoctrineSwitchDifferential => "doctrine/switch-differential",
            RuleId::DoctrineUnregisteredSwitch => "doctrine/unregistered-switch",
            RuleId::DoctrineBenchKernel => "doctrine/bench-kernel",
            RuleId::DoctrineBenchEnforce => "doctrine/bench-enforce",
            RuleId::DoctrineMissingDocs => "doctrine/missing-docs",
            RuleId::DoctrineLockfileHermetic => "doctrine/lockfile-hermetic",
            RuleId::BadAllow => "lint/bad-allow",
        }
    }

    /// The family prefix (`determinism`, `panic`, `doctrine`, `lint`).
    pub fn family(self) -> &'static str {
        match self.as_str().split_once('/') {
            Some((fam, _)) => fam,
            // invariant: every rule id contains a '/' by construction.
            None => "lint",
        }
    }
}

/// One rule violation, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number of the violation.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule.as_str(), self.message)
    }
}

/// Crates whose result-affecting paths must be deterministic: selection,
/// distance, label-model, and featurization kernels.
const DETERMINISM_CRATES: &[&str] =
    &["crates/core/src/", "crates/sparse/src/", "crates/labelmodel/src/", "crates/text/src/"];

/// The only modules allowed to own shared-state synchronization: the
/// data-parallel scheduler and the session pool.
const SYNC_ALLOWED_FILES: &[&str] = &["crates/sparse/src/parallel.rs", "crates/core/src/pool.rs"];

/// Crates exempt from file-scoped rules: the proptest shim is test
/// infrastructure, the bench harness legitimately measures wall-clock
/// time (its perf claims are gated by `NEMO_BENCH_ENFORCE`, not by
/// bit-identity).
const FILE_RULE_EXEMPT: &[&str] = &["crates/proptest/", "crates/bench/"];

fn in_determinism_scope(path: &str) -> bool {
    DETERMINISM_CRATES.iter().any(|p| path.starts_with(p))
}

fn sync_allowed(path: &str) -> bool {
    SYNC_ALLOWED_FILES.contains(&path)
}

fn exempt(path: &str) -> bool {
    FILE_RULE_EXEMPT.iter().any(|p| path.starts_with(p))
}

/// Outcome of parsing one `lint: allow(...)` occurrence.
enum AllowParse {
    /// A well-formed annotation for the given rule id or family string.
    Target(String),
    /// Malformed (missing reason) or naming an unknown rule.
    Bad(&'static str),
    /// A documentation placeholder (`lint: allow(<rule>)`), not an
    /// annotation.
    Placeholder,
}

/// Parse every `lint: allow(...)` occurrence in a comment.
fn parse_allows(comment: &str) -> Vec<AllowParse> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = comment[from..].find("lint: allow(") {
        let start = from + at + "lint: allow(".len();
        from = start;
        let rest = &comment[start..];
        // Documentation placeholders — `lint: allow(<rule>)` or
        // `lint: allow(...)` — describe the grammar, they don't use it.
        if rest.starts_with('<') || rest.starts_with("...") {
            out.push(AllowParse::Placeholder);
            continue;
        }
        let Some(close) = rest.find(')') else {
            out.push(AllowParse::Bad("unclosed `lint: allow(`"));
            continue;
        };
        let id = rest[..close].trim();
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            out.push(AllowParse::Bad("missing `: reason` after `lint: allow(...)`"));
            continue;
        };
        if reason.trim().is_empty() {
            out.push(AllowParse::Bad("empty reason in `lint: allow(...)`"));
            continue;
        }
        let known = ALL_RULES.iter().any(|r| r.as_str() == id || r.family() == id);
        if known {
            out.push(AllowParse::Target(id.to_string()));
        } else {
            out.push(AllowParse::Bad("unknown rule id in `lint: allow(...)`"));
        }
    }
    out
}

/// Whether the comments on `lines[lo..=line]` justify a finding of
/// `rule` on `line` (0-based): an allow annotation naming the rule or
/// its family, or — for the panic family — an `invariant:` comment.
pub fn justified(lines: &[Line], line: usize, rule: RuleId) -> bool {
    let lo = line.saturating_sub(JUSTIFICATION_WINDOW);
    for l in &lines[lo..=line.min(lines.len() - 1)] {
        if rule.family() == "panic" && l.comment.contains("invariant:") {
            return true;
        }
        for allow in parse_allows(&l.comment) {
            if let AllowParse::Target(id) = allow {
                if id == rule.as_str() || id == rule.family() {
                    return true;
                }
            }
        }
    }
    false
}

/// Tokens of the determinism family, per rule.
const HASH_TOKENS: &[&str] = &["HashMap", "HashSet"];
const WALL_CLOCK_TOKENS: &[&str] = &["Instant", "SystemTime"];
const RANDOMNESS_TOKENS: &[&str] = &["thread_rng", "from_entropy", "RandomState", "getrandom"];
const SYNC_TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn has_macro(code: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(&needle) {
        let start = from + at;
        let before_ok = start == 0 || !scan::is_ident(bytes[start - 1] as char);
        if before_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn has_atomic_type(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("Atomic") {
        let start = from + at;
        let end = start + "Atomic".len();
        let before_ok = start == 0 || !scan::is_ident(bytes[start - 1] as char);
        // AtomicU64, AtomicBool, … — an identifier *extending* "Atomic".
        let after_ok = end < code.len() && scan::is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Run the file-scoped rules over one source file. `path` is the
/// workspace-relative path (forward slashes); it decides which rule
/// scopes apply. Only production sources are checked: paths under
/// `crates/*/src/` or the facade `src/`.
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let is_production = (path.starts_with("crates/") && path.contains("/src/"))
        || (path.starts_with("src/") && !path.starts_with("src/bin/"));
    if !is_production || exempt(path) || !path.ends_with(".rs") {
        return findings;
    }
    let lines = scan::classify(source);
    let det = in_determinism_scope(path);
    fn push(
        findings: &mut Vec<Finding>,
        lines: &[Line],
        path: &str,
        rule: RuleId,
        line: usize,
        message: String,
    ) {
        if !justified(lines, line, rule) {
            findings.push(Finding { rule, file: path.to_string(), line: line + 1, message });
        }
    }

    for (i, l) in lines.iter().enumerate() {
        // Annotation hygiene applies everywhere, test code included: a
        // malformed allow silently allows nothing.
        for allow in parse_allows(&l.comment) {
            if let AllowParse::Bad(why) = allow {
                findings.push(Finding {
                    rule: RuleId::BadAllow,
                    file: path.to_string(),
                    line: i + 1,
                    message: why.to_string(),
                });
            }
        }
        if l.in_test {
            continue;
        }
        let code = &l.code;
        if det {
            for tok in HASH_TOKENS {
                if scan::has_ident(code, tok) {
                    push(
                        &mut findings,
                        &lines,
                        path,
                        RuleId::DetHashCollections,
                        i,
                        format!(
                            "`{tok}` in a determinism-critical crate: iteration order is \
                             process-seeded; use BTreeMap/BTreeSet, a Vec keyed by dense ids, \
                             or justify why order cannot leak"
                        ),
                    );
                }
            }
            for tok in WALL_CLOCK_TOKENS {
                if scan::has_ident(code, tok) {
                    push(
                        &mut findings,
                        &lines,
                        path,
                        RuleId::DetWallClock,
                        i,
                        format!(
                            "`{tok}` in a determinism-critical crate: wall-clock values must \
                             not reach result-affecting paths"
                        ),
                    );
                }
            }
            for tok in RANDOMNESS_TOKENS {
                if scan::has_ident(code, tok) {
                    push(
                        &mut findings,
                        &lines,
                        path,
                        RuleId::DetAmbientRandomness,
                        i,
                        format!(
                            "`{tok}`: ambient randomness is banned; seed a \
                             `nemo_sparse::rng::DetRng` instead"
                        ),
                    );
                }
            }
        }
        if !sync_allowed(path) {
            let sync_hit = SYNC_TOKENS.iter().find(|t| scan::has_ident(code, t));
            if let Some(tok) = sync_hit {
                push(
                    &mut findings,
                    &lines,
                    path,
                    RuleId::DetSyncPrimitives,
                    i,
                    format!(
                        "`{tok}` outside nemo_sparse::parallel / nemo_core::pool: shared-state \
                         synchronization is confined to the scheduler modules"
                    ),
                );
            } else if has_atomic_type(code) {
                push(
                    &mut findings,
                    &lines,
                    path,
                    RuleId::DetSyncPrimitives,
                    i,
                    "atomic type outside nemo_sparse::parallel / nemo_core::pool: shared-state \
                     synchronization is confined to the scheduler modules"
                        .to_string(),
                );
            }
        }
        if code.contains(".unwrap()") {
            push(
                &mut findings,
                &lines,
                path,
                RuleId::PanicUnwrap,
                i,
                "`.unwrap()` without an adjacent `// invariant:` justification".to_string(),
            );
        }
        if code.contains(".expect(") {
            push(
                &mut findings,
                &lines,
                path,
                RuleId::PanicExpect,
                i,
                "`.expect(...)` without an adjacent `// invariant:` justification".to_string(),
            );
        }
        if PANIC_MACROS.iter().any(|m| has_macro(code, m)) {
            push(
                &mut findings,
                &lines,
                path,
                RuleId::PanicExplicit,
                i,
                "explicit panic without an adjacent `// invariant:` justification".to_string(),
            );
        }
        if scan::has_ident(code, "get_unchecked") || scan::has_ident(code, "get_unchecked_mut") {
            push(
                &mut findings,
                &lines,
                path,
                RuleId::PanicUncheckedIndex,
                i,
                "unchecked indexing without an adjacent `// invariant:` justification".to_string(),
            );
        }
    }
    findings
}

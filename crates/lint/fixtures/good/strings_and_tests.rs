// Good: banned tokens inside strings, comments, and test code never fire.
pub fn describe() -> &'static str {
    // A doc string mentioning HashMap, Instant, thread_rng, Mutex, and
    // .unwrap() is not a use of any of them.
    "HashMap Instant thread_rng Mutex .unwrap() panic!"
}

pub fn raw() -> &'static str {
    r#"SystemTime "quoted" HashSet .expect( get_unchecked"#
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_anything() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}

// Good: logical clock for ordering; annotated telemetry-only timer.
// lint: allow(determinism/wall-clock): telemetry only, never feeds a
// result-affecting path.
use std::time::Instant;

pub fn stamp(clock: &mut u64) -> u64 {
    *clock += 1;
    *clock
}

pub fn telemetry_ns() -> u128 {
    // lint: allow(determinism/wall-clock): telemetry only.
    Instant::now().elapsed().as_nanos()
}

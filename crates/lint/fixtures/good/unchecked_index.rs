// Good: unchecked indexing justified by an adjacent invariant.
pub fn sum(xs: &[f32], idx: &[usize]) -> f32 {
    let mut acc = 0.0;
    for &i in idx {
        // invariant: idx entries are validated against xs.len() by the
        // index constructor.
        acc += unsafe { *xs.get_unchecked(i) };
    }
    acc
}

// Good: expect justified by an adjacent invariant.
pub fn first(xs: &[u32]) -> u32 {
    // invariant: callers validate non-emptiness at the boundary.
    *xs.first().expect("non-empty")
}

// Good: panics carry their invariants.
pub fn pick(i: usize) -> u32 {
    match i {
        0 => 1,
        1 => 2,
        // invariant: callers index with argmax over 2 classes.
        _ => panic!("index {i} out of range"),
    }
}

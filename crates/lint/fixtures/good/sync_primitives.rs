// Good: annotated identity-token atomic (cache identity, not results).
// lint: allow(determinism/sync-primitives): process-unique id counter
// for cache identity; never affects what any path computes.
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(1); // lint: allow(determinism/sync-primitives): identity token only.

pub fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

// Good: all randomness flows through the seeded deterministic RNG.
use nemo_sparse::DetRng;

pub fn pick(rng: &mut DetRng, n: usize) -> usize {
    rng.index(n)
}

// Good: ordered collection, plus an annotated lookup-only map.
use std::collections::BTreeMap;
// lint: allow(determinism/hash-collections): membership-only set, never
// iterated.
use std::collections::HashSet;

pub fn count(keys: &[u32]) -> usize {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    let mut seen = HashSet::new(); // lint: allow(determinism/hash-collections): membership only.
    for &k in keys {
        seen.insert(k);
    }
    m.len()
}

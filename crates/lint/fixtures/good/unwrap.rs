// Good: unwrap justified by an adjacent invariant; test code exempt.
pub fn first(xs: &[u32]) -> u32 {
    // invariant: callers validate non-emptiness at the boundary.
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}

// Bad: unjustified panic and unreachable.
pub fn pick(i: usize) -> u32 {
    match i {
        0 => 1,
        1 => 2,
        _ => panic!("index {i} out of range"),
    }
}

pub fn never(flag: bool) -> u32 {
    if flag {
        3
    } else {
        unreachable!()
    }
}

// Bad: Mutex and an atomic outside the scheduler modules.
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub struct Shared {
    lock: Mutex<Vec<u64>>,
    counter: AtomicU64,
}

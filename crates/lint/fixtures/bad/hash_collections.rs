// Bad: HashMap in a determinism-critical crate with no annotation.
use std::collections::HashMap;

pub fn count(keys: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.len()
}

// Bad: bare expect in production code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty")
}

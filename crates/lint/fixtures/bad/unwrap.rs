// Bad: bare unwrap in production code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

// Bad: wall-clock read in a determinism-critical crate.
use std::time::Instant;

pub fn stamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}

// Bad: unchecked indexing without a justification.
pub fn sum(xs: &[f32], idx: &[usize]) -> f32 {
    let mut acc = 0.0;
    for &i in idx {
        acc += unsafe { *xs.get_unchecked(i) };
    }
    acc
}

// Bad: malformed and unknown allow annotations.
// lint: allow(determinism/hash-collections)
pub fn a() {}

// lint: allow(not/a-rule): some reason.
pub fn b() {}

// lint: allow(panic/unwrap):
pub fn c() {}

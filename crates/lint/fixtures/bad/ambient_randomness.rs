// Bad: ambient randomness in a determinism-critical crate.
pub fn pick(n: usize) -> usize {
    let mut rng = thread_rng();
    rng.gen_range(0..n)
}

//! Per-rule fixture self-tests: every bad fixture produces exactly the
//! expected rule ids at the expected lines, every good fixture is clean,
//! and path scoping (determinism crates, sync-allowed modules, exempt
//! crates, test code) behaves as documented.

use nemo_lint::rules::check_source;
use nemo_lint::RuleId;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    // invariant: fixtures ship with the crate; a missing one is a bug in
    // the test, not a runtime condition.
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Run a fixture as if it lived at `path` and return `(rule, line)`
/// pairs.
fn run(path: &str, name: &str) -> Vec<(RuleId, usize)> {
    check_source(path, &fixture(name)).into_iter().map(|f| (f.rule, f.line)).collect()
}

const DET_PATH: &str = "crates/core/src/fixture.rs";

#[test]
fn bad_hash_collections() {
    let got = run(DET_PATH, "bad/hash_collections.rs");
    assert_eq!(got, vec![(RuleId::DetHashCollections, 2), (RuleId::DetHashCollections, 5)]);
}

#[test]
fn bad_wall_clock() {
    let got = run(DET_PATH, "bad/wall_clock.rs");
    assert_eq!(got, vec![(RuleId::DetWallClock, 2), (RuleId::DetWallClock, 5)]);
}

#[test]
fn bad_ambient_randomness() {
    let got = run(DET_PATH, "bad/ambient_randomness.rs");
    assert_eq!(got, vec![(RuleId::DetAmbientRandomness, 3)]);
}

#[test]
fn bad_sync_primitives() {
    let got = run(DET_PATH, "bad/sync_primitives.rs");
    assert_eq!(
        got,
        vec![
            (RuleId::DetSyncPrimitives, 2),
            (RuleId::DetSyncPrimitives, 3),
            (RuleId::DetSyncPrimitives, 6),
            (RuleId::DetSyncPrimitives, 7),
        ]
    );
}

#[test]
fn bad_unwrap() {
    let got = run(DET_PATH, "bad/unwrap.rs");
    assert_eq!(got, vec![(RuleId::PanicUnwrap, 3)]);
}

#[test]
fn bad_expect() {
    let got = run(DET_PATH, "bad/expect.rs");
    assert_eq!(got, vec![(RuleId::PanicExpect, 3)]);
}

#[test]
fn bad_explicit_panic() {
    let got = run(DET_PATH, "bad/explicit_panic.rs");
    assert_eq!(got, vec![(RuleId::PanicExplicit, 6), (RuleId::PanicExplicit, 14)]);
}

#[test]
fn bad_unchecked_index() {
    let got = run(DET_PATH, "bad/unchecked_index.rs");
    assert_eq!(got, vec![(RuleId::PanicUncheckedIndex, 5)]);
}

#[test]
fn bad_allow_annotations() {
    let got = run(DET_PATH, "bad/bad_allow.rs");
    assert_eq!(got, vec![(RuleId::BadAllow, 2), (RuleId::BadAllow, 5), (RuleId::BadAllow, 8)]);
}

#[test]
fn good_fixtures_are_clean() {
    for name in [
        "good/hash_collections.rs",
        "good/wall_clock.rs",
        "good/ambient_randomness.rs",
        "good/sync_primitives.rs",
        "good/unwrap.rs",
        "good/expect.rs",
        "good/explicit_panic.rs",
        "good/unchecked_index.rs",
        "good/strings_and_tests.rs",
    ] {
        let got = run(DET_PATH, name);
        assert!(got.is_empty(), "{name} should be clean, got {got:?}");
    }
}

#[test]
fn determinism_rules_scope_to_determinism_crates() {
    // The same HashMap fixture is fine in a non-determinism crate…
    assert!(run("crates/persist/src/fixture.rs", "bad/hash_collections.rs").is_empty());
    // …and everything is fine in the exempt crates.
    assert!(run("crates/bench/src/fixture.rs", "bad/sync_primitives.rs").is_empty());
    assert!(run("crates/proptest/src/fixture.rs", "bad/unwrap.rs").is_empty());
    // Integration tests are not production code.
    assert!(run("tests/fixture.rs", "bad/unwrap.rs").is_empty());
}

#[test]
fn sync_primitives_allowed_in_scheduler_modules() {
    assert!(run("crates/sparse/src/parallel.rs", "bad/sync_primitives.rs").is_empty());
    assert!(run("crates/core/src/pool.rs", "bad/sync_primitives.rs").is_empty());
}

#[test]
fn panic_rules_apply_outside_determinism_scope_too() {
    let got = run("crates/persist/src/fixture.rs", "bad/unwrap.rs");
    assert_eq!(got, vec![(RuleId::PanicUnwrap, 3)]);
}

#[test]
fn family_allow_suppresses_member_rule() {
    let src = "// lint: allow(determinism): fixture-wide exemption for this test.\n\
               use std::collections::HashMap;\n";
    assert!(check_source(DET_PATH, src).is_empty());
}

#[test]
fn justification_window_is_bounded() {
    // The invariant comment sits 4 lines above the unwrap: out of range.
    let src = "// invariant: too far away to count.\n\
               //\n\
               //\n\
               //\n\
               pub fn f(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n";
    let got: Vec<_> = check_source(DET_PATH, src).into_iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, vec![(RuleId::PanicUnwrap, 5)]);
}

//! Repo-wide gate plus seeded-regression self-tests: the workspace is
//! clean today, and the lint actually catches the regressions it exists
//! to prevent — a `HashMap` slipped into a selection kernel, a config
//! switch whose differential test was deleted, a bench section whose
//! enforce gate vanished, a registry dependency in `Cargo.lock`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use nemo_lint::rules::check_source;
use nemo_lint::{doctrine, RuleId};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root exists")
}

#[test]
fn workspace_has_zero_findings() {
    let findings = nemo_lint::check_workspace(&repo_root()).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "nemo-lint must be clean on the repo; found:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_hashmap_in_session_is_caught() {
    let real = fs::read_to_string(repo_root().join("crates/core/src/session.rs"))
        .expect("read session.rs");
    let seeded = format!("use std::collections::HashMap;\n{real}");
    let findings = check_source("crates/core/src/session.rs", &seeded);
    assert!(
        findings.iter().any(|f| f.rule == RuleId::DetHashCollections && f.line == 1),
        "seeded HashMap import must be flagged at line 1, got {findings:?}"
    );
    // The unmodified file stays clean: the seed is the only delta.
    assert!(check_source("crates/core/src/session.rs", &real).is_empty());
}

/// A minimal workspace for the structural rules: registered switches,
/// one bench section, a documented crate set, a hermetic lockfile.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("nemo-lint-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let ws = Self { root };
        ws.write("Cargo.lock", "[[package]]\nname = \"nemo\"\nversion = \"0.1.0\"\n");
        ws.write(
            "crates/core/src/config.rs",
            "/// Switch.\npub enum DistanceBackend { A, B }\n\
             /// Switch.\npub enum SeuScoring { A, B }\n\
             /// Switch.\npub enum WarmStart { A, B }\n\
             /// Switch.\npub enum RefinementCaching { A, B }\n\
             /// Switch.\npub enum PosteriorDedup { A, B }\n\
             /// Switch.\npub enum SelectionStrategy { A, B }\n",
        );
        ws.write("crates/sparse/src/dense.rs", "/// Switch.\npub enum DenseBackend { A, B }\n");
        ws.write(
            "tests/differentials.rs",
            "// Exercises DistanceBackend, DenseBackend, SeuScoring, WarmStart,\n\
             // RefinementCaching, PosteriorDedup, and SelectionStrategy.\n",
        );
        ws.write("BENCH_kernel.json", "{\n  \"profile\": \"quick\",\n  \"seu_loop\": {}\n}\n");
        ws.write(
            "crates/bench/benches/kernel_microbench.rs",
            "fn seu_loop_bench() {\n    std::env::var(\"NEMO_BENCH_ENFORCE\").ok();\n}\n\
             fn main() {}\n",
        );
        ws.write("src/lib.rs", "#![warn(missing_docs)]\n");
        for name in doctrine::DOCUMENTED_CRATES {
            ws.write(&format!("crates/{name}/src/lib.rs"), "#![warn(missing_docs)]\n");
        }
        ws
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        // invariant: temp-dir paths always have a parent.
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture file");
    }

    fn check(&self) -> Vec<(RuleId, String, usize)> {
        doctrine::check(&self.root)
            .expect("doctrine scan")
            .into_iter()
            .map(|f| (f.rule, f.file, f.line))
            .collect()
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn mini_workspace_baseline_is_clean() {
    let ws = MiniWorkspace::new("baseline");
    assert_eq!(ws.check(), vec![]);
}

#[test]
fn deleted_differential_test_is_caught() {
    let ws = MiniWorkspace::new("switch");
    // The differential file no longer mentions PosteriorDedup.
    ws.write(
        "tests/differentials.rs",
        "// Exercises DistanceBackend, DenseBackend, SeuScoring, WarmStart,\n\
         // RefinementCaching, and SelectionStrategy.\n",
    );
    let got = ws.check();
    assert_eq!(
        got,
        vec![(RuleId::DoctrineSwitchDifferential, "crates/core/src/config.rs".to_string(), 10)],
        "PosteriorDedup (declared at line 10) lost its differential test"
    );
}

#[test]
fn selection_strategy_is_a_registered_switch() {
    // Good case: the baseline fixture (and the real repo) exercise
    // SelectionStrategy from tests/. Bad case: dropping the mention is a
    // doctrine finding at the enum's declaration line.
    let ws = MiniWorkspace::new("selection");
    assert_eq!(ws.check(), vec![]);
    ws.write(
        "tests/differentials.rs",
        "// Exercises DistanceBackend, DenseBackend, SeuScoring, WarmStart,\n\
         // RefinementCaching, and PosteriorDedup.\n",
    );
    let got = ws.check();
    assert_eq!(
        got,
        vec![(RuleId::DoctrineSwitchDifferential, "crates/core/src/config.rs".to_string(), 12)],
        "SelectionStrategy (declared at line 12) lost its differential test"
    );
}

#[test]
fn unregistered_switch_is_caught() {
    let ws = MiniWorkspace::new("unregistered");
    ws.write(
        "crates/core/src/config.rs",
        "/// Switch.\npub enum DistanceBackend { A, B }\n\
         /// Switch.\npub enum SeuScoring { A, B }\n\
         /// Switch.\npub enum WarmStart { A, B }\n\
         /// Switch.\npub enum RefinementCaching { A, B }\n\
         /// Switch.\npub enum PosteriorDedup { A, B }\n\
         /// Switch.\npub enum SelectionStrategy { A, B }\n\
         /// New switch nobody registered.\npub enum MysteryPath { Fast, Reference }\n",
    );
    let got = ws.check();
    assert_eq!(
        got,
        vec![(RuleId::DoctrineUnregisteredSwitch, "crates/core/src/config.rs".to_string(), 14)]
    );
}

#[test]
fn missing_bench_kernel_and_gate_are_caught() {
    let ws = MiniWorkspace::new("bench");
    ws.write(
        "BENCH_kernel.json",
        "{\n  \"profile\": \"quick\",\n  \"seu_loop\": {},\n  \"phantom\": {}\n}\n",
    );
    ws.write("crates/bench/benches/kernel_microbench.rs", "fn seu_loop_bench() {}\nfn main() {}\n");
    let got = ws.check();
    assert_eq!(
        got,
        vec![
            (
                RuleId::DoctrineBenchEnforce,
                "crates/bench/benches/kernel_microbench.rs".to_string(),
                1
            ),
            (RuleId::DoctrineBenchKernel, "BENCH_kernel.json".to_string(), 4),
        ],
        "seu_loop lost its enforce gate; phantom has no kernel fn"
    );
}

#[test]
fn undocumented_crate_is_caught() {
    let ws = MiniWorkspace::new("docs");
    ws.write("crates/text/src/lib.rs", "//! No missing_docs warning here.\n");
    let got = ws.check();
    assert_eq!(got, vec![(RuleId::DoctrineMissingDocs, "crates/text/src/lib.rs".to_string(), 1)]);
}

#[test]
fn registry_dependency_in_lockfile_is_caught() {
    let ws = MiniWorkspace::new("lockfile");
    ws.write(
        "Cargo.lock",
        "[[package]]\nname = \"nemo\"\nversion = \"0.1.0\"\n\n\
         [[package]]\nname = \"rand\"\nversion = \"0.8.5\"\n\
         source = \"registry+https://github.com/rust-lang/crates.io-index\"\n",
    );
    let got = ws.check();
    assert_eq!(got, vec![(RuleId::DoctrineLockfileHermetic, "Cargo.lock".to_string(), 8)]);
}

#[test]
fn cli_exits_zero_on_clean_repo_and_nonzero_on_findings() {
    let bin = env!("CARGO_BIN_EXE_nemo-lint");
    let repo = repo_root();

    let ok =
        Command::new(bin).args(["--deny", "--root"]).arg(&repo).output().expect("run nemo-lint");
    assert!(
        ok.status.success(),
        "nemo-lint --deny must pass on the repo:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // Seed a regression in a scratch copy of the mini workspace plus one
    // bad production file; --deny must exit nonzero and name the span.
    let ws = MiniWorkspace::new("cli");
    ws.write("crates/core/src/bad.rs", "pub fn f(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n");
    let bad =
        Command::new(bin).args(["--deny", "--root"]).arg(&ws.root).output().expect("run nemo-lint");
    assert!(!bad.status.success(), "--deny must fail on a seeded regression");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("crates/core/src/bad.rs:1: panic/unwrap"),
        "finding must carry its file:line span and rule id, got:\n{stdout}"
    );

    // Without --deny the same findings are advisory.
    let advisory = Command::new(bin).arg("--root").arg(&ws.root).output().expect("run nemo-lint");
    assert!(advisory.status.success(), "advisory mode must not fail the build");
}

//! Classification metrics over binary labels.
//!
//! The paper measures generalization with accuracy on all datasets except
//! SMS, which is highly imbalanced and evaluated with F1 (Sec. 5.1). The
//! positive class is the minority/interest class (spam for SMS).

use crate::label::Label;

/// Which metric a dataset is evaluated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Fraction of correct predictions.
    #[default]
    Accuracy,
    /// F1 of the positive class (harmonic mean of precision and recall).
    F1,
}

impl Metric {
    /// Name used in the benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Accuracy => "accuracy",
            Metric::F1 => "f1",
        }
    }

    /// Score predictions against gold labels.
    pub fn score(self, pred: &[Label], gold: &[Label]) -> f64 {
        match self {
            Metric::Accuracy => accuracy(pred, gold),
            Metric::F1 => f1(pred, gold),
        }
    }
}

/// Confusion counts for the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally a prediction/gold pair stream.
    pub fn from_pairs(pred: &[Label], gold: &[Label]) -> Self {
        assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
        let mut c = Confusion::default();
        for (&p, &g) in pred.iter().zip(gold) {
            match (p, g) {
                (Label::Pos, Label::Pos) => c.tp += 1,
                (Label::Pos, Label::Neg) => c.fp += 1,
                (Label::Neg, Label::Neg) => c.tn += 1,
                (Label::Neg, Label::Pos) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision of the positive class (0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall of the positive class (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 of the positive class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Decision threshold on `P(y=+1)` maximizing F1 against `gold` on a
/// validation sample (standard practice for F1-metric tasks: under heavy
/// class imbalance the 0.5 threshold degenerates to never predicting the
/// minority class). Candidate thresholds are the midpoints of the sorted
/// unique probabilities; ties resolve to the smallest threshold (highest
/// recall). Returns 0.5 when the input is degenerate.
pub fn best_f1_threshold(p_pos: &[f64], gold: &[Label]) -> f64 {
    assert_eq!(p_pos.len(), gold.len(), "prob/gold length mismatch");
    if p_pos.is_empty() {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..p_pos.len()).collect();
    // invariant: posteriors are probabilities in [0, 1], never NaN.
    order.sort_by(|&a, &b| p_pos[a].partial_cmp(&p_pos[b]).expect("finite probabilities"));
    let total_pos = gold.iter().filter(|&&g| g == Label::Pos).count();
    if total_pos == 0 || total_pos == gold.len() {
        return 0.5;
    }
    // Predicting positive above a threshold between order[k-1] and
    // order[k]: tp/fp counted by suffix sums.
    let mut best_f1 = -1.0;
    let mut best_t = 0.5;
    let mut tp = total_pos;
    let mut fp = gold.len() - total_pos;
    let mut k = 0usize;
    // Threshold below the minimum: everything predicted positive.
    loop {
        let denom_p = tp + fp;
        let precision = if denom_p == 0 { 0.0 } else { tp as f64 / denom_p as f64 };
        let recall = tp as f64 / total_pos as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let threshold = if k == 0 {
            p_pos[order[0]] - 1e-9
        } else if k == p_pos.len() {
            p_pos[order[k - 1]] + 1e-9
        } else {
            (p_pos[order[k - 1]] + p_pos[order[k]]) / 2.0
        };
        if f1 > best_f1 {
            best_f1 = f1;
            best_t = threshold;
        }
        if k == p_pos.len() {
            break;
        }
        // Move the k-th smallest probability below the threshold.
        match gold[order[k]] {
            Label::Pos => tp -= 1,
            Label::Neg => fp -= 1,
        }
        k += 1;
    }
    best_t.clamp(0.0, 1.0)
}

/// Accuracy of `pred` against `gold`.
pub fn accuracy(pred: &[Label], gold: &[Label]) -> f64 {
    Confusion::from_pairs(pred, gold).accuracy()
}

/// F1 (positive class) of `pred` against `gold`.
pub fn f1(pred: &[Label], gold: &[Label]) -> f64 {
    Confusion::from_pairs(pred, gold).f1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: Label = Label::Pos;
    const N: Label = Label::Neg;

    #[test]
    fn perfect_predictions() {
        let gold = [P, N, P, N];
        assert_eq!(accuracy(&gold, &gold), 1.0);
        assert_eq!(f1(&gold, &gold), 1.0);
    }

    #[test]
    fn all_wrong() {
        let gold = [P, N];
        let pred = [N, P];
        assert_eq!(accuracy(&pred, &gold), 0.0);
        assert_eq!(f1(&pred, &gold), 0.0);
    }

    #[test]
    fn known_confusion() {
        // tp=2 fp=1 tn=1 fn=1
        let gold = [P, P, N, N, P];
        let pred = [P, P, P, N, N];
        let c = Confusion::from_pairs(&pred, &gold);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_never_predicting_positive() {
        let gold = [P, P, N];
        let pred = [N, N, N];
        assert_eq!(f1(&pred, &gold), 0.0);
    }

    #[test]
    fn f1_differs_from_accuracy_under_imbalance() {
        // 90% negative; constant-negative predictor: high accuracy, f1 = 0.
        let mut gold = vec![N; 9];
        gold.push(P);
        let pred = vec![N; 10];
        assert!(accuracy(&pred, &gold) > 0.85);
        assert_eq!(f1(&pred, &gold), 0.0);
    }

    #[test]
    fn metric_dispatch() {
        let gold = [P, N];
        let pred = [P, P];
        assert!((Metric::Accuracy.score(&pred, &gold) - 0.5).abs() < 1e-12);
        assert!((Metric::F1.score(&pred, &gold) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Metric::Accuracy.name(), "accuracy");
        assert_eq!(Metric::F1.name(), "f1");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[P], &[P, N]);
    }

    #[test]
    fn threshold_recovers_minority_class() {
        // 10% positives perfectly separated at p=0.4 — the 0.5 threshold
        // predicts all-negative (F1 0), the tuned threshold finds them.
        let mut p_pos = vec![0.1; 18];
        p_pos.extend([0.4, 0.4]);
        let mut gold = vec![N; 18];
        gold.extend([P, P]);
        let t = best_f1_threshold(&p_pos, &gold);
        assert!(t < 0.4 && t > 0.1, "threshold {t}");
        let pred: Vec<Label> = p_pos.iter().map(|&p| Label::from_bool(p >= t)).collect();
        assert_eq!(f1(&pred, &gold), 1.0);
    }

    #[test]
    fn threshold_degenerate_inputs() {
        assert_eq!(best_f1_threshold(&[], &[]), 0.5);
        assert_eq!(best_f1_threshold(&[0.3, 0.7], &[N, N]), 0.5);
        assert_eq!(best_f1_threshold(&[0.3, 0.7], &[P, P]), 0.5);
    }

    #[test]
    fn threshold_is_optimal_vs_grid() {
        use nemo_sparse::DetRng;
        let mut rng = DetRng::new(5);
        let n = 60;
        let gold: Vec<Label> = (0..n).map(|_| Label::from_bool(rng.bernoulli(0.3))).collect();
        let p_pos: Vec<f64> = gold
            .iter()
            .map(|&g| {
                let base: f64 = if g == P { 0.6 } else { 0.35 };
                (base + rng.gaussian() * 0.2).clamp(0.0, 1.0)
            })
            .collect();
        let t = best_f1_threshold(&p_pos, &gold);
        let f1_at = |t: f64| {
            let pred: Vec<Label> = p_pos.iter().map(|&p| Label::from_bool(p >= t)).collect();
            f1(&pred, &gold)
        };
        let best = f1_at(t);
        for k in 0..=100 {
            let grid_t = k as f64 / 100.0;
            assert!(best >= f1_at(grid_t) - 1e-9, "grid t={grid_t} beats tuned {t}");
        }
    }

    proptest! {
        #[test]
        fn prop_metrics_in_unit_interval(
            pairs in proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 1..40),
        ) {
            let pred: Vec<Label> = pairs.iter().map(|&(p, _)| Label::from_bool(p)).collect();
            let gold: Vec<Label> = pairs.iter().map(|&(_, g)| Label::from_bool(g)).collect();
            for m in [Metric::Accuracy, Metric::F1] {
                let s = m.score(&pred, &gold);
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        #[test]
        fn prop_accuracy_counts(
            pairs in proptest::collection::vec((proptest::bool::ANY, proptest::bool::ANY), 1..40),
        ) {
            let pred: Vec<Label> = pairs.iter().map(|&(p, _)| Label::from_bool(p)).collect();
            let gold: Vec<Label> = pairs.iter().map(|&(_, g)| Label::from_bool(g)).collect();
            let manual = pred.iter().zip(&gold).filter(|(p, g)| p == g).count() as f64
                / pred.len() as f64;
            prop_assert!((accuracy(&pred, &gold) - manual).abs() < 1e-12);
        }
    }
}

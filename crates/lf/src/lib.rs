//! # nemo-lf
//!
//! The labeling-function substrate of the data-programming pipeline
//! (paper Sec. 2 and 4): binary labels and votes, primitive-based labeling
//! functions `λ_{z,y}`, the primitive corpus (per-example primitive sets
//! backed by an inverted index), the `n × m` label matrix produced by
//! applying LFs to the unlabeled set, and the data-to-LF lineage record
//! that Nemo's contextualizer consumes.

#![warn(missing_docs)]

pub mod apply;
pub mod label;
pub mod lf;
pub mod lineage;
pub mod matrix;
pub mod metrics;

pub use apply::PrimitiveCorpus;
pub use label::{label_from_prob, Label, Vote, ABSTAIN};
pub use lf::PrimitiveLf;
pub use lineage::{Lineage, TrackedLf};
pub use matrix::{LabelMatrix, LfColumn, VoteSummary};
pub use metrics::{Confusion, Metric};

//! Data-to-LF lineage (paper Sec. 3, stage 2: "The lineage of these LFs to
//! the development data S_t is tracked and represented as a tuple
//! (Λ_t, S_t)").
//!
//! Nemo's contextualizer consumes this record: each LF is tied to the
//! development example the user was looking at when they wrote it, which
//! is the anchor point for the refinement radius (Eq. 4).

use crate::lf::PrimitiveLf;

/// An LF together with its development context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedLf {
    /// The labeling function.
    pub lf: PrimitiveLf,
    /// The development example `x_λ` it was created from.
    pub dev_example: u32,
    /// The interactive iteration at which it was created.
    pub iteration: u32,
}

/// Append-only lineage log for an interactive session: the sequence
/// `{(Λ_1, S_1), …, (Λ_t, S_t)}`.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    records: Vec<TrackedLf>,
}

impl Lineage {
    /// Empty lineage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an LF developed from `dev_example` at `iteration`.
    pub fn record(&mut self, lf: PrimitiveLf, dev_example: u32, iteration: u32) {
        self.records.push(TrackedLf { lf, dev_example, iteration });
    }

    /// All tracked LFs in creation order.
    pub fn tracked(&self) -> &[TrackedLf] {
        &self.records
    }

    /// Just the LFs, in creation order.
    pub fn lfs(&self) -> Vec<PrimitiveLf> {
        self.records.iter().map(|r| r.lf).collect()
    }

    /// Development example of LF `j`.
    pub fn dev_example(&self, j: usize) -> u32 {
        self.records[j].dev_example
    }

    /// Number of recorded LFs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether any LFs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether an identical LF `(z, y)` has already been recorded
    /// (duplicates are allowed — a user may rediscover the same heuristic —
    /// but callers can use this to report redundancy).
    pub fn contains_lf(&self, lf: &PrimitiveLf) -> bool {
        self.records.iter().any(|r| r.lf == *lf)
    }

    /// All development example ids seen so far, in order, with duplicates.
    pub fn dev_examples(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.dev_example).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn record_and_query() {
        let mut lin = Lineage::new();
        assert!(lin.is_empty());
        lin.record(PrimitiveLf::new(3, Label::Pos), 42, 0);
        lin.record(PrimitiveLf::new(5, Label::Neg), 7, 1);
        assert_eq!(lin.len(), 2);
        assert_eq!(lin.dev_example(0), 42);
        assert_eq!(lin.dev_example(1), 7);
        assert_eq!(
            lin.lfs(),
            vec![PrimitiveLf::new(3, Label::Pos), PrimitiveLf::new(5, Label::Neg)]
        );
        assert_eq!(lin.dev_examples(), vec![42, 7]);
    }

    #[test]
    fn contains_lf_checks_z_and_y() {
        let mut lin = Lineage::new();
        lin.record(PrimitiveLf::new(3, Label::Pos), 0, 0);
        assert!(lin.contains_lf(&PrimitiveLf::new(3, Label::Pos)));
        assert!(!lin.contains_lf(&PrimitiveLf::new(3, Label::Neg)));
        assert!(!lin.contains_lf(&PrimitiveLf::new(4, Label::Pos)));
    }

    #[test]
    fn creation_order_preserved() {
        let mut lin = Lineage::new();
        for i in 0..5u32 {
            lin.record(PrimitiveLf::new(i, Label::Pos), i * 10, i);
        }
        let iters: Vec<u32> = lin.tracked().iter().map(|r| r.iteration).collect();
        assert_eq!(iters, vec![0, 1, 2, 3, 4]);
    }
}

//! The label matrix `L ∈ {−1, 0, +1}^{n×m}` (paper Sec. 2, stage 2).
//!
//! Stored column-sparse: each LF contributes a sorted list of
//! `(example id, vote)` entries over the examples it does not abstain on.
//! Primitive LFs vote a single label over their coverage, but the column
//! representation is general: contextualized (refined) LFs have shrunken
//! coverage, and Active WeaSuL's "expert" column carries mixed votes.

use crate::apply::PrimitiveCorpus;
use crate::label::Vote;
use crate::lf::PrimitiveLf;
// lint: allow(determinism/sync-primitives): process-unique construction
// tokens for cache identity; they only gate cache validation and never
// affect what any path computes.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of process-unique [`LfColumn`] construction tokens.
// lint: allow(determinism/sync-primitives): identity tokens only decide
// whether a score cache may validate, never what any path computes.
static NEXT_COLUMN_TOKEN: AtomicU64 = AtomicU64::new(1);

fn fresh_token() -> u64 {
    NEXT_COLUMN_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// One LF's non-abstain votes: sorted by example id, votes in `{−1, +1}`.
///
/// Columns are **value-immutable under sharing**: every construction
/// stamps a process-unique `token` that acts as a cheap content-identity
/// witness — two columns with equal tokens came from the same
/// construction (clones share it) and therefore hold bitwise-equal
/// entries. The only mutating API, [`LfColumn::retain`], restamps the
/// token, so the invariant survives in-place edits. Equality is still
/// defined on the entries — the token is only an `O(1)` fast path —
/// which is what lets the contextualizer's refined-column cache
/// revalidate a column against the raw column it was filtered from
/// without rescanning either.
#[derive(Debug, Clone, Eq)]
pub struct LfColumn {
    entries: Vec<(u32, Vote)>,
    token: u64,
}

impl PartialEq for LfColumn {
    /// Content equality, with the construction-token shortcut: equal
    /// tokens imply the same (immutable) construction, so the entry scan
    /// is skipped. Distinct tokens fall back to comparing entries, so
    /// independently built columns with the same votes still compare
    /// equal — the semantics `tune_p`'s matrix dedup relies on.
    fn eq(&self, other: &Self) -> bool {
        self.token == other.token || self.entries == other.entries
    }
}

impl LfColumn {
    /// Build from entries; sorts by example id and validates votes.
    pub fn new(mut entries: Vec<(u32, Vote)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate example {} in LF column", w[0].0);
        }
        for &(_, v) in &entries {
            assert!(v == -1 || v == 1, "column vote must be ±1, got {v}");
        }
        Self { entries, token: fresh_token() }
    }

    /// Fallible [`LfColumn::new`] for untrusted input (checkpoint
    /// restore): same sorting and invariants, but malformed entries —
    /// duplicate example ids or non-±1 votes — come back as `Err` instead
    /// of a panic.
    pub fn try_new(mut entries: Vec<(u32, Vote)>) -> Result<Self, &'static str> {
        entries.sort_unstable_by_key(|&(i, _)| i);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err("duplicate example in LF column");
            }
        }
        if entries.iter().any(|&(_, v)| v != -1 && v != 1) {
            return Err("column vote must be ±1");
        }
        Ok(Self { entries, token: fresh_token() })
    }

    /// An empty (all-abstain) column.
    pub fn empty() -> Self {
        Self { entries: Vec::new(), token: fresh_token() }
    }

    /// Materialize a primitive LF's column over a corpus.
    pub fn from_lf(lf: &PrimitiveLf, corpus: &PrimitiveCorpus) -> Self {
        let sign = lf.y.sign();
        Self {
            entries: lf.coverage(corpus).iter().map(|&i| (i, sign)).collect(),
            token: fresh_token(),
        }
    }

    /// Sorted `(example, vote)` entries.
    pub fn entries(&self) -> &[(u32, Vote)] {
        &self.entries
    }

    /// Number of covered examples.
    pub fn coverage(&self) -> usize {
        self.entries.len()
    }

    /// Vote on example `i` (0 = abstain).
    pub fn vote(&self, i: u32) -> Vote {
        match self.entries.binary_search_by_key(&i, |&(e, _)| e) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0,
        }
    }

    /// Keep only entries whose example id satisfies `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(u32) -> bool) -> Self {
        Self {
            entries: self.entries.iter().copied().filter(|&(i, _)| keep(i)).collect(),
            token: fresh_token(),
        }
    }

    /// In-place [`LfColumn::filtered`]: drop entries whose example id
    /// fails `keep`. Mutation counts as a new construction — the token is
    /// restamped unconditionally (even for an identity filter), so a
    /// retained column never aliases a cache key minted for its previous
    /// contents. This is the mutation path behind
    /// [`LabelMatrix::column_mut`]'s copy-on-write access.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.entries.retain(|&(i, _)| keep(i));
        self.token = fresh_token();
    }

    /// Process-unique construction token. Equal tokens guarantee
    /// bitwise-equal entries (clones share their source's token);
    /// distinct tokens say nothing. Cross-round caches key on this to
    /// detect "same raw column as last round" in `O(1)`.
    pub fn token(&self) -> u64 {
        self.token
    }
}

/// Per-example vote counts, used by the Abstain/Disagree selection
/// baselines \[9\] and the majority-vote label model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteSummary {
    /// Number of LFs voting +1.
    pub pos: u32,
    /// Number of LFs voting −1.
    pub neg: u32,
}

impl VoteSummary {
    /// Total non-abstain votes.
    pub fn total(&self) -> u32 {
        self.pos + self.neg
    }

    /// Number of conflicting LF pairs on this example (`pos · neg`) — the
    /// disagreement measure used by the Disagree baseline.
    pub fn conflicts(&self) -> u64 {
        self.pos as u64 * self.neg as u64
    }
}

/// The label matrix: `m` LF columns over `n` examples.
///
/// Columns are stored as `Arc<LfColumn>` (copy-on-write): pushing an
/// owned column wraps it, [`LabelMatrix::push_shared`] appends an
/// existing handle without touching its vote buffer, and cloning a
/// matrix clones `m` handles instead of `m` vote vectors. This is what
/// lets the contextualizer's refined-column cache hand the same filtered
/// column to every round's grid matrix in `O(1)` — the memcpy the
/// pre-CoW representation paid per `(grid point, LF)` slot. Mutation
/// goes through [`LabelMatrix::column_mut`], which breaks sharing for
/// exactly the column being edited (`Arc::make_mut`); matrices that
/// shared that column keep its old contents. Equality, vote lookup, and
/// column borrowing are unchanged — `Arc` equality delegates to
/// [`LfColumn`]'s content equality (with its construction-token fast
/// path), so `tune_p`'s matrix dedup resolves exactly as it did over
/// owned columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelMatrix {
    columns: Vec<Arc<LfColumn>>,
    n_examples: usize,
}

impl LabelMatrix {
    /// Empty matrix over `n_examples` examples (no LFs yet).
    pub fn new(n_examples: usize) -> Self {
        Self { columns: Vec::new(), n_examples }
    }

    /// Apply a slice of primitive LFs to a corpus. Columns are
    /// materialized in parallel (each LF scans only its own postings) and
    /// appended in `lfs` order, so the result is identical to a serial
    /// loop of [`LabelMatrix::push`].
    pub fn from_lfs(lfs: &[PrimitiveLf], corpus: &PrimitiveCorpus) -> Self {
        let mut m = Self::new(corpus.len());
        let columns =
            nemo_sparse::parallel::par_map_min(lfs, 8, |_, lf| LfColumn::from_lf(lf, corpus));
        for col in columns {
            m.push(col);
        }
        m
    }

    /// Append an LF column (wrapped into a fresh shared handle).
    pub fn push(&mut self, col: LfColumn) {
        self.push_shared(Arc::new(col));
    }

    /// Append a shared LF column handle without copying its votes — the
    /// `O(1)` serve path the contextualizer's refined-column cache uses
    /// to assemble a warm round's grid matrices.
    pub fn push_shared(&mut self, col: Arc<LfColumn>) {
        if let Some(&(max, _)) = col.entries().last() {
            assert!(
                (max as usize) < self.n_examples,
                "column references example {max} ≥ n={}",
                self.n_examples
            );
        }
        self.columns.push(col);
    }

    /// Number of examples `n`.
    pub fn n_examples(&self) -> usize {
        self.n_examples
    }

    /// Number of LFs `m`.
    pub fn n_lfs(&self) -> usize {
        self.columns.len()
    }

    /// Borrow column `j`.
    pub fn column(&self, j: usize) -> &LfColumn {
        &self.columns[j]
    }

    /// The shared handle of column `j` — clone it into another matrix
    /// via [`LabelMatrix::push_shared`] for a zero-copy serve, or use
    /// `Arc::ptr_eq` to *prove* two matrices share a vote buffer (the
    /// CoW differential tests do).
    pub fn shared_column(&self, j: usize) -> &Arc<LfColumn> {
        &self.columns[j]
    }

    /// Mutable access to column `j`, copy-on-write: if the column is
    /// shared with another matrix (or a cache), its votes are deep-copied
    /// first (`Arc::make_mut`), so the edit never leaks into other
    /// holders. The clone keeps the source's construction token — sound,
    /// since contents are equal at that instant — and any actual mutation
    /// through [`LfColumn::retain`] restamps it.
    pub fn column_mut(&mut self, j: usize) -> &mut LfColumn {
        Arc::make_mut(&mut self.columns[j])
    }

    /// Iterate columns in order.
    pub fn columns(&self) -> impl Iterator<Item = &LfColumn> {
        self.columns.iter().map(|c| c.as_ref())
    }

    /// Number of column slots whose vote buffers are **pointer-shared**
    /// with `other` at the same index (`Arc::ptr_eq`). A diagnostic for
    /// CoW accounting: columns counted here were served without copying
    /// a single vote.
    pub fn shared_columns_with(&self, other: &LabelMatrix) -> usize {
        self.columns.iter().zip(&other.columns).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Vote of LF `j` on example `i`.
    pub fn vote(&self, i: u32, j: usize) -> Vote {
        self.columns[j].vote(i)
    }

    /// Per-example vote summaries (one pass over all columns).
    pub fn vote_summaries(&self) -> Vec<VoteSummary> {
        let mut out = vec![VoteSummary::default(); self.n_examples];
        for col in &self.columns {
            for &(i, v) in col.entries() {
                if v > 0 {
                    out[i as usize].pos += 1;
                } else {
                    out[i as usize].neg += 1;
                }
            }
        }
        out
    }

    /// Example ids covered by at least one LF, ascending — the training
    /// subset the end model fits on. One `O(nnz + n)` pass; aggregation
    /// paths that already scatter every entry (the label-model fused
    /// predict) derive the same list as a by-product instead of calling
    /// this.
    pub fn covered_examples(&self) -> Vec<u32> {
        let mut covered = vec![false; self.n_examples];
        for col in &self.columns {
            for &(i, _) in col.entries() {
                covered[i as usize] = true;
            }
        }
        covered.iter().enumerate().filter(|&(_, &c)| c).map(|(i, _)| i as u32).collect()
    }

    /// Fraction of examples covered by at least one LF.
    pub fn coverage_frac(&self) -> f64 {
        if self.n_examples == 0 {
            return 0.0;
        }
        let mut covered = vec![false; self.n_examples];
        for col in &self.columns {
            for &(i, _) in col.entries() {
                covered[i as usize] = true;
            }
        }
        covered.iter().filter(|&&c| c).count() as f64 / self.n_examples as f64
    }

    /// Row view: the non-abstain `(lf index, vote)` pairs for example `i`.
    /// O(m log coverage); fine for the m ≤ ~60 LFs the protocol produces.
    pub fn row(&self, i: u32) -> Vec<(usize, Vote)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(j, c)| match c.vote(i) {
                0 => None,
                v => Some((j, v)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use proptest::prelude::*;

    fn corpus() -> PrimitiveCorpus {
        PrimitiveCorpus::new(vec![vec![0], vec![0, 1], vec![1], vec![2]], 3)
    }

    #[test]
    fn from_lfs_columns_match_votes() {
        let c = corpus();
        let lfs = vec![PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)];
        let m = LabelMatrix::from_lfs(&lfs, &c);
        assert_eq!(m.n_lfs(), 2);
        assert_eq!(m.vote(0, 0), 1);
        assert_eq!(m.vote(1, 0), 1);
        assert_eq!(m.vote(1, 1), -1);
        assert_eq!(m.vote(3, 0), 0);
    }

    #[test]
    fn vote_summaries_count_correctly() {
        let c = corpus();
        let lfs = vec![PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)];
        let m = LabelMatrix::from_lfs(&lfs, &c);
        let s = m.vote_summaries();
        assert_eq!((s[0].pos, s[0].neg), (1, 0));
        assert_eq!((s[1].pos, s[1].neg), (1, 1));
        assert_eq!(s[1].conflicts(), 1);
        assert_eq!((s[3].pos, s[3].neg), (0, 0));
    }

    #[test]
    fn coverage_frac() {
        let c = corpus();
        let m = LabelMatrix::from_lfs(&[PrimitiveLf::new(0, Label::Pos)], &c);
        assert!((m.coverage_frac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn covered_examples_sorted_and_deduplicated() {
        let c = corpus();
        let lfs = vec![PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)];
        let m = LabelMatrix::from_lfs(&lfs, &c);
        // LF0 covers {0,1}, LF1 covers {1,2}; example 3 stays uncovered.
        assert_eq!(m.covered_examples(), vec![0, 1, 2]);
        assert_eq!(LabelMatrix::new(4).covered_examples(), Vec::<u32>::new());
        // Matches the vote-summary derivation the end model used to do.
        let from_summaries: Vec<u32> = m
            .vote_summaries()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.total() > 0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(m.covered_examples(), from_summaries);
    }

    #[test]
    fn row_view() {
        let c = corpus();
        let lfs = vec![PrimitiveLf::new(0, Label::Pos), PrimitiveLf::new(1, Label::Neg)];
        let m = LabelMatrix::from_lfs(&lfs, &c);
        assert_eq!(m.row(1), vec![(0, 1), (1, -1)]);
        assert_eq!(m.row(3), vec![]);
    }

    #[test]
    fn filtered_column_subset() {
        let col = LfColumn::new(vec![(0, 1), (5, 1), (9, 1)]);
        let f = col.filtered(|i| i != 5);
        assert_eq!(f.entries(), &[(0, 1), (9, 1)]);
    }

    #[test]
    fn tokens_unique_per_construction_shared_by_clones() {
        let a = LfColumn::new(vec![(0, 1), (2, -1)]);
        let b = LfColumn::new(vec![(0, 1), (2, -1)]);
        assert_ne!(a.token(), b.token(), "constructions must get distinct tokens");
        assert_eq!(a, b, "content equality must ignore tokens");
        let c = a.clone();
        assert_eq!(c.token(), a.token(), "clones share the construction token");
        assert_eq!(c, a);
        let f = a.filtered(|_| true);
        assert_ne!(f.token(), a.token(), "filtering is a new construction");
        assert_eq!(f, a, "identity filter preserves content equality");
    }

    #[test]
    fn unequal_columns_compare_unequal() {
        let a = LfColumn::new(vec![(0, 1), (2, -1)]);
        let b = LfColumn::new(vec![(0, 1)]);
        let c = LfColumn::new(vec![(0, 1), (2, 1)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "duplicate example")]
    fn column_rejects_duplicates() {
        LfColumn::new(vec![(1, 1), (1, -1)]);
    }

    #[test]
    #[should_panic(expected = "must be ±1")]
    fn column_rejects_abstain_entries() {
        LfColumn::new(vec![(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "references example")]
    fn push_validates_bounds() {
        let mut m = LabelMatrix::new(2);
        m.push(LfColumn::new(vec![(5, 1)]));
    }

    #[test]
    #[should_panic(expected = "references example")]
    fn push_shared_validates_bounds() {
        let mut m = LabelMatrix::new(2);
        m.push_shared(Arc::new(LfColumn::new(vec![(5, 1)])));
    }

    #[test]
    fn retain_filters_in_place_and_restamps_token() {
        let mut col = LfColumn::new(vec![(0, 1), (5, 1), (9, -1)]);
        let before = col.token();
        col.retain(|i| i != 5);
        assert_eq!(col.entries(), &[(0, 1), (9, -1)]);
        assert_ne!(col.token(), before, "mutation must mint a new token");
        let stable = col.token();
        col.retain(|_| true);
        assert_ne!(col.token(), stable, "even identity retains restamp");
    }

    #[test]
    fn matrix_clone_shares_column_buffers() {
        let mut m = LabelMatrix::new(10);
        m.push(LfColumn::new(vec![(0, 1), (4, -1)]));
        m.push(LfColumn::new(vec![(2, 1)]));
        let c = m.clone();
        assert_eq!(c, m);
        assert_eq!(c.shared_columns_with(&m), 2, "clone must share every vote buffer");
        for j in 0..2 {
            assert!(Arc::ptr_eq(c.shared_column(j), m.shared_column(j)));
        }
    }

    #[test]
    fn push_shared_is_pointer_preserving() {
        let col = Arc::new(LfColumn::new(vec![(1, 1), (3, 1)]));
        let mut a = LabelMatrix::new(5);
        let mut b = LabelMatrix::new(5);
        a.push_shared(Arc::clone(&col));
        b.push_shared(Arc::clone(&col));
        assert!(Arc::ptr_eq(a.shared_column(0), b.shared_column(0)));
        assert_eq!(a.shared_columns_with(&b), 1);
        assert_eq!(a.vote(1, 0), 1);
    }

    #[test]
    fn column_mut_copies_on_write_only_when_shared() {
        let mut a = LabelMatrix::new(10);
        a.push(LfColumn::new(vec![(0, 1), (4, -1), (7, 1)]));
        a.push(LfColumn::new(vec![(2, 1)]));
        let b = a.clone();
        // Mutate a shared column: `a` diverges, `b` keeps the old votes,
        // and the untouched column stays pointer-shared.
        a.column_mut(0).retain(|i| i != 4);
        assert_eq!(a.column(0).entries(), &[(0, 1), (7, 1)]);
        assert_eq!(b.column(0).entries(), &[(0, 1), (4, -1), (7, 1)], "CoW must not leak");
        assert!(!Arc::ptr_eq(a.shared_column(0), b.shared_column(0)));
        assert!(Arc::ptr_eq(a.shared_column(1), b.shared_column(1)));
        assert_eq!(a.shared_columns_with(&b), 1);
        // Unshared mutation must not reallocate the handle.
        let ptr = Arc::as_ptr(a.shared_column(0));
        a.column_mut(0).retain(|i| i != 7);
        assert_eq!(Arc::as_ptr(a.shared_column(0)), ptr, "exclusive column mutates in place");
        assert_eq!(a.column(0).entries(), &[(0, 1)]);
    }

    proptest! {
        #[test]
        fn prop_summaries_match_row_scan(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 0..5), 1..12),
            lf_specs in proptest::collection::vec((0u32..6, proptest::bool::ANY), 0..6),
        ) {
            let c = PrimitiveCorpus::new(docs, 6);
            let lfs: Vec<PrimitiveLf> = lf_specs
                .into_iter()
                .map(|(z, pos)| PrimitiveLf::new(z, Label::from_bool(pos)))
                .collect();
            let m = LabelMatrix::from_lfs(&lfs, &c);
            let summaries = m.vote_summaries();
            for i in 0..c.len() as u32 {
                let row = m.row(i);
                let pos = row.iter().filter(|&&(_, v)| v > 0).count() as u32;
                let neg = row.iter().filter(|&&(_, v)| v < 0).count() as u32;
                prop_assert_eq!(summaries[i as usize].pos, pos);
                prop_assert_eq!(summaries[i as usize].neg, neg);
            }
        }
    }
}

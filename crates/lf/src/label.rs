//! Binary labels and weak-supervision votes.
//!
//! The paper focuses on binary classification with `Y = {−1, +1}` and the
//! abstain value `0` (Sec. 2 / "Paper Scope"). [`Label`] is the strongly
//! typed label; [`Vote`] (an `i8` in `{−1, 0, +1}`) is what LFs emit.

/// The abstain vote `λ(x) = 0`.
pub const ABSTAIN: Vote = 0;

/// A weak-supervision vote: `−1`, `+1`, or `0` (abstain).
pub type Vote = i8;

/// A binary class label, `Y = {−1, +1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// The negative class (−1).
    Neg,
    /// The positive class (+1).
    Pos,
}

impl Label {
    /// Both labels, in index order (`Neg`, `Pos`).
    pub const ALL: [Label; 2] = [Label::Neg, Label::Pos];

    /// Signed representation: −1 or +1.
    #[inline]
    pub fn sign(self) -> i8 {
        match self {
            Label::Neg => -1,
            Label::Pos => 1,
        }
    }

    /// Dense index: `Neg → 0`, `Pos → 1` (used for probability arrays
    /// `[P(y=−1), P(y=+1)]`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Label::Neg => 0,
            Label::Pos => 1,
        }
    }

    /// Parse from a signed value; `0` (abstain) and other values are `None`.
    #[inline]
    pub fn from_sign(v: i8) -> Option<Label> {
        match v {
            -1 => Some(Label::Neg),
            1 => Some(Label::Pos),
            _ => None,
        }
    }

    /// Construct from a dense index (0 = Neg, 1 = Pos).
    #[inline]
    pub fn from_index(i: usize) -> Label {
        match i {
            0 => Label::Neg,
            1 => Label::Pos,
            // invariant: callers index with argmax over 2 classes.
            _ => panic!("label index {i} out of range"),
        }
    }

    /// The opposite label.
    #[inline]
    pub fn flip(self) -> Label {
        match self {
            Label::Neg => Label::Pos,
            Label::Pos => Label::Neg,
        }
    }

    /// Construct from a boolean "is positive".
    #[inline]
    pub fn from_bool(is_pos: bool) -> Label {
        if is_pos {
            Label::Pos
        } else {
            Label::Neg
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Neg => write!(f, "-1"),
            Label::Pos => write!(f, "+1"),
        }
    }
}

/// Convert a posterior `P(y = +1)` into a hard label with 0.5 threshold
/// (ties go positive, deterministically).
#[inline]
pub fn label_from_prob(p_pos: f64) -> Label {
    Label::from_bool(p_pos >= 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_index_roundtrip() {
        for l in Label::ALL {
            assert_eq!(Label::from_sign(l.sign()), Some(l));
            assert_eq!(Label::from_index(l.index()), l);
        }
    }

    #[test]
    fn abstain_is_not_a_label() {
        assert_eq!(Label::from_sign(0), None);
        assert_eq!(Label::from_sign(2), None);
    }

    #[test]
    fn flip_is_involution() {
        for l in Label::ALL {
            assert_eq!(l.flip().flip(), l);
            assert_ne!(l.flip(), l);
        }
    }

    #[test]
    fn display_signed() {
        assert_eq!(Label::Pos.to_string(), "+1");
        assert_eq!(Label::Neg.to_string(), "-1");
    }

    #[test]
    fn prob_threshold() {
        assert_eq!(label_from_prob(0.49), Label::Neg);
        assert_eq!(label_from_prob(0.5), Label::Pos);
        assert_eq!(label_from_prob(0.51), Label::Pos);
    }

    #[test]
    fn from_bool_matches_sign() {
        assert_eq!(Label::from_bool(true).sign(), 1);
        assert_eq!(Label::from_bool(false).sign(), -1);
    }
}

//! The primitive corpus: per-example primitive sets with an inverted index.
//!
//! This is the system's view of the unlabeled set `U` for everything
//! LF-related: LF application, coverage lookup, candidate-LF enumeration
//! for the simulated user and for SEU. Feature vectors (TF-IDF / dense
//! embeddings) live alongside in `nemo-data`; the corpus here only knows
//! primitive containment, exactly the information the LF family needs.

use nemo_sparse::InvertedIndex;

/// Per-example primitive sets over a primitive domain `Z` of size
/// `n_primitives`, with an inverted index `z → covered examples`.
#[derive(Debug, Clone)]
pub struct PrimitiveCorpus {
    docs: Vec<Vec<u32>>,
    index: InvertedIndex,
    n_primitives: usize,
}

impl PrimitiveCorpus {
    /// Build from per-example primitive-id lists. Lists are sorted and
    /// deduplicated internally (containment is set semantics); the
    /// per-document normalization runs in parallel for large corpora.
    pub fn new(mut docs: Vec<Vec<u32>>, n_primitives: usize) -> Self {
        nemo_sparse::parallel::par_for_each_mut(&mut docs, |_, d| {
            d.sort_unstable();
            d.dedup();
        });
        for d in &docs {
            if let Some(&max) = d.last() {
                assert!(
                    (max as usize) < n_primitives,
                    "primitive {max} out of domain {n_primitives}"
                );
            }
        }
        let index = InvertedIndex::from_sorted_docs(&docs, n_primitives);
        Self { docs, index, n_primitives }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Size of the primitive domain `Z`.
    pub fn n_primitives(&self) -> usize {
        self.n_primitives
    }

    /// Sorted primitive ids of example `i` — the candidate primitives a
    /// user looking at `x_i` can choose from.
    #[inline]
    pub fn primitives_of(&self, i: usize) -> &[u32] {
        &self.docs[i]
    }

    /// The inverted index over the corpus.
    #[inline]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Whether example `i` contains primitive `z`.
    #[inline]
    pub fn contains(&self, i: usize, z: u32) -> bool {
        self.docs[i].binary_search(&z).is_ok()
    }

    /// Total primitive occurrences (nnz of the containment matrix).
    pub fn total_postings(&self) -> usize {
        self.index.total_postings()
    }

    /// Mean number of primitives per example.
    pub fn mean_primitives_per_example(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.total_postings() as f64 / self.docs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dedups_and_sorts() {
        let c = PrimitiveCorpus::new(vec![vec![3, 1, 3, 0]], 4);
        assert_eq!(c.primitives_of(0), &[0, 1, 3]);
    }

    #[test]
    fn contains_binary_search() {
        let c = PrimitiveCorpus::new(vec![vec![5, 2, 9]], 10);
        assert!(c.contains(0, 5));
        assert!(!c.contains(0, 4));
    }

    #[test]
    fn index_consistent_with_docs() {
        let c = PrimitiveCorpus::new(vec![vec![0, 1], vec![1], vec![2]], 3);
        assert_eq!(c.index().postings(1), &[0, 1]);
        assert_eq!(c.index().postings(0), &[0]);
        assert_eq!(c.index().postings(2), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn rejects_out_of_domain() {
        PrimitiveCorpus::new(vec![vec![4]], 4);
    }

    #[test]
    fn stats() {
        let c = PrimitiveCorpus::new(vec![vec![0, 1], vec![1]], 3);
        assert_eq!(c.total_postings(), 3);
        assert!((c.mean_primitives_per_example() - 1.5).abs() < 1e-12);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    proptest! {
        #[test]
        fn prop_contains_matches_index(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 0..8), 1..10),
        ) {
            let c = PrimitiveCorpus::new(docs, 12);
            for z in 0..12u32 {
                for i in 0..c.len() {
                    let via_contains = c.contains(i, z);
                    let via_index = c.index().postings(z).binary_search(&(i as u32)).is_ok();
                    prop_assert_eq!(via_contains, via_index);
                }
            }
        }
    }
}

//! Primitive-based labeling functions (paper Sec. 4, "System Configuration
//! and Inputs"):
//!
//! ```text
//! λ_{z,y}(x):  return y if x contains z else abstain
//! ```
//!
//! where `z ∈ Z` is a domain-specific primitive (keyword id for text,
//! object-annotation id for images) and `y ∈ Y` a target label. This family
//! absorbs any uni-polar LF, since the primitive domain may contain
//! arbitrary black-box indicator transformations of the input.

use crate::apply::PrimitiveCorpus;
use crate::label::{Label, Vote, ABSTAIN};

/// A primitive-based labeling function `λ_{z,y}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimitiveLf {
    /// Primitive id in the configured primitive domain `Z`.
    pub z: u32,
    /// Target label emitted on every covered example.
    pub y: Label,
}

impl PrimitiveLf {
    /// Construct `λ_{z,y}`.
    pub fn new(z: u32, y: Label) -> Self {
        Self { z, y }
    }

    /// Vote on a single example given its primitive set (sorted ids).
    #[inline]
    pub fn vote_on_set(&self, primitives: &[u32]) -> Vote {
        if primitives.binary_search(&self.z).is_ok() {
            self.y.sign()
        } else {
            ABSTAIN
        }
    }

    /// Vote on example `i` of a corpus.
    #[inline]
    pub fn vote(&self, corpus: &PrimitiveCorpus, i: usize) -> Vote {
        self.vote_on_set(corpus.primitives_of(i))
    }

    /// The example ids this LF covers (labels non-abstain), via the
    /// corpus's inverted index — `O(1)` lookup, no scan.
    pub fn coverage<'a>(&self, corpus: &'a PrimitiveCorpus) -> &'a [u32] {
        corpus.index().postings(self.z)
    }

    /// Coverage fraction over the corpus.
    pub fn coverage_frac(&self, corpus: &PrimitiveCorpus) -> f64 {
        if corpus.is_empty() {
            return 0.0;
        }
        self.coverage(corpus).len() as f64 / corpus.len() as f64
    }

    /// Empirical accuracy against a label vector, over covered examples
    /// only. Returns `None` when the LF covers nothing.
    pub fn accuracy_against(&self, corpus: &PrimitiveCorpus, labels: &[Label]) -> Option<f64> {
        let cov = self.coverage(corpus);
        if cov.is_empty() {
            return None;
        }
        let correct = cov.iter().filter(|&&i| labels[i as usize] == self.y).count();
        Some(correct as f64 / cov.len() as f64)
    }
}

impl std::fmt::Display for PrimitiveLf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "λ(z={}, y={})", self.z, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> PrimitiveCorpus {
        PrimitiveCorpus::new(vec![vec![0, 1], vec![1, 2], vec![2], vec![]], 4)
    }

    #[test]
    fn vote_respects_containment() {
        let c = corpus();
        let lf = PrimitiveLf::new(1, Label::Pos);
        assert_eq!(lf.vote(&c, 0), 1);
        assert_eq!(lf.vote(&c, 1), 1);
        assert_eq!(lf.vote(&c, 2), ABSTAIN);
        assert_eq!(lf.vote(&c, 3), ABSTAIN);
    }

    #[test]
    fn negative_lf_votes_minus_one() {
        let c = corpus();
        let lf = PrimitiveLf::new(2, Label::Neg);
        assert_eq!(lf.vote(&c, 1), -1);
        assert_eq!(lf.vote(&c, 0), ABSTAIN);
    }

    #[test]
    fn coverage_from_index() {
        let c = corpus();
        let lf = PrimitiveLf::new(2, Label::Pos);
        assert_eq!(lf.coverage(&c), &[1, 2]);
        assert!((lf.coverage_frac(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_empty_for_unseen_primitive() {
        let c = corpus();
        let lf = PrimitiveLf::new(3, Label::Pos);
        assert!(lf.coverage(&c).is_empty());
        assert_eq!(lf.accuracy_against(&c, &[Label::Pos; 4]), None);
    }

    #[test]
    fn accuracy_against_ground_truth() {
        let c = corpus();
        let labels = [Label::Pos, Label::Neg, Label::Neg, Label::Pos];
        let lf = PrimitiveLf::new(1, Label::Pos); // covers 0 (Pos ✓), 1 (Neg ✗)
        assert_eq!(lf.accuracy_against(&c, &labels), Some(0.5));
        let lf2 = PrimitiveLf::new(2, Label::Neg); // covers 1, 2 both Neg
        assert_eq!(lf2.accuracy_against(&c, &labels), Some(1.0));
    }

    #[test]
    fn display_format() {
        let lf = PrimitiveLf::new(7, Label::Neg);
        assert_eq!(lf.to_string(), "λ(z=7, y=-1)");
    }
}

//! Select by Expected Utility (paper Sec. 4.2, Eq. 1).
//!
//! ```text
//! x* = argmax_{x ∈ U}  E_{P(λ|x)} [ Ψ_t(λ) ]
//! ```
//!
//! The expectation decomposes over the candidate LF family of `x` — all
//! `(z, y)` pairs with `z` contained in `x` (Eq. 2's denominator runs over
//! this *joint* set):
//!
//! ```text
//! EU(x) = [ Σ_{z∈x} Σ_y P(y) · w(acc_{z,y}) · Ψ_t(λ_{z,y}) ] / [ Σ_{z∈x} Σ_y w(acc_{z,y}) ]
//! ```
//!
//! Two structural consequences confirm this reading against the paper's
//! own numbers:
//!
//! 1. With accuracy weights, `acc_{z,+} + acc_{z,−} = 1`, so the
//!    denominator is exactly `|x|` and a *neutral* primitive
//!    (`acc ≈ 0.5` both ways) contributes `≈ 0` — junk keywords
//!    self-cancel instead of injecting noise.
//! 2. With uniform weights (the Table 6 ablation), `Ψ(λ_{z,−}) =
//!    −Ψ(λ_{z,+})` makes every example's score cancel to zero, so
//!    selection degenerates to random tie-breaking — which is precisely
//!    why the paper's Table 6 "Uniform" column equals its Table 2
//!    "Snorkel" (random) column on five of six datasets.
//!
//! **Fast path** (DESIGN.md §3): a single pass over the inverted index
//! accumulates per-primitive aggregates ([`PrimAgg`]) from which both
//! `Ψ_t(λ_{z,y})` and `acc(λ_{z,y})` are O(1); scoring all examples then
//! costs `O(nnz(U))` total. Inside a [`crate::session::Session`] the
//! aggregates are additionally maintained *incrementally* across rounds,
//! and scoring goes through a per-round [`ScoreTable`] (per-primitive
//! weight/utility products) evaluated in parallel over the pool. A naive
//! per-example reference implementation is kept for differential testing.
//!
//! **Dirty-set path** ([`SeuScoring::DirtySet`], the default): the
//! selector keeps the score table *and* every candidate's score
//! components (weighted-utility numerator, weight-mass denominator)
//! cached across rounds. A candidate's utility depends only on the table
//! rows of its primitives, so after a delta-sync the selector asks the
//! session's [`crate::session::SeuAggregates`] which primitives changed
//! ([`crate::session::SeuAggregates::dirty_prims_since`]), refills
//! exactly those rows, and applies each changed row to its covered
//! candidates as one fused `(Δnum, Δden)` update per posting —
//! `O(Σ_{z dirty} df(z) + n)` per round against the full rescore's
//! `O(nnz(U))`. Candidates touched by no dirty row keep their cached
//! components bitwise. The in-place updates drift by at most one
//! rounding step each; the cache re-anchors with an exact recompute
//! (bit-identical to [`SeuScoring::Full`]) on a fixed cadence, after
//! aggregate rebuilds, and when the dirty rows cover the entire posting
//! mass. Delta rounds — including real learning rounds, where the label
//! model moves most covered posteriors — agree with the full rescore
//! within the bounded drift, differential-tested to `1e-9` in
//! `tests/incremental_differential.rs` and end-to-end in
//! `tests/incremental_paths.rs`.

use crate::config::SeuScoring;
use crate::idp::{SelectionView, Selector};
use crate::user_model::UserModelKind;
use crate::utility::{PrimAgg, UtilityKind};
use nemo_lf::Label;
use nemo_sparse::stats::argmax_set;
use nemo_sparse::DetRng;

/// Cumulative accounting of the dirty-set score cache (speedup evidence
/// for `BENCH_kernel.json`'s `seu_dirty` section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirtyScoreStats {
    /// Scoring rounds served by the cache (including the one that built
    /// it).
    pub rounds: u64,
    /// Rounds that recomputed the whole pool exactly (cache build,
    /// aggregate rebuild, dirty-majority bail, or periodic re-anchor).
    pub full_rescores: u64,
    /// Rounds served by incidence-level delta application.
    pub delta_rounds: u64,
    /// Score-table rows refilled by delta rounds.
    pub rows_refreshed: u64,
    /// Posting-level fused updates applied by delta rounds (the total
    /// delta-path work; compare against `full_rescores`-free rounds of
    /// `nnz(U)` each).
    pub incidence_updates: u64,
}

/// Delta rounds between forced exact recomputations of the cached
/// numerator/denominator sums: each in-place update adds at most one
/// rounding step per touched sum, so this bounds drift exactly the way
/// the session bounds its aggregate drift.
const SCORE_ANCHOR_ROUNDS: usize = 64;

/// The cross-round score cache behind [`SeuScoring::DirtySet`]: the last
/// round's table, per-example score components, and full-pool utilities,
/// keyed to one [`crate::session::SeuAggregates`] instance by `(id,
/// generation)` and to the selector configuration that produced it.
///
/// `num[i]`/`den[i]` hold `Σ_{z∈x_i} (π₋·wu[z][−] + π₊·wu[z][+])` and
/// `Σ_{z∈x_i} (w[z][−] + w[z][+])` — the two sums `tabled_score` folds —
/// so a changed table row can be applied to every covered candidate as a
/// single fused in-place update instead of a full rescore of that
/// candidate.
#[derive(Debug, Clone)]
struct ScoreCache {
    aggs_id: u64,
    generation: u64,
    lineage_len: usize,
    user_model: UserModelKind,
    utility: UtilityKind,
    table: ScoreTable,
    num: Vec<f64>,
    den: Vec<f64>,
    scores: Vec<f64>,
    /// `has_prims[i]` — candidate `i` has a non-empty primitive set
    /// (empty ones score `NEG_INFINITY` and never change).
    has_prims: Vec<bool>,
    delta_rounds_since_anchor: usize,
    stats: DirtyScoreStats,
}

/// The SEU development-data selector.
#[derive(Debug, Clone, Default)]
pub struct SeuSelector {
    /// User-model variant (accuracy-weighted by default; Table 6 ablation
    /// uses uniform).
    pub user_model: UserModelKind,
    /// Utility variant (full Eq. 3 by default; Table 7 ablations).
    pub utility: UtilityKind,
    /// Scoring mode: cached dirty-set rescoring (default) or full-pool
    /// rescore every round (the differential-test reference).
    pub scoring: SeuScoring,
    cache: Option<ScoreCache>,
}

impl SeuSelector {
    /// Construct the default (paper) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct with explicit user-model and utility variants (the
    /// Table 6/7 ablations).
    pub fn with(user_model: UserModelKind, utility: UtilityKind) -> Self {
        Self { user_model, utility, ..Self::default() }
    }

    /// Builder-style scoring-mode override.
    pub fn with_scoring(mut self, scoring: SeuScoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Accounting of the dirty-set score cache so far (zeros until the
    /// cache first builds).
    pub fn dirty_stats(&self) -> DirtyScoreStats {
        self.cache.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Per-primitive aggregates over the training pool: one pass over the
    /// inverted index postings.
    pub fn primitive_aggregates(view: &SelectionView<'_>) -> Vec<PrimAgg> {
        let index = view.ds.train.corpus.index();
        let psi = view.outputs.train_posterior.entropies();
        let yhat = view.outputs.yhat_signs();
        let mut aggs = vec![PrimAgg::default(); index.n_primitives()];
        for (z, postings) in index.iter_nonempty() {
            let agg = &mut aggs[z as usize];
            for &i in postings {
                agg.add(psi[i as usize], yhat[i as usize]);
            }
        }
        aggs
    }

    /// Expected utility of showing example `x`, given precomputed
    /// aggregates. Returns `NEG_INFINITY` for examples without candidate
    /// primitives (no LF can be extracted from them).
    pub fn expected_utility(&self, view: &SelectionView<'_>, aggs: &[PrimAgg], x: usize) -> f64 {
        let prims = view.ds.train.corpus.primitives_of(x);
        if prims.is_empty() {
            return f64::NEG_INFINITY;
        }
        let prior = view.ds.prior();
        let mut weighted = 0.0;
        let mut total_w = 0.0;
        for &z in prims {
            let agg = &aggs[z as usize];
            if agg.df == 0 {
                continue;
            }
            for y in Label::ALL {
                let w = self.user_model.weight(agg.accuracy(y));
                if w <= 0.0 {
                    continue;
                }
                // An LF already in the collection supplies zero *new*
                // supervision: its votes are duplicated, not added. The
                // sequential IDP setting exists precisely to let the
                // selector "avoid the user spending extra effort in
                // designing redundant LFs" (paper Sec. 3), so collected
                // (z, y) pairs carry zero utility. The weight still
                // enters the normalizer — the user may well re-pick that
                // primitive, wasting the iteration.
                let utility = if view.lineage.contains_lf(&nemo_lf::PrimitiveLf::new(z, y)) {
                    0.0
                } else {
                    self.utility.value(agg, y)
                };
                weighted += prior[y.index()] * w * utility;
                total_w += w;
            }
        }
        if self.user_model.normalized() {
            if total_w > 0.0 {
                weighted / total_w
            } else {
                0.0
            }
        } else {
            weighted
        }
    }

    /// Naive reference: recompute every LF's utility by scanning its
    /// coverage list directly (no shared aggregates). Used by tests to
    /// verify the fast path.
    pub fn expected_utility_naive(&self, view: &SelectionView<'_>, x: usize) -> f64 {
        let corpus = &view.ds.train.corpus;
        let prims = corpus.primitives_of(x);
        if prims.is_empty() {
            return f64::NEG_INFINITY;
        }
        let psi = view.outputs.train_posterior.entropies();
        let yhat = view.outputs.yhat_signs();
        let prior = view.ds.prior();
        let mut weighted = 0.0;
        let mut total_w = 0.0;
        for &z in prims {
            let cov = corpus.index().postings(z);
            if cov.is_empty() {
                continue;
            }
            for y in Label::ALL {
                let n_match = cov.iter().filter(|&&i| yhat[i as usize] == y.sign()).count();
                let acc = n_match as f64 / cov.len() as f64;
                let w = self.user_model.weight(acc);
                if w <= 0.0 {
                    continue;
                }
                let utility = if view.lineage.contains_lf(&nemo_lf::PrimitiveLf::new(z, y)) {
                    0.0
                } else {
                    self.utility.value_naive(y, cov, &psi, &yhat)
                };
                weighted += prior[y.index()] * w * utility;
                total_w += w;
            }
        }
        if self.user_model.normalized() {
            if total_w > 0.0 {
                weighted / total_w
            } else {
                0.0
            }
        } else {
            weighted
        }
    }
}

/// Per-primitive, per-label scoring tables derived from the aggregates:
/// `w[z][y]` is the user-model weight of `λ_{z,y}` and `wu[z][y]` its
/// weight × utility product (zero for collected or zero-weight LFs).
///
/// Building the table costs `O(|Z|)` once per selection round and moves
/// every per-candidate branch — accuracy, weight, collected-LF lookup,
/// utility variant — out of the per-occurrence scoring loop, which then
/// reduces to two fused multiply-adds per `(example, primitive)` slot.
/// Under [`SeuScoring::DirtySet`] the table survives across rounds and
/// only dirty rows are refilled.
#[derive(Debug, Clone)]
pub struct ScoreTable {
    w: Vec<[f64; 2]>,
    wu: Vec<[f64; 2]>,
}

impl ScoreTable {
    /// Number of primitive rows.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// The table row of one candidate LF `λ_{z,y}`: `(weight, weight ×
    /// utility)`. This is the batched-candidate-evaluation hook the IWS
    /// engine ([`crate::engines::IwsEngine`]) uses to fold SEU's
    /// model-improvement utility into its candidate ranking without
    /// re-deriving the aggregates.
    pub fn lf_row(&self, z: u32, y: Label) -> (f64, f64) {
        (self.w[z as usize][y.index()], self.wu[z as usize][y.index()])
    }
}

/// Expected utility of a candidate from its primitive rows — the shared
/// branch-free inner loop of the full and dirty-set paths (kept a free
/// function so the dirty-set revalidation can score under a split borrow
/// of the cache).
#[inline]
fn tabled_score(table: &ScoreTable, prior: [f64; 2], normalized: bool, prims: &[u32]) -> f64 {
    if prims.is_empty() {
        return f64::NEG_INFINITY;
    }
    let mut weighted = 0.0;
    let mut total_w = 0.0;
    for &z in prims {
        let zw = &table.w[z as usize];
        let zwu = &table.wu[z as usize];
        weighted += prior[0] * zwu[0] + prior[1] * zwu[1];
        total_w += zw[0] + zw[1];
    }
    if normalized {
        if total_w > 0.0 {
            weighted / total_w
        } else {
            0.0
        }
    } else {
        weighted
    }
}

/// Fill one table row from its aggregate (and the collected-LF set) — a
/// free function so the dirty-set revalidation can refill rows under a
/// mutable borrow of the score cache.
fn fill_table_row(
    user_model: UserModelKind,
    utility: UtilityKind,
    view: &SelectionView<'_>,
    aggs: &[PrimAgg],
    table: &mut ScoreTable,
    z: usize,
) {
    let agg = &aggs[z];
    let (mut w, mut wu) = ([0.0; 2], [0.0; 2]);
    if agg.df != 0 {
        for y in Label::ALL {
            let weight = user_model.weight(agg.accuracy(y));
            if weight <= 0.0 {
                continue;
            }
            // Collected (z, y) pairs carry zero utility (see
            // `expected_utility`); their weight still normalizes.
            let value = if view.lineage.contains_lf(&nemo_lf::PrimitiveLf::new(z as u32, y)) {
                0.0
            } else {
                utility.value(agg, y)
            };
            w[y.index()] = weight;
            wu[y.index()] = weight * value;
        }
    }
    table.w[z] = w;
    table.wu[z] = wu;
}

impl SeuSelector {
    /// Build the per-primitive scoring table for the current round.
    pub fn score_table(&self, view: &SelectionView<'_>, aggs: &[PrimAgg]) -> ScoreTable {
        let mut table =
            ScoreTable { w: vec![[0.0; 2]; aggs.len()], wu: vec![[0.0; 2]; aggs.len()] };
        for z in 0..aggs.len() {
            if aggs[z].df != 0 {
                fill_table_row(self.user_model, self.utility, view, aggs, &mut table, z);
            }
        }
        table
    }

    /// Expected utility of example `x` from a prebuilt [`ScoreTable`] —
    /// the branch-free inner loop of the fast path.
    pub fn expected_utility_tabled(
        &self,
        view: &SelectionView<'_>,
        table: &ScoreTable,
        x: usize,
    ) -> f64 {
        tabled_score(
            table,
            view.ds.prior(),
            self.user_model.normalized(),
            view.ds.train.corpus.primitives_of(x),
        )
    }

    /// Expected utility of every available example, in `avail` order.
    ///
    /// Scoring is embarrassingly parallel: each example reads only the
    /// shared table. [`nemo_sparse::parallel::par_map`] returns results
    /// in input order, so the parallel scores are bit-identical to a
    /// serial scan (differential-tested in
    /// `tests/session_differential.rs`).
    pub fn scores(&self, view: &SelectionView<'_>, aggs: &[PrimAgg], avail: &[usize]) -> Vec<f64> {
        let table = self.score_table(view, aggs);
        nemo_sparse::parallel::par_map(avail, |_, &x| self.expected_utility_tabled(view, &table, x))
    }

    /// Full-pool expected utilities served from the dirty-set cache, or
    /// `None` when the view carries no session aggregates (stand-alone
    /// views have no dirty log to revalidate against).
    ///
    /// The cache is keyed to the aggregate cache's `(id, generation)` and
    /// to this selector's configuration. On a hit, only the table rows of
    /// primitives reported dirty by [`crate::session::SeuAggregates::dirty_prims_since`]
    /// (plus those of LFs collected since the snapshot — a new LF zeroes
    /// its pair's utility) are refilled, and each changed row is applied
    /// to its covered candidates as one fused `(Δnum, Δden)` update per
    /// posting — `O(Σ_{z dirty} df(z) + n)` per round instead of the
    /// `O(nnz(U))` full rescore. Rows that refill to bitwise-identical
    /// values skip their postings entirely.
    ///
    /// The in-place sums pick up at most one rounding step per update, so
    /// delta-round scores match an exact recompute within fp-drift
    /// tolerance (differential-tested at `1e-9`); the cache re-anchors
    /// with an exact full recompute — bit-identical to
    /// [`SeuScoring::Full`] — every 64 (`SCORE_ANCHOR_ROUNDS`) delta
    /// rounds, after any aggregate rebuild, and when the dirty rows cover
    /// the entire posting mass (where delta application could only cost
    /// more than the rescore it avoids).
    pub fn scores_cached(&mut self, view: &SelectionView<'_>) -> Option<&[f64]> {
        let seu = view.aggs?;
        let aggs = seu.aggs();
        let n = view.ds.train.n();
        let prior = view.ds.prior();
        let normalized = self.user_model.normalized();
        let reusable = self.cache.as_ref().is_some_and(|c| {
            c.aggs_id == seu.id()
                && c.scores.len() == n
                && c.table.len() == aggs.len()
                && c.lineage_len <= view.lineage.len()
                && c.user_model == self.user_model
                && c.utility == self.utility
        });
        // Copy the snapshot keys out so the early-exit check below doesn't
        // pin an immutable borrow of the cache across the rebuild arm.
        let snapshot = self.cache.as_ref().map(|c| (c.generation, c.lineage_len));
        let unchanged = reusable && snapshot == Some((seu.generation(), view.lineage.len()));
        if unchanged {
            // Nothing moved since the snapshot (idempotent re-query, or a
            // learning round that left the model state untouched — e.g.
            // a skipped suggestion).
            return self.cache.as_ref().map(|c| c.scores.as_slice());
        }
        let dirty_prims = if reusable {
            // invariant: `reusable` is only true when `self.cache` is
            // Some and its snapshot matched this aggregate cache's id.
            seu.dirty_prims_since(snapshot.expect("reusable implies cache").0)
        } else {
            None
        };

        // Bail to the exact full recompute when the dirty rows cover the
        // entire posting mass (delta application walks one posting per
        // dirty slot, so at nnz the rescore is at least as cheap and free
        // of drift) or when the anchor cadence is due.
        let anchor_due =
            self.cache.as_ref().is_some_and(|c| c.delta_rounds_since_anchor >= SCORE_ANCHOR_ROUNDS);
        let dirty_prims = dirty_prims.filter(|dirty| {
            let dirty_slots: usize = dirty.iter().map(|&z| aggs[z as usize].df).sum();
            !anchor_due && dirty_slots < view.ds.train.corpus.total_postings()
        });

        match dirty_prims {
            Some(mut dirty) if reusable => {
                // invariant: same `reusable` ⇒ cache-present guarantee.
                let c = self.cache.as_mut().expect("reusable implies cache");
                // LFs collected since the snapshot dirty their primitive's
                // row even when its aggregate is clean.
                for rec in &view.lineage.tracked()[c.lineage_len..] {
                    dirty.push(rec.lf.z);
                }
                dirty.sort_unstable();
                dirty.dedup();
                let index = view.ds.train.corpus.index();
                let (user_model, utility) = (c.user_model, c.utility);
                let mut incidences = 0u64;
                for &z in &dirty {
                    let z = z as usize;
                    let (old_w, old_wu) = (c.table.w[z], c.table.wu[z]);
                    fill_table_row(user_model, utility, view, aggs, &mut c.table, z);
                    let (new_w, new_wu) = (c.table.w[z], c.table.wu[z]);
                    if (new_w, new_wu) == (old_w, old_wu) {
                        continue;
                    }
                    let d_num =
                        prior[0] * (new_wu[0] - old_wu[0]) + prior[1] * (new_wu[1] - old_wu[1]);
                    let d_den = (new_w[0] - old_w[0]) + (new_w[1] - old_w[1]);
                    let postings = index.postings(z as u32);
                    incidences += postings.len() as u64;
                    for &i in postings {
                        let i = i as usize;
                        c.num[i] += d_num;
                        c.den[i] += d_den;
                    }
                }
                derive_scores(&c.num, &c.den, &c.has_prims, normalized, &mut c.scores);
                c.generation = seu.generation();
                c.lineage_len = view.lineage.len();
                c.delta_rounds_since_anchor += 1;
                c.stats.rounds += 1;
                c.stats.delta_rounds += 1;
                c.stats.rows_refreshed += dirty.len() as u64;
                c.stats.incidence_updates += incidences;
            }
            _ => {
                // Cold build, aggregate rebuild, dirty-majority bail, or
                // anchor cadence: recompute everything exactly (stats
                // carry over on a same-cache refresh so the bench sees
                // the true reuse rate).
                let table = self.score_table(view, aggs);
                let corpus = &view.ds.train.corpus;
                let has_prims: Vec<bool> =
                    (0..n).map(|i| !corpus.primitives_of(i).is_empty()).collect();
                // Parallel like the `Full` reference path: each example's
                // sums fold its own primitive rows in index order, so the
                // partitioning cannot change a bit of the result.
                let sums = nemo_sparse::parallel::par_map_range(n, |i| {
                    let (mut num_i, mut den_i) = (0.0, 0.0);
                    for &z in corpus.primitives_of(i) {
                        let zw = &table.w[z as usize];
                        let zwu = &table.wu[z as usize];
                        num_i += prior[0] * zwu[0] + prior[1] * zwu[1];
                        den_i += zw[0] + zw[1];
                    }
                    (num_i, den_i)
                });
                let (num, den): (Vec<f64>, Vec<f64>) = sums.into_iter().unzip();
                let mut scores = vec![0.0; n];
                derive_scores(&num, &den, &has_prims, normalized, &mut scores);
                let mut stats = if reusable {
                    // invariant: same `reusable` ⇒ cache-present guarantee.
                    self.cache.as_ref().expect("reusable implies cache").stats
                } else {
                    DirtyScoreStats::default()
                };
                stats.rounds += 1;
                stats.full_rescores += 1;
                self.cache = Some(ScoreCache {
                    aggs_id: seu.id(),
                    generation: seu.generation(),
                    lineage_len: view.lineage.len(),
                    user_model: self.user_model,
                    utility: self.utility,
                    table,
                    num,
                    den,
                    scores,
                    has_prims,
                    delta_rounds_since_anchor: 0,
                    stats,
                });
            }
        }
        self.cache.as_ref().map(|c| c.scores.as_slice())
    }
}

/// Derive final utilities from the cached per-example sums: candidates
/// without primitives score `NEG_INFINITY`; normalized user models divide
/// by the weight mass (zero mass → 0, as in [`tabled_score`]).
fn derive_scores(num: &[f64], den: &[f64], has_prims: &[bool], normalized: bool, out: &mut [f64]) {
    for i in 0..num.len() {
        out[i] = if !has_prims[i] {
            f64::NEG_INFINITY
        } else if normalized {
            if den[i] > 0.0 {
                num[i] / den[i]
            } else {
                0.0
            }
        } else {
            num[i]
        };
    }
}

impl Selector for SeuSelector {
    fn name(&self) -> &'static str {
        "SEU"
    }

    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize> {
        let avail = view.available();
        if avail.is_empty() {
            return None;
        }
        // Before any LF exists the model state is the uninformative prior,
        // so SEU's scores carry no signal; start with a random probe (the
        // paper's loop equally has nothing to condition on at t = 0).
        if view.lineage.is_empty() {
            return Some(avail[rng.index(avail.len())]);
        }
        // Dirty-set fast path: serve full-pool utilities from the score
        // cache (rescoring only dirty candidates), then restrict to the
        // available pool. Falls through to the per-round rescore for
        // stand-alone views or `SeuScoring::Full`.
        let scores: Vec<f64> = if self.scoring == SeuScoring::DirtySet && view.aggs.is_some() {
            // invariant: guarded by `view.aggs.is_some()` on this branch,
            // and `scores_cached` returns None only for aggregate-less
            // views.
            let cached = self.scores_cached(view).expect("view carries aggregates");
            avail.iter().map(|&x| cached[x]).collect()
        } else {
            let rebuilt;
            let aggs: &[PrimAgg] = match view.aggs {
                Some(cached) => cached.aggs(),
                None => {
                    rebuilt = Self::primitive_aggregates(view);
                    &rebuilt
                }
            };
            self.scores(view, aggs, &avail)
        };
        if scores.iter().all(|s| s.is_infinite()) {
            return Some(avail[rng.index(avail.len())]);
        }
        let ties = argmax_set(&scores);
        Some(avail[ties[rng.index(ties.len())]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idp::{IdpSession, ModelOutputs, RandomSelector};
    use crate::oracle::SimulatedUser;
    use crate::pipeline::StandardPipeline;
    use crate::IdpConfig;
    use nemo_data::catalog::toy_text;
    use nemo_data::Dataset;
    use nemo_lf::{LabelMatrix, Lineage};

    /// Build a view over a session that has run a few iterations, then
    /// hand it to closures for testing.
    fn with_view<R>(ds: &Dataset, n_steps: usize, f: impl FnOnce(&SelectionView<'_>) -> R) -> R {
        let config =
            IdpConfig { n_iterations: n_steps, eval_every: 5, seed: 11, ..Default::default() };
        let mut session = IdpSession::new(
            ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(StandardPipeline),
        );
        for _ in 0..n_steps {
            session.step();
        }
        let excluded = vec![false; ds.train.n()];
        let view = SelectionView {
            ds,
            lineage: session.lineage(),
            matrix: session.matrix(),
            outputs: session.outputs(),
            excluded: &excluded,
            iteration: n_steps,
            aggs: None,
        };
        f(&view)
    }

    #[test]
    fn fast_path_matches_naive_reference() {
        let ds = toy_text(1);
        with_view(&ds, 6, |view| {
            for um in [UserModelKind::AccuracyWeighted, UserModelKind::Uniform] {
                for ut in
                    [UtilityKind::Full, UtilityKind::NoInformativeness, UtilityKind::NoCorrectness]
                {
                    let sel = SeuSelector::with(um, ut);
                    let aggs = SeuSelector::primitive_aggregates(view);
                    for x in (0..ds.train.n()).step_by(37) {
                        let fast = sel.expected_utility(view, &aggs, x);
                        let naive = sel.expected_utility_naive(view, x);
                        if fast.is_finite() || naive.is_finite() {
                            assert!(
                                (fast - naive).abs() < 1e-9,
                                "x={x} um={um:?} ut={ut:?}: {fast} vs {naive}"
                            );
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn first_selection_is_random_probe() {
        let ds = toy_text(1);
        let lineage = Lineage::new();
        let matrix = LabelMatrix::new(ds.train.n());
        let outputs = ModelOutputs::initial(&ds);
        let excluded = vec![false; ds.train.n()];
        let view = SelectionView {
            ds: &ds,
            lineage: &lineage,
            matrix: &matrix,
            outputs: &outputs,
            excluded: &excluded,
            iteration: 0,
            aggs: None,
        };
        let mut sel = SeuSelector::new();
        let mut rng = DetRng::new(0);
        assert!(sel.select(&view, &mut rng).is_some());
    }

    #[test]
    fn respects_exclusions() {
        let ds = toy_text(1);
        with_view(&ds, 4, |view| {
            // Rebuild the view with everything but one example excluded.
            let mut excluded = vec![true; ds.train.n()];
            excluded[42] = false;
            let view2 = SelectionView {
                ds: view.ds,
                lineage: view.lineage,
                matrix: view.matrix,
                outputs: view.outputs,
                excluded: &excluded,
                iteration: view.iteration,
                aggs: None,
            };
            let mut sel = SeuSelector::new();
            let mut rng = DetRng::new(1);
            assert_eq!(sel.select(&view2, &mut rng), Some(42));
        });
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let ds = toy_text(1);
        with_view(&ds, 2, |view| {
            let excluded = vec![true; ds.train.n()];
            let view2 = SelectionView {
                ds: view.ds,
                lineage: view.lineage,
                matrix: view.matrix,
                outputs: view.outputs,
                excluded: &excluded,
                iteration: view.iteration,
                aggs: None,
            };
            let mut sel = SeuSelector::new();
            let mut rng = DetRng::new(1);
            assert_eq!(sel.select(&view2, &mut rng), None);
        });
    }

    #[test]
    fn prefers_uncertain_regions() {
        // Construct a view where examples containing primitive A are
        // highly uncertain and examples containing primitive B are
        // certain; SEU must pick an A-example.
        use nemo_labelmodel::Posterior;
        let ds = toy_text(5);
        with_view(&ds, 3, |view| {
            // Synthetic posterior: uncertainty 0.5 everywhere except
            // cluster 0, which is certain.
            let p_pos: Vec<f64> = (0..ds.train.n())
                .map(|i| if ds.train.clusters[i] == 0 { 0.999 } else { 0.5 })
                .collect();
            let outputs = ModelOutputs {
                train_posterior: Posterior::new(p_pos.clone()),
                train_probs: p_pos,
                valid_pred: view.outputs.valid_pred.clone(),
                test_pred: view.outputs.test_pred.clone(),
                chosen_p: None,
            };
            let excluded = vec![false; ds.train.n()];
            let view2 = SelectionView {
                ds: view.ds,
                lineage: view.lineage,
                matrix: view.matrix,
                outputs: &outputs,
                excluded: &excluded,
                iteration: view.iteration,
                aggs: None,
            };
            let mut sel = SeuSelector::new();
            let mut rng = DetRng::new(3);
            let chosen = sel.select(&view2, &mut rng).expect("pool non-empty");
            assert_ne!(ds.train.clusters[chosen], 0, "SEU should avoid the certain cluster");
        });
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_text(1);
        with_view(&ds, 5, |view| {
            let mut s1 = SeuSelector::new();
            let mut s2 = SeuSelector::new();
            let mut r1 = DetRng::new(9);
            let mut r2 = DetRng::new(9);
            assert_eq!(s1.select(view, &mut r1), s2.select(view, &mut r2));
        });
    }
}

//! Select by Expected Utility (paper Sec. 4.2, Eq. 1).
//!
//! ```text
//! x* = argmax_{x ∈ U}  E_{P(λ|x)} [ Ψ_t(λ) ]
//! ```
//!
//! The expectation decomposes over the candidate LF family of `x` — all
//! `(z, y)` pairs with `z` contained in `x` (Eq. 2's denominator runs over
//! this *joint* set):
//!
//! ```text
//! EU(x) = [ Σ_{z∈x} Σ_y P(y) · w(acc_{z,y}) · Ψ_t(λ_{z,y}) ] / [ Σ_{z∈x} Σ_y w(acc_{z,y}) ]
//! ```
//!
//! Two structural consequences confirm this reading against the paper's
//! own numbers:
//!
//! 1. With accuracy weights, `acc_{z,+} + acc_{z,−} = 1`, so the
//!    denominator is exactly `|x|` and a *neutral* primitive
//!    (`acc ≈ 0.5` both ways) contributes `≈ 0` — junk keywords
//!    self-cancel instead of injecting noise.
//! 2. With uniform weights (the Table 6 ablation), `Ψ(λ_{z,−}) =
//!    −Ψ(λ_{z,+})` makes every example's score cancel to zero, so
//!    selection degenerates to random tie-breaking — which is precisely
//!    why the paper's Table 6 "Uniform" column equals its Table 2
//!    "Snorkel" (random) column on five of six datasets.
//!
//! **Fast path** (DESIGN.md §3): a single pass over the inverted index
//! accumulates per-primitive aggregates ([`PrimAgg`]) from which both
//! `Ψ_t(λ_{z,y})` and `acc(λ_{z,y})` are O(1); scoring all examples then
//! costs `O(nnz(U))` total. Inside a [`crate::session::Session`] the
//! aggregates are additionally maintained *incrementally* across rounds,
//! and scoring goes through a per-round [`ScoreTable`] (per-primitive
//! weight/utility products) evaluated in parallel over the pool. A naive
//! per-example reference implementation is kept for differential testing.

use crate::idp::{SelectionView, Selector};
use crate::user_model::UserModelKind;
use crate::utility::{PrimAgg, UtilityKind};
use nemo_lf::Label;
use nemo_sparse::stats::argmax_set;
use nemo_sparse::DetRng;

/// The SEU development-data selector.
#[derive(Debug, Clone, Default)]
pub struct SeuSelector {
    /// User-model variant (accuracy-weighted by default; Table 6 ablation
    /// uses uniform).
    pub user_model: UserModelKind,
    /// Utility variant (full Eq. 3 by default; Table 7 ablations).
    pub utility: UtilityKind,
}

impl SeuSelector {
    /// Construct the default (paper) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-primitive aggregates over the training pool: one pass over the
    /// inverted index postings.
    pub fn primitive_aggregates(view: &SelectionView<'_>) -> Vec<PrimAgg> {
        let index = view.ds.train.corpus.index();
        let psi = view.outputs.train_posterior.entropies();
        let yhat = view.outputs.yhat_signs();
        let mut aggs = vec![PrimAgg::default(); index.n_primitives()];
        for (z, postings) in index.iter_nonempty() {
            let agg = &mut aggs[z as usize];
            for &i in postings {
                agg.add(psi[i as usize], yhat[i as usize]);
            }
        }
        aggs
    }

    /// Expected utility of showing example `x`, given precomputed
    /// aggregates. Returns `NEG_INFINITY` for examples without candidate
    /// primitives (no LF can be extracted from them).
    pub fn expected_utility(&self, view: &SelectionView<'_>, aggs: &[PrimAgg], x: usize) -> f64 {
        let prims = view.ds.train.corpus.primitives_of(x);
        if prims.is_empty() {
            return f64::NEG_INFINITY;
        }
        let prior = view.ds.prior();
        let mut weighted = 0.0;
        let mut total_w = 0.0;
        for &z in prims {
            let agg = &aggs[z as usize];
            if agg.df == 0 {
                continue;
            }
            for y in Label::ALL {
                let w = self.user_model.weight(agg.accuracy(y));
                if w <= 0.0 {
                    continue;
                }
                // An LF already in the collection supplies zero *new*
                // supervision: its votes are duplicated, not added. The
                // sequential IDP setting exists precisely to let the
                // selector "avoid the user spending extra effort in
                // designing redundant LFs" (paper Sec. 3), so collected
                // (z, y) pairs carry zero utility. The weight still
                // enters the normalizer — the user may well re-pick that
                // primitive, wasting the iteration.
                let utility = if view.lineage.contains_lf(&nemo_lf::PrimitiveLf::new(z, y)) {
                    0.0
                } else {
                    self.utility.value(agg, y)
                };
                weighted += prior[y.index()] * w * utility;
                total_w += w;
            }
        }
        if self.user_model.normalized() {
            if total_w > 0.0 {
                weighted / total_w
            } else {
                0.0
            }
        } else {
            weighted
        }
    }

    /// Naive reference: recompute every LF's utility by scanning its
    /// coverage list directly (no shared aggregates). Used by tests to
    /// verify the fast path.
    pub fn expected_utility_naive(&self, view: &SelectionView<'_>, x: usize) -> f64 {
        let corpus = &view.ds.train.corpus;
        let prims = corpus.primitives_of(x);
        if prims.is_empty() {
            return f64::NEG_INFINITY;
        }
        let psi = view.outputs.train_posterior.entropies();
        let yhat = view.outputs.yhat_signs();
        let prior = view.ds.prior();
        let mut weighted = 0.0;
        let mut total_w = 0.0;
        for &z in prims {
            let cov = corpus.index().postings(z);
            if cov.is_empty() {
                continue;
            }
            for y in Label::ALL {
                let n_match = cov.iter().filter(|&&i| yhat[i as usize] == y.sign()).count();
                let acc = n_match as f64 / cov.len() as f64;
                let w = self.user_model.weight(acc);
                if w <= 0.0 {
                    continue;
                }
                let utility = if view.lineage.contains_lf(&nemo_lf::PrimitiveLf::new(z, y)) {
                    0.0
                } else {
                    self.utility.value_naive(y, cov, &psi, &yhat)
                };
                weighted += prior[y.index()] * w * utility;
                total_w += w;
            }
        }
        if self.user_model.normalized() {
            if total_w > 0.0 {
                weighted / total_w
            } else {
                0.0
            }
        } else {
            weighted
        }
    }
}

/// Per-primitive, per-label scoring tables derived from the aggregates:
/// `w[z][y]` is the user-model weight of `λ_{z,y}` and `wu[z][y]` its
/// weight × utility product (zero for collected or zero-weight LFs).
///
/// Building the table costs `O(|Z|)` once per selection round and moves
/// every per-candidate branch — accuracy, weight, collected-LF lookup,
/// utility variant — out of the per-occurrence scoring loop, which then
/// reduces to two fused multiply-adds per `(example, primitive)` slot.
pub struct ScoreTable {
    w: Vec<[f64; 2]>,
    wu: Vec<[f64; 2]>,
}

impl SeuSelector {
    /// Build the per-primitive scoring table for the current round.
    pub fn score_table(&self, view: &SelectionView<'_>, aggs: &[PrimAgg]) -> ScoreTable {
        let mut w = vec![[0.0; 2]; aggs.len()];
        let mut wu = vec![[0.0; 2]; aggs.len()];
        for (z, agg) in aggs.iter().enumerate() {
            if agg.df == 0 {
                continue;
            }
            for y in Label::ALL {
                let weight = self.user_model.weight(agg.accuracy(y));
                if weight <= 0.0 {
                    continue;
                }
                // Collected (z, y) pairs carry zero utility (see
                // `expected_utility`); their weight still normalizes.
                let utility = if view.lineage.contains_lf(&nemo_lf::PrimitiveLf::new(z as u32, y)) {
                    0.0
                } else {
                    self.utility.value(agg, y)
                };
                w[z][y.index()] = weight;
                wu[z][y.index()] = weight * utility;
            }
        }
        ScoreTable { w, wu }
    }

    /// Expected utility of example `x` from a prebuilt [`ScoreTable`] —
    /// the branch-free inner loop of the fast path.
    pub fn expected_utility_tabled(
        &self,
        view: &SelectionView<'_>,
        table: &ScoreTable,
        x: usize,
    ) -> f64 {
        let prims = view.ds.train.corpus.primitives_of(x);
        if prims.is_empty() {
            return f64::NEG_INFINITY;
        }
        let prior = view.ds.prior();
        let mut weighted = 0.0;
        let mut total_w = 0.0;
        for &z in prims {
            let zw = &table.w[z as usize];
            let zwu = &table.wu[z as usize];
            weighted += prior[0] * zwu[0] + prior[1] * zwu[1];
            total_w += zw[0] + zw[1];
        }
        if self.user_model.normalized() {
            if total_w > 0.0 {
                weighted / total_w
            } else {
                0.0
            }
        } else {
            weighted
        }
    }

    /// Expected utility of every available example, in `avail` order.
    ///
    /// Scoring is embarrassingly parallel: each example reads only the
    /// shared table. [`nemo_sparse::parallel::par_map`] returns results
    /// in input order, so the parallel scores are bit-identical to a
    /// serial scan (differential-tested in
    /// `tests/session_differential.rs`).
    pub fn scores(&self, view: &SelectionView<'_>, aggs: &[PrimAgg], avail: &[usize]) -> Vec<f64> {
        let table = self.score_table(view, aggs);
        nemo_sparse::parallel::par_map(avail, |_, &x| self.expected_utility_tabled(view, &table, x))
    }
}

impl Selector for SeuSelector {
    fn name(&self) -> &'static str {
        "SEU"
    }

    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize> {
        let avail = view.available();
        if avail.is_empty() {
            return None;
        }
        // Before any LF exists the model state is the uninformative prior,
        // so SEU's scores carry no signal; start with a random probe (the
        // paper's loop equally has nothing to condition on at t = 0).
        if view.lineage.is_empty() {
            return Some(avail[rng.index(avail.len())]);
        }
        // Fast path: a `Session` supplies incrementally-maintained
        // aggregates; stand-alone views pay the full one-pass rebuild.
        let rebuilt;
        let aggs: &[PrimAgg] = match view.aggs {
            Some(cached) => cached,
            None => {
                rebuilt = Self::primitive_aggregates(view);
                &rebuilt
            }
        };
        let scores = self.scores(view, aggs, &avail);
        if scores.iter().all(|s| s.is_infinite()) {
            return Some(avail[rng.index(avail.len())]);
        }
        let ties = argmax_set(&scores);
        Some(avail[ties[rng.index(ties.len())]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idp::{IdpSession, ModelOutputs, RandomSelector};
    use crate::oracle::SimulatedUser;
    use crate::pipeline::StandardPipeline;
    use crate::IdpConfig;
    use nemo_data::catalog::toy_text;
    use nemo_data::Dataset;
    use nemo_lf::{LabelMatrix, Lineage};

    /// Build a view over a session that has run a few iterations, then
    /// hand it to closures for testing.
    fn with_view<R>(ds: &Dataset, n_steps: usize, f: impl FnOnce(&SelectionView<'_>) -> R) -> R {
        let config =
            IdpConfig { n_iterations: n_steps, eval_every: 5, seed: 11, ..Default::default() };
        let mut session = IdpSession::new(
            ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(StandardPipeline),
        );
        for _ in 0..n_steps {
            session.step();
        }
        let excluded = vec![false; ds.train.n()];
        let view = SelectionView {
            ds,
            lineage: session.lineage(),
            matrix: session.matrix(),
            outputs: session.outputs(),
            excluded: &excluded,
            iteration: n_steps,
            aggs: None,
        };
        f(&view)
    }

    #[test]
    fn fast_path_matches_naive_reference() {
        let ds = toy_text(1);
        with_view(&ds, 6, |view| {
            for um in [UserModelKind::AccuracyWeighted, UserModelKind::Uniform] {
                for ut in
                    [UtilityKind::Full, UtilityKind::NoInformativeness, UtilityKind::NoCorrectness]
                {
                    let sel = SeuSelector { user_model: um, utility: ut };
                    let aggs = SeuSelector::primitive_aggregates(view);
                    for x in (0..ds.train.n()).step_by(37) {
                        let fast = sel.expected_utility(view, &aggs, x);
                        let naive = sel.expected_utility_naive(view, x);
                        if fast.is_finite() || naive.is_finite() {
                            assert!(
                                (fast - naive).abs() < 1e-9,
                                "x={x} um={um:?} ut={ut:?}: {fast} vs {naive}"
                            );
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn first_selection_is_random_probe() {
        let ds = toy_text(1);
        let lineage = Lineage::new();
        let matrix = LabelMatrix::new(ds.train.n());
        let outputs = ModelOutputs::initial(&ds);
        let excluded = vec![false; ds.train.n()];
        let view = SelectionView {
            ds: &ds,
            lineage: &lineage,
            matrix: &matrix,
            outputs: &outputs,
            excluded: &excluded,
            iteration: 0,
            aggs: None,
        };
        let mut sel = SeuSelector::new();
        let mut rng = DetRng::new(0);
        assert!(sel.select(&view, &mut rng).is_some());
    }

    #[test]
    fn respects_exclusions() {
        let ds = toy_text(1);
        with_view(&ds, 4, |view| {
            // Rebuild the view with everything but one example excluded.
            let mut excluded = vec![true; ds.train.n()];
            excluded[42] = false;
            let view2 = SelectionView {
                ds: view.ds,
                lineage: view.lineage,
                matrix: view.matrix,
                outputs: view.outputs,
                excluded: &excluded,
                iteration: view.iteration,
                aggs: None,
            };
            let mut sel = SeuSelector::new();
            let mut rng = DetRng::new(1);
            assert_eq!(sel.select(&view2, &mut rng), Some(42));
        });
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let ds = toy_text(1);
        with_view(&ds, 2, |view| {
            let excluded = vec![true; ds.train.n()];
            let view2 = SelectionView {
                ds: view.ds,
                lineage: view.lineage,
                matrix: view.matrix,
                outputs: view.outputs,
                excluded: &excluded,
                iteration: view.iteration,
                aggs: None,
            };
            let mut sel = SeuSelector::new();
            let mut rng = DetRng::new(1);
            assert_eq!(sel.select(&view2, &mut rng), None);
        });
    }

    #[test]
    fn prefers_uncertain_regions() {
        // Construct a view where examples containing primitive A are
        // highly uncertain and examples containing primitive B are
        // certain; SEU must pick an A-example.
        use nemo_labelmodel::Posterior;
        let ds = toy_text(5);
        with_view(&ds, 3, |view| {
            // Synthetic posterior: uncertainty 0.5 everywhere except
            // cluster 0, which is certain.
            let p_pos: Vec<f64> = (0..ds.train.n())
                .map(|i| if ds.train.clusters[i] == 0 { 0.999 } else { 0.5 })
                .collect();
            let outputs = ModelOutputs {
                train_posterior: Posterior::new(p_pos.clone()),
                train_probs: p_pos,
                valid_pred: view.outputs.valid_pred.clone(),
                test_pred: view.outputs.test_pred.clone(),
                chosen_p: None,
            };
            let excluded = vec![false; ds.train.n()];
            let view2 = SelectionView {
                ds: view.ds,
                lineage: view.lineage,
                matrix: view.matrix,
                outputs: &outputs,
                excluded: &excluded,
                iteration: view.iteration,
                aggs: None,
            };
            let mut sel = SeuSelector::new();
            let mut rng = DetRng::new(3);
            let chosen = sel.select(&view2, &mut rng).expect("pool non-empty");
            assert_ne!(ds.train.clusters[chosen], 0, "SEU should avoid the certain cluster");
        });
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_text(1);
        with_view(&ds, 5, |view| {
            let mut s1 = SeuSelector::new();
            let mut s2 = SeuSelector::new();
            let mut r1 = DetRng::new(9);
            let mut r2 = DetRng::new(9);
            assert_eq!(s1.select(view, &mut r1), s2.select(view, &mut r2));
        });
    }
}

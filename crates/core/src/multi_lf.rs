//! The multi-LF extension (paper Sec. 7, Eq. 5–6).
//!
//! In the general IDP setup the user may return a *set* of LFs per
//! iteration. The selection objective becomes
//!
//! ```text
//! x* = argmax_x  E_{P(Λ|x)} [ Σ_{λ∈Λ} Ψ_t(λ) ]
//! ```
//!
//! with the factorized user model `P(Λ|x) = Π_{λ∈Λ} P(λ|x)` and the
//! thresholded per-LF model of Eq. 6
//! (`P(λ_{z,y}|x) ∝ P(y) · acc · 1[acc > 0.5]`). By linearity of
//! expectation this reduces to an *unnormalized* accuracy-weighted sum of
//! utilities over the candidates of `x` — exactly
//! [`SeuSelector`] with [`UserModelKind::MultiLfIndicator`].

use crate::seu::SeuSelector;
use crate::user_model::UserModelKind;
use crate::utility::UtilityKind;

/// The Eq. 5–6 multi-LF SEU selector.
pub fn multi_lf_selector() -> SeuSelector {
    SeuSelector::with(UserModelKind::MultiLfIndicator, UtilityKind::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdpConfig;
    use crate::idp::IdpSession;
    use crate::oracle::SimulatedUser;
    use crate::pipeline::ContextualizedPipeline;
    use nemo_data::catalog::toy_text;

    #[test]
    fn selector_uses_indicator_user_model() {
        let s = multi_lf_selector();
        assert_eq!(s.user_model, UserModelKind::MultiLfIndicator);
        assert!(!s.user_model.normalized());
    }

    #[test]
    fn multi_lf_session_collects_multiple_lfs_per_iteration() {
        let ds = toy_text(1);
        let config = IdpConfig {
            n_iterations: 6,
            eval_every: 3,
            lfs_per_iteration: 3,
            seed: 1,
            ..Default::default()
        };
        let mut session = IdpSession::new(
            &ds,
            config,
            Box::new(multi_lf_selector()),
            Box::new(SimulatedUser::default()),
            Box::new(ContextualizedPipeline::default()),
        );
        let mut total = 0;
        for _ in 0..6 {
            total += session.step().new_lfs.len();
        }
        assert_eq!(session.lineage().len(), total);
        assert!(total > 6, "multi-LF mode should exceed one LF per iteration, got {total}");
        // Lineage groups LFs of the same iteration on the same dev point.
        let tracked = session.lineage().tracked();
        let mut per_iter: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for r in tracked {
            per_iter.entry(r.iteration).or_default().push(r.dev_example);
        }
        for (_, devs) in per_iter {
            assert!(devs.windows(2).all(|w| w[0] == w[1]), "same-iteration LFs share dev data");
        }
    }

    #[test]
    fn multi_lf_learns_at_least_as_fast_on_toy() {
        let ds = toy_text(2);
        let run = |k: usize, seed: u64| {
            let config = IdpConfig {
                n_iterations: 8,
                eval_every: 4,
                lfs_per_iteration: k,
                seed,
                ..Default::default()
            };
            IdpSession::new(
                &ds,
                config,
                Box::new(multi_lf_selector()),
                Box::new(SimulatedUser::default()),
                Box::new(ContextualizedPipeline::default()),
            )
            .run()
            .summary()
        };
        let n_seeds = 8;
        let mut single = 0.0;
        let mut multi = 0.0;
        for seed in 0..n_seeds {
            single += run(1, seed);
            multi += run(3, seed);
        }
        single /= n_seeds as f64;
        multi /= n_seeds as f64;
        // More supervision per iteration should not hurt (seed-averaged:
        // individual 8-iteration toy runs are high-variance).
        assert!(multi >= single - 0.05, "multi {multi:.3} vs single {single:.3}");
    }
}

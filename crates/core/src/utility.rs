//! The LF utility function `Ψ_t(λ)` (paper Eq. 3) and its ablations
//! (Table 7).
//!
//! ```text
//! Ψ_t(λ_{z,y}) = Σ_{i ∈ cov(z)}  ψ_t(x_i) · ( λ(x_i) · ŷ_i )
//! ```
//!
//! where `ψ_t(x_i)` is the label-model uncertainty (posterior entropy) and
//! `ŷ_i` the end model's current hard prediction standing in for the
//! ground truth. Because a primitive LF votes the constant `y` over its
//! coverage, the sum factorizes into per-primitive aggregates that are
//! shared between the positive and negative LF of the same primitive —
//! the key to SEU's `O(nnz)` fast path (DESIGN.md §3):
//!
//! ```text
//! Ψ_t(λ_{z,y}) = sign(y) · Σ_{i ∈ cov(z)} ψ_t(x_i) · sign(ŷ_i)
//! ```

use nemo_lf::Label;

/// Per-primitive aggregates accumulated in one pass over the inverted
/// index, from which every utility variant and the accuracy estimates are
/// O(1) per LF.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrimAgg {
    /// `Σ_{i∈cov(z)} ψ(x_i) · sign(ŷ_i)`.
    pub s_psi_yhat: f64,
    /// `Σ_{i∈cov(z)} sign(ŷ_i)`.
    pub s_yhat: f64,
    /// `Σ_{i∈cov(z)} ψ(x_i)`.
    pub s_psi: f64,
    /// `|{i ∈ cov(z) : ŷ_i = +1}|`.
    pub n_pos: usize,
    /// `|cov(z)|`.
    pub df: usize,
}

impl PrimAgg {
    /// Accumulate one covered example.
    #[inline]
    pub fn add(&mut self, psi: f64, yhat_sign: i8) {
        let s = yhat_sign as f64;
        self.s_psi_yhat += psi * s;
        self.s_yhat += s;
        self.s_psi += psi;
        if yhat_sign > 0 {
            self.n_pos += 1;
        }
        self.df += 1;
    }

    /// Replace one covered example's contribution in place: the example's
    /// `(ψ, ŷ)` changed from `(old_psi, old_sign)` to `(new_psi,
    /// new_sign)` while its coverage membership stayed fixed.
    ///
    /// The integer fields (`n_pos`, `df`) stay exact; the float sums pick
    /// up one rounding step per update, which the session bounds with
    /// periodic full rebuilds.
    #[inline]
    pub fn apply_delta(&mut self, old_psi: f64, old_sign: i8, new_psi: f64, new_sign: i8) {
        let (os, ns) = (old_sign as f64, new_sign as f64);
        self.s_psi_yhat += new_psi * ns - old_psi * os;
        self.s_yhat += ns - os;
        self.s_psi += new_psi - old_psi;
        if old_sign > 0 && new_sign <= 0 {
            self.n_pos -= 1;
        } else if old_sign <= 0 && new_sign > 0 {
            self.n_pos += 1;
        }
    }

    /// Estimated accuracy of `λ_{z,y}` under the proxy labels `ŷ`:
    /// the fraction of the coverage predicted as `y`.
    #[inline]
    pub fn accuracy(&self, y: Label) -> f64 {
        if self.df == 0 {
            return 0.0;
        }
        let pos_frac = self.n_pos as f64 / self.df as f64;
        match y {
            Label::Pos => pos_frac,
            Label::Neg => 1.0 - pos_frac,
        }
    }
}

/// Utility-function variants (Eq. 3 and the Table 7 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UtilityKind {
    /// `Σ ψ(x_i) · λ(x_i)·ŷ_i` — informativeness × correctness (Eq. 3).
    #[default]
    Full,
    /// `Σ λ(x_i)·ŷ_i` — correctness only.
    NoInformativeness,
    /// `Σ ψ(x_i)` — informativeness only.
    NoCorrectness,
}

impl UtilityKind {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            UtilityKind::Full => "full",
            UtilityKind::NoInformativeness => "no-informativeness",
            UtilityKind::NoCorrectness => "no-correctness",
        }
    }

    /// `Ψ_t(λ_{z,y})` from the primitive's aggregates.
    #[inline]
    pub fn value(self, agg: &PrimAgg, y: Label) -> f64 {
        let sign = y.sign() as f64;
        match self {
            UtilityKind::Full => sign * agg.s_psi_yhat,
            UtilityKind::NoInformativeness => sign * agg.s_yhat,
            UtilityKind::NoCorrectness => agg.s_psi,
        }
    }

    /// Direct (non-aggregated) evaluation over an explicit coverage list —
    /// the reference implementation used for differential testing.
    pub fn value_naive(self, y: Label, coverage: &[u32], psi: &[f64], yhat_signs: &[i8]) -> f64 {
        let sign = y.sign() as f64;
        coverage
            .iter()
            .map(|&i| {
                let i = i as usize;
                match self {
                    UtilityKind::Full => psi[i] * sign * yhat_signs[i] as f64,
                    UtilityKind::NoInformativeness => sign * yhat_signs[i] as f64,
                    UtilityKind::NoCorrectness => psi[i],
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn agg_from(cov: &[u32], psi: &[f64], yhat: &[i8]) -> PrimAgg {
        let mut a = PrimAgg::default();
        for &i in cov {
            a.add(psi[i as usize], yhat[i as usize]);
        }
        a
    }

    #[test]
    fn full_utility_rewards_correct_uncertain() {
        // One uncertain example predicted +1: a Pos LF gains, a Neg LF loses.
        let psi = [0.69];
        let yhat = [1i8];
        let agg = agg_from(&[0], &psi, &yhat);
        assert!(UtilityKind::Full.value(&agg, Label::Pos) > 0.0);
        assert!(UtilityKind::Full.value(&agg, Label::Neg) < 0.0);
    }

    #[test]
    fn full_utility_weights_by_uncertainty() {
        let psi = [0.7, 0.1];
        let yhat = [1i8, 1];
        let high = agg_from(&[0], &psi, &yhat);
        let low = agg_from(&[1], &psi, &yhat);
        assert!(
            UtilityKind::Full.value(&high, Label::Pos) > UtilityKind::Full.value(&low, Label::Pos)
        );
    }

    #[test]
    fn no_correctness_is_label_invariant() {
        let psi = [0.5, 0.2];
        let yhat = [1i8, -1];
        let agg = agg_from(&[0, 1], &psi, &yhat);
        assert_eq!(
            UtilityKind::NoCorrectness.value(&agg, Label::Pos),
            UtilityKind::NoCorrectness.value(&agg, Label::Neg)
        );
    }

    #[test]
    fn accuracy_estimate_from_aggregates() {
        let psi = [0.0; 4];
        let yhat = [1i8, 1, 1, -1];
        let agg = agg_from(&[0, 1, 2, 3], &psi, &yhat);
        assert!((agg.accuracy(Label::Pos) - 0.75).abs() < 1e-12);
        assert!((agg.accuracy(Label::Neg) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_coverage_zero() {
        let agg = PrimAgg::default();
        assert_eq!(agg.accuracy(Label::Pos), 0.0);
        assert_eq!(UtilityKind::Full.value(&agg, Label::Pos), 0.0);
    }

    proptest! {
        #[test]
        fn prop_aggregated_equals_naive(
            psi in proptest::collection::vec(0.0f64..0.7, 8),
            yhat_bits in proptest::collection::vec(proptest::bool::ANY, 8),
            cov_bits in proptest::collection::vec(proptest::bool::ANY, 8),
        ) {
            let yhat: Vec<i8> = yhat_bits.iter().map(|&b| if b { 1 } else { -1 }).collect();
            let cov: Vec<u32> = cov_bits
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| i as u32)
                .collect();
            let agg = agg_from(&cov, &psi, &yhat);
            for kind in [UtilityKind::Full, UtilityKind::NoInformativeness, UtilityKind::NoCorrectness] {
                for y in nemo_lf::Label::ALL {
                    let fast = kind.value(&agg, y);
                    let naive = kind.value_naive(y, &cov, &psi, &yhat);
                    prop_assert!((fast - naive).abs() < 1e-9, "{kind:?} {y:?}");
                }
            }
        }
    }
}

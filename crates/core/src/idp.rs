//! The Interactive Data Programming loop (paper Sec. 3 and Appendix A).
//!
//! Each iteration performs the three IDP stages:
//!
//! 1. **Development data selection** — a [`Selector`] picks one unlabeled
//!    training example (atomic setting, `|S_t| = 1`).
//! 2. **LF development** — a [`crate::oracle::User`] inspects the example
//!    and returns labeling function(s); lineage is recorded.
//! 3. **Label/end model learning** — a
//!    [`crate::pipeline::LearningPipeline`] (standard or contextualized)
//!    learns from the LFs collected so far and exposes its model state
//!    back to the selector for the next cycle.
//!
//! The session is generic over all three components, so every method in
//! the paper's evaluation — Nemo, Snorkel, Snorkel-Abs/Dis, the SEU and
//! contextualizer ablations — is an instantiation of the same loop.

use crate::config::IdpConfig;
use crate::oracle::User;
use crate::pipeline::LearningPipeline;
use crate::session::{Session, SeuAggregates};
use nemo_data::Dataset;
use nemo_labelmodel::Posterior;
use nemo_lf::{label_from_prob, Label, LabelMatrix, Lineage, PrimitiveLf};
use nemo_sparse::DetRng;

/// Model state after a learning stage, visible to selectors and
/// evaluation.
#[derive(Debug, Clone)]
pub struct ModelOutputs {
    /// Label-model posterior `P(y_i | Λ_t)` on the training split.
    pub train_posterior: Posterior,
    /// End-model probabilities `P(y_i = +1 | x_i)` on the training split
    /// (the `ŷ = f(x)` proxy the SEU user model and utility use).
    pub train_probs: Vec<f64>,
    /// End-model hard predictions on the validation split.
    pub valid_pred: Vec<Label>,
    /// End-model hard predictions on the test split.
    pub test_pred: Vec<Label>,
    /// The contextualizer percentile chosen this iteration (None for the
    /// standard pipeline).
    pub chosen_p: Option<f64>,
}

impl ModelOutputs {
    /// The before-any-LF state: posterior and predictions at the class
    /// prior.
    pub fn initial(ds: &Dataset) -> Self {
        let prior_pos = ds.class_prior_pos;
        let prior_label = label_from_prob(prior_pos);
        Self {
            train_posterior: Posterior::from_prior(ds.train.n(), prior_pos),
            train_probs: vec![prior_pos; ds.train.n()],
            valid_pred: vec![prior_label; ds.valid.n()],
            test_pred: vec![prior_label; ds.test.n()],
            chosen_p: None,
        }
    }

    /// Hard sign of the end-model prediction for training example `i`.
    #[inline]
    pub fn yhat_sign(&self, i: usize) -> i8 {
        if self.train_probs[i] >= 0.5 {
            1
        } else {
            -1
        }
    }

    /// All training prediction signs.
    pub fn yhat_signs(&self) -> Vec<i8> {
        (0..self.train_probs.len()).map(|i| self.yhat_sign(i)).collect()
    }
}

/// Read-only state a selector may consult. By IDP's rules the selector
/// never sees training ground truth — only model state and LF votes.
pub struct SelectionView<'a> {
    /// The dataset (selectors must not read `ds.train.labels`; only the
    /// oracle user does).
    pub ds: &'a Dataset,
    /// LFs collected so far with lineage.
    pub lineage: &'a Lineage,
    /// Raw (unrefined) train label matrix of the collected LFs.
    pub matrix: &'a LabelMatrix,
    /// Model state from the previous learning stage.
    pub outputs: &'a ModelOutputs,
    /// `excluded[i]` — example `i` was already shown to the user.
    pub excluded: &'a [bool],
    /// Current iteration (0-based).
    pub iteration: usize,
    /// The incrementally-maintained SEU aggregate cache (with its dirty
    /// log) consistent with `outputs`, when the view comes from a
    /// [`Session`]. `None` makes aggregate-consuming selectors rebuild
    /// from scratch — and disables dirty-set score caching, which needs
    /// the generation/dirty-log protocol to revalidate.
    pub aggs: Option<&'a SeuAggregates>,
}

impl<'a> SelectionView<'a> {
    /// Indices not yet shown to the user.
    pub fn available(&self) -> Vec<usize> {
        (0..self.ds.train.n()).filter(|&i| !self.excluded[i]).collect()
    }
}

/// A development-data selection strategy (IDP stage 1).
pub trait Selector {
    /// Name for reports ("SEU", "Random", …).
    fn name(&self) -> &'static str;

    /// Pick the next development example, or `None` when the pool is
    /// exhausted.
    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize>;
}

/// Uniform random selection — the prevailing approach (Snorkel).
#[derive(Debug, Clone, Default)]
pub struct RandomSelector;

impl Selector for RandomSelector {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize> {
        let avail = view.available();
        if avail.is_empty() {
            None
        } else {
            Some(avail[rng.index(avail.len())])
        }
    }
}

/// Record of one interactive step.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// The development example shown, if any.
    pub selected: Option<usize>,
    /// LFs the user returned.
    pub new_lfs: Vec<PrimitiveLf>,
}

/// A learning curve: `(iteration, test score)` points.
#[derive(Debug, Clone, Default)]
pub struct LearningCurve {
    points: Vec<(usize, f64)>,
}

impl LearningCurve {
    /// Record a point.
    pub fn push(&mut self, iteration: usize, score: f64) {
        self.points.push((iteration, score));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// The paper's curve summary: the mean of the evaluated scores
    /// (proportional to area under the learning curve, Sec. 5.1).
    pub fn summary(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, s)| s).sum::<f64>() / self.points.len() as f64
    }

    /// Final score on the curve.
    pub fn final_score(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, s)| s)
    }
}

/// One interactive session binding a dataset, a selector, a user, and a
/// learning pipeline — a thin driver over the [`Session`] engine, which
/// owns the state and the incremental SEU aggregates.
pub struct IdpSession<'a> {
    session: Session<'a>,
    selector: Box<dyn Selector + 'a>,
    user: Box<dyn User + 'a>,
    pipeline: Box<dyn LearningPipeline + 'a>,
}

impl<'a> IdpSession<'a> {
    /// Create a session at iteration 0.
    pub fn new(
        ds: &'a Dataset,
        config: IdpConfig,
        selector: Box<dyn Selector + 'a>,
        user: Box<dyn User + 'a>,
        pipeline: Box<dyn LearningPipeline + 'a>,
    ) -> Self {
        Self { session: Session::new(ds, config), selector, user, pipeline }
    }

    /// The underlying engine state.
    pub fn session(&self) -> &Session<'a> {
        &self.session
    }

    /// The dataset this session runs on.
    pub fn dataset(&self) -> &Dataset {
        self.session.dataset()
    }

    /// Collected lineage so far.
    pub fn lineage(&self) -> &Lineage {
        self.session.lineage()
    }

    /// Latest model outputs.
    pub fn outputs(&self) -> &ModelOutputs {
        self.session.outputs()
    }

    /// Raw train label matrix of collected LFs.
    pub fn matrix(&self) -> &LabelMatrix {
        self.session.matrix()
    }

    /// Current iteration count.
    pub fn iteration(&self) -> usize {
        self.session.iteration()
    }

    /// Run one full IDP iteration: select → develop → learn.
    pub fn step(&mut self) -> StepRecord {
        self.session.step(&mut *self.selector, &mut *self.user, &mut *self.pipeline)
    }

    /// Current test-split score under the dataset metric.
    pub fn test_score(&self) -> f64 {
        self.session.test_score()
    }

    /// Current validation-split score under the dataset metric.
    pub fn valid_score(&self) -> f64 {
        self.session.valid_score()
    }

    /// Run the configured number of iterations, evaluating every
    /// `eval_every` iterations (the paper's protocol).
    pub fn run(&mut self) -> LearningCurve {
        let mut curve = LearningCurve::default();
        for t in 0..self.session.config().n_iterations {
            self.step();
            if (t + 1) % self.session.config().eval_every == 0 {
                curve.push(t + 1, self.test_score());
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedUser;
    use crate::pipeline::StandardPipeline;
    use nemo_data::catalog::toy_text;

    fn session(ds: &Dataset, seed: u64) -> IdpSession<'_> {
        let config = IdpConfig { n_iterations: 10, eval_every: 2, seed, ..Default::default() };
        IdpSession::new(
            ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(StandardPipeline),
        )
    }

    #[test]
    fn initial_outputs_at_prior() {
        let ds = toy_text(1);
        let out = ModelOutputs::initial(&ds);
        assert_eq!(out.train_probs.len(), ds.train.n());
        assert_eq!(out.test_pred.len(), ds.test.n());
        assert!(out.chosen_p.is_none());
    }

    #[test]
    fn step_collects_lfs_and_updates_models() {
        let ds = toy_text(1);
        let mut s = session(&ds, 1);
        let rec = s.step();
        assert_eq!(rec.iteration, 0);
        assert!(rec.selected.is_some());
        assert_eq!(s.lineage().len(), rec.new_lfs.len());
        assert_eq!(s.matrix().n_lfs(), s.lineage().len());
        assert_eq!(s.iteration(), 1);
    }

    #[test]
    fn selected_examples_are_not_reselected() {
        let ds = toy_text(1);
        let mut s = session(&ds, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            let rec = s.step();
            if let Some(x) = rec.selected {
                assert!(seen.insert(x), "example {x} selected twice");
            }
        }
    }

    #[test]
    fn run_produces_expected_curve_shape() {
        let ds = toy_text(1);
        let mut s = session(&ds, 3);
        let curve = s.run();
        assert_eq!(curve.points().len(), 5); // 10 iterations / eval_every 2
        assert_eq!(curve.points()[0].0, 2);
        assert_eq!(curve.points()[4].0, 10);
        for &(_, score) in curve.points() {
            assert!((0.0..=1.0).contains(&score));
        }
    }

    #[test]
    fn learning_beats_prior_on_toy() {
        let ds = toy_text(1);
        let mut s = session(&ds, 4);
        let curve = s.run();
        // After 10 LFs on the toy task the end model should beat chance.
        assert!(curve.final_score() > 0.55, "final score {}", curve.final_score());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_text(1);
        let c1 = session(&ds, 7).run();
        let c2 = session(&ds, 7).run();
        assert_eq!(c1.points(), c2.points());
    }

    #[test]
    fn different_seeds_generally_differ() {
        let ds = toy_text(1);
        let c1 = session(&ds, 1).run();
        let c2 = session(&ds, 2).run();
        assert_ne!(c1.points(), c2.points());
    }

    #[test]
    fn curve_summary_is_mean() {
        let mut c = LearningCurve::default();
        c.push(5, 0.5);
        c.push(10, 0.7);
        assert!((c.summary() - 0.6).abs() < 1e-12);
        assert!((c.final_score() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn random_selector_exhausts_pool() {
        let ds = toy_text(1);
        let excluded = vec![true; ds.train.n()];
        let lineage = Lineage::new();
        let matrix = LabelMatrix::new(ds.train.n());
        let outputs = ModelOutputs::initial(&ds);
        let view = SelectionView {
            ds: &ds,
            lineage: &lineage,
            matrix: &matrix,
            outputs: &outputs,
            excluded: &excluded,
            iteration: 0,
            aggs: None,
        };
        let mut rng = DetRng::new(1);
        assert_eq!(RandomSelector.select(&view, &mut rng), None);
    }
}

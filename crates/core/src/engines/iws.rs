//! The IWS selection engine: learned LF-candidate ranking as a peer of
//! SEU (Boecking et al., Interactive Weak Supervision).
//!
//! Where SEU asks the user to *author* an LF for a chosen example, IWS
//! inverts the interaction: the engine enumerates the whole candidate LF
//! family up front from the vocabulary — every `(primitive, label)` pair
//! above a coverage floor, the keyword/n-gram family the `nemo-text`
//! tokenizer's `Vocab` defines (primitive ids *are* token ids, joined
//! n-grams included) — and each round asks the user only to accept or
//! reject the top-ranked candidate.
//!
//! Ranking combines two signals:
//!
//! - a **bootstrap-committee usefulness model**: logistic regressions
//!   over per-candidate feature vectors (a seeded sign-hash projection of
//!   the candidate's coverage signature, polarity-mirrored, plus a
//!   coverage scalar), refit after every answer on bootstrap resamples of
//!   the answered set and averaged. Members fit in parallel over
//!   [`nemo_sparse::parallel`] after the resamples are drawn serially, so
//!   the committee is bit-identical under any `NEMO_THREADS`;
//! - the **SEU score table**: the same per-primitive `(weight, weighted
//!   utility)` rows the SEU selector aggregates per example, read per
//!   candidate through [`ScoreTable::lf_row`](crate::seu::ScoreTable) and
//!   blended in as a utility prior the committee has no way to learn from
//!   accept/reject bits alone.
//!
//! An accepted candidate is submitted through the ordinary session
//! pipeline with its *anchor* (the first still-available example covering
//! the candidate's primitive) as the development example, so the
//! contextualizer treats it exactly like a user-authored LF. A rejected
//! candidate consumes the iteration as a skip, mirroring the fixed-budget
//! protocol.
//!
//! Determinism and persistence: acquisition draws (ε-greedy coin, tie
//! breaks) come from the session's checkpointed RNG; the committee is a
//! pure function of the config seed and the answer log. The answer log is
//! therefore the engine's *complete* persistent state
//! ([`EngineState::IwsV1`]) — candidates are re-enumerated from the
//! dataset on restore and the ranking replays bit-identically
//! (`tests/iws_engine_differential.rs`, keyed to the `SelectionStrategy`
//! switch).

use crate::checkpoint::EngineState;
use crate::engines::SelectionEngine;
use crate::error::{RestoreError, SessionError};
use crate::idp::{SelectionView, Selector, StepRecord};
use crate::oracle::User;
use crate::pipeline::LearningPipeline;
use crate::session::Session;
use crate::seu::SeuSelector;
use nemo_data::Dataset;
use nemo_endmodel::{BootstrapEnsemble, LogRegConfig, LogisticRegression};
use nemo_lf::{Label, PrimitiveLf};
use nemo_sparse::parallel::par_map_min;
use nemo_sparse::stats::argmax_set;
use nemo_sparse::{CsrMatrix, DetRng, SparseVec};

/// Salt mixed into the config seed for the committee's bootstrap stream
/// (kept off the session stream so committee refits never perturb the
/// checkpointed acquisition draws).
const COMMITTEE_SALT: u64 = 0x115e_c033;

/// Salt for the candidate feature projection's sign hash.
const PROJECTION_SALT: u64 = 0x1f5;

/// Configuration of the [`IwsEngine`].
#[derive(Debug, Clone)]
pub struct IwsEngineConfig {
    /// Minimum document frequency for a primitive to yield candidates.
    pub min_df: usize,
    /// Dimensionality of the coverage-signature random projection.
    pub projection_dim: usize,
    /// Exploration rate of the ε-greedy acquisition. Pure greedy
    /// exploitation of a committee trained on a handful of (mostly
    /// negative) answers locks onto a junk region of the family.
    pub epsilon: f64,
    /// Weight of the SEU-utility prior in the acquisition score
    /// (committee probability + `blend` × max-normalized utility).
    pub blend: f64,
    /// Bootstrap committee size.
    pub n_models: usize,
}

impl Default for IwsEngineConfig {
    fn default() -> Self {
        Self { min_df: 5, projection_dim: 24, epsilon: 0.3, blend: 0.25, n_models: 8 }
    }
}

/// The enumerated candidate family: LFs aligned row-for-row with their
/// feature matrix.
#[derive(Debug, Clone)]
struct CandidateFamily {
    lfs: Vec<PrimitiveLf>,
    features: CsrMatrix,
}

/// Deterministic ±1 hash for the feature projection.
fn sign_hash(example: u32, dim: usize, salt: u64) -> impl Iterator<Item = (usize, f32)> {
    let mut z = (example as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..dim).map(move |k| {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        let sign = if z & 1 == 0 { 1.0 } else { -1.0 };
        (k, sign)
    })
}

/// The IWS selection engine. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct IwsEngine {
    /// Engine configuration.
    pub config: IwsEngineConfig,
    scorer: SeuSelector,
    candidates: Option<CandidateFamily>,
    answers: Vec<(u32, bool)>,
}

impl Default for IwsEngine {
    fn default() -> Self {
        Self::new(IwsEngineConfig::default())
    }
}

impl IwsEngine {
    /// An engine with the given configuration and no feedback yet.
    pub fn new(config: IwsEngineConfig) -> Self {
        Self { config, scorer: SeuSelector::new(), candidates: None, answers: Vec::new() }
    }

    /// The accept/reject answer log so far, in oracle-query order.
    pub fn answers(&self) -> &[(u32, bool)] {
        &self.answers
    }

    /// Enumerate the candidate family for `ds`: both polarities of every
    /// vocabulary primitive above the coverage floor, with sign-hash
    /// projected coverage features (polarity-mirrored, plus a coverage
    /// scalar in the last column).
    fn enumerate(&self, ds: &Dataset) -> CandidateFamily {
        let index = ds.train.corpus.index();
        let n = ds.train.n() as f64;
        let dim = self.config.projection_dim + 1;
        let mut lfs = Vec::new();
        let mut rows = Vec::new();
        for (z, postings) in index.iter_nonempty() {
            if postings.len() < self.config.min_df {
                continue;
            }
            // Shared coverage projection for both polarities of z.
            let mut proj = vec![0.0f32; self.config.projection_dim];
            let norm = (postings.len() as f32).sqrt();
            for &i in postings {
                for (k, s) in sign_hash(i, self.config.projection_dim, PROJECTION_SALT) {
                    proj[k] += s / norm;
                }
            }
            for y in Label::ALL {
                lfs.push(PrimitiveLf::new(z, y));
                // Mirrored features per polarity (as in IWS, where LF
                // features derive from the vote vector): a naked polarity
                // scalar would hand the committee a class-level shortcut.
                let sign = y.sign() as f32;
                let mut pairs: Vec<(u32, f32)> = proj
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(k, &v)| (k as u32, sign * v))
                    .collect();
                pairs.push((self.config.projection_dim as u32, (postings.len() as f64 / n) as f32));
                rows.push(SparseVec::from_pairs(pairs, dim));
            }
        }
        CandidateFamily { lfs, features: CsrMatrix::from_rows(&rows, dim) }
    }

    /// Enumerate lazily; the family is a pure function of the dataset and
    /// config, so it is never checkpointed.
    fn family(&mut self, ds: &Dataset) -> &CandidateFamily {
        if self.candidates.is_none() {
            self.candidates = Some(self.enumerate(ds));
        }
        // invariant: filled just above when absent.
        self.candidates.as_ref().expect("candidate family just ensured")
    }

    /// Committee usefulness per candidate: bootstrap logistic regressions
    /// over the answered set, fit in parallel (resamples pre-drawn
    /// serially), averaged, with answered candidates pinned to their
    /// oracle answers. Seeded purely from `config_seed` and the answer
    /// count — independent of the session RNG stream.
    fn committee_scores(&self, config_seed: u64, family: &CandidateFamily) -> Vec<f64> {
        let n_cand = family.lfs.len();
        if self.answers.is_empty() {
            return vec![0.5; n_cand];
        }
        let mut targets = vec![0.5f64; n_cand];
        let mut answered: Vec<u32> = Vec::with_capacity(self.answers.len());
        for &(c, accept) in &self.answers {
            if targets[c as usize] == 0.5 {
                answered.push(c);
            }
            targets[c as usize] = if accept { 1.0 } else { 0.0 };
        }
        // Strong regularization: with a handful of feedback points an
        // unregularized fit saturates its predictions.
        let trainer = LogisticRegression::new(LogRegConfig {
            lr: 0.3,
            epochs: 30,
            l2: 1e-2,
            fit_intercept: true,
        });
        let seed = config_seed
            ^ COMMITTEE_SALT
            ^ (self.answers.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = DetRng::new(seed);
        let resamples: Vec<Vec<u32>> = (0..self.config.n_models)
            .map(|_| (0..answered.len()).map(|_| answered[rng.index(answered.len())]).collect())
            .collect();
        // min_items = 1: members are few but individually heavy, and
        // par_map_min's order-preserving merge keeps the average
        // bit-identical under any NEMO_THREADS.
        let members = par_map_min(&resamples, 1, |k, resample: &Vec<u32>| {
            trainer.fit(
                &family.features,
                &targets,
                Some(resample),
                seed.wrapping_add(k as u64 * 7919),
            )
        });
        let mut usefulness = BootstrapEnsemble::mean_proba(&members, &family.features);
        for &(c, accept) in &self.answers {
            usefulness[c as usize] = if accept { 1.0 } else { 0.0 };
        }
        usefulness
    }

    /// Acquisition scores: committee probability blended with the
    /// max-normalized SEU utility prior from the score table.
    fn acquisition_scores(&mut self, session: &Session<'_>) -> Vec<f64> {
        let seed = session.config().seed;
        // invariant: `round` ensures the family before scoring.
        let family = self.candidates.as_ref().expect("family enumerated before scoring");
        let mut scores = self.committee_scores(seed, family);
        if self.config.blend > 0.0 {
            let view = session.view();
            let table = self.scorer.score_table(&view, session.aggregates().aggs());
            let utilities: Vec<f64> = family
                .lfs
                .iter()
                .map(|lf| {
                    let (w, wu) = table.lf_row(lf.z, lf.y);
                    if w > 0.0 {
                        wu / w
                    } else {
                        0.0
                    }
                })
                .collect();
            let max_u = utilities.iter().cloned().fold(0.0f64, f64::max);
            if max_u > 0.0 {
                for (s, u) in scores.iter_mut().zip(&utilities) {
                    *s += self.config.blend * (u / max_u);
                }
            }
        }
        scores
    }
}

/// The inner acquisition [`Selector`] one IWS round runs through
/// [`Session::select_with`]: ε-greedy over eligible candidates, returning
/// the chosen candidate's anchor example so the reservation flows through
/// the normal session state machine (and all draws through the session
/// RNG).
struct Acquire<'e> {
    lfs: &'e [PrimitiveLf],
    scores: &'e [f64],
    answered: &'e [bool],
    epsilon: f64,
    t: usize,
    chosen: Option<usize>,
}

/// First still-available example covering `z`, if any.
fn anchor_of(view: &SelectionView<'_>, z: u32) -> Option<usize> {
    view.ds
        .train
        .corpus
        .index()
        .postings(z)
        .iter()
        .map(|&i| i as usize)
        .find(|&i| !view.excluded[i])
}

impl Selector for Acquire<'_> {
    fn name(&self) -> &'static str {
        "iws-acquire"
    }

    fn select(&mut self, view: &SelectionView<'_>, rng: &mut DetRng) -> Option<usize> {
        let eligible: Vec<usize> = (0..self.lfs.len())
            .filter(|&j| !self.answered[j] && anchor_of(view, self.lfs[j].z).is_some())
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let explore = self.t < 2 || rng.bernoulli(self.epsilon);
        let pick = if explore {
            eligible[rng.index(eligible.len())]
        } else {
            let scores: Vec<f64> = eligible.iter().map(|&j| self.scores[j]).collect();
            let ties = argmax_set(&scores);
            eligible[ties[rng.index(ties.len())]]
        };
        self.chosen = Some(pick);
        anchor_of(view, self.lfs[pick].z)
    }
}

impl SelectionEngine for IwsEngine {
    fn name(&self) -> &'static str {
        crate::config::SelectionStrategy::Iws.name()
    }

    fn round(
        &mut self,
        session: &mut Session<'_>,
        user: &mut dyn User,
        pipeline: &mut dyn LearningPipeline,
    ) -> Result<StepRecord, SessionError> {
        let iteration = session.iteration();
        let ds = session.dataset();
        self.family(ds);
        let scores = self.acquisition_scores(session);
        // invariant: `family` above filled the cache.
        let family = self.candidates.as_ref().expect("family enumerated above");
        let mut answered = vec![false; family.lfs.len()];
        for &(c, _) in &self.answers {
            answered[c as usize] = true;
        }
        let mut acquire = Acquire {
            lfs: &family.lfs,
            scores: &scores,
            answered: &answered,
            epsilon: self.config.epsilon,
            t: self.answers.len(),
            chosen: None,
        };
        let selected = session.select_with(&mut acquire)?;
        let new_lfs = match selected {
            Some(_anchor) => {
                // invariant: Acquire records its pick before returning an
                // anchor.
                let c = acquire.chosen.expect("anchor implies a chosen candidate");
                let lf = family.lfs[c];
                let accept = user.judge_lf(&lf, ds, session.rng_mut());
                self.answers.push((c as u32, accept));
                if accept {
                    session
                        .submit(vec![lf], pipeline)
                        // invariant: candidates come from the dataset's own
                        // vocabulary, and the anchor was just reserved.
                        .expect("round submits its own suggestion");
                    vec![lf]
                } else {
                    // invariant: the anchor reservation is pending.
                    session.skip(pipeline).expect("round skips its own suggestion");
                    Vec::new()
                }
            }
            None => {
                // Candidate family exhausted (or no anchors left): keep
                // evaluating the frozen model.
                // invariant: the selection above returned None, so no
                // reservation exists.
                session.advance_frozen().expect("no reservation outstanding");
                Vec::new()
            }
        };
        Ok(StepRecord { iteration, selected, new_lfs })
    }

    fn example_selector(&mut self) -> Option<&mut dyn Selector> {
        None
    }

    fn checkpoint_state(&self) -> EngineState {
        EngineState::IwsV1 { answers: self.answers.clone() }
    }

    fn restore_state(&mut self, state: &EngineState, ds: &Dataset) -> Result<(), RestoreError> {
        let EngineState::IwsV1 { answers } = state else {
            return Err(RestoreError::EngineStateMismatch {
                engine: self.name(),
                reason: "checkpoint carries another engine's state",
            });
        };
        let family = self.enumerate(ds);
        let n_cand = family.lfs.len();
        let mut seen = vec![false; n_cand];
        for &(c, _) in answers {
            let Some(slot) = seen.get_mut(c as usize) else {
                return Err(RestoreError::EngineStateMismatch {
                    engine: self.name(),
                    reason: "answer references a candidate outside the dataset's family",
                });
            };
            if *slot {
                return Err(RestoreError::EngineStateMismatch {
                    engine: self.name(),
                    reason: "duplicate answer for one candidate",
                });
            }
            *slot = true;
        }
        self.candidates = Some(family);
        self.answers = answers.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdpConfig;
    use crate::oracle::SimulatedUser;
    use crate::pipeline::StandardPipeline;
    use nemo_data::catalog::toy_text;

    fn run_rounds(ds: &Dataset, seed: u64, rounds: usize) -> (IwsEngine, Vec<StepRecord>) {
        let mut engine = IwsEngine::default();
        let mut session =
            Session::new(ds, IdpConfig { seed, n_iterations: rounds, ..Default::default() });
        let mut user = SimulatedUser::default();
        let mut pipeline = StandardPipeline;
        let recs = (0..rounds)
            .map(|_| engine.round(&mut session, &mut user, &mut pipeline).expect("round"))
            .collect();
        (engine, recs)
    }

    #[test]
    fn rounds_consume_iterations_and_log_answers() {
        let ds = toy_text(1);
        let (engine, recs) = run_rounds(&ds, 7, 6);
        assert_eq!(recs.len(), 6);
        assert_eq!(engine.answers().len(), 6, "one judged candidate per round");
        for rec in &recs {
            assert!(rec.selected.is_some(), "toy family is far from exhausted");
            assert!(rec.new_lfs.len() <= 1);
        }
        let accepted: usize = recs.iter().map(|r| r.new_lfs.len()).sum();
        let accepts = engine.answers().iter().filter(|&&(_, a)| a).count();
        assert_eq!(accepted, accepts, "accepted candidates reach the lineage");
    }

    #[test]
    fn rounds_are_deterministic() {
        let ds = toy_text(1);
        let (e1, r1) = run_rounds(&ds, 3, 8);
        let (e2, r2) = run_rounds(&ds, 3, 8);
        assert_eq!(e1.answers(), e2.answers());
        let sel = |rs: &[StepRecord]| rs.iter().map(|r| r.selected).collect::<Vec<_>>();
        assert_eq!(sel(&r1), sel(&r2));
    }

    #[test]
    fn checkpoint_state_roundtrips_through_restore() {
        let ds = toy_text(1);
        let (engine, _) = run_rounds(&ds, 5, 5);
        let state = engine.checkpoint_state();
        let mut restored = IwsEngine::default();
        restored.restore_state(&state, &ds).expect("valid state restores");
        assert_eq!(restored.answers(), engine.answers());
        assert_eq!(restored.checkpoint_state(), state);
    }

    #[test]
    fn restore_rejects_hostile_states() {
        let ds = toy_text(1);
        let mut engine = IwsEngine::default();
        assert!(matches!(
            engine.restore_state(&EngineState::Seu, &ds),
            Err(RestoreError::EngineStateMismatch { engine: "iws-rank", .. })
        ));
        let out_of_family = EngineState::IwsV1 { answers: vec![(u32::MAX, true)] };
        assert!(engine.restore_state(&out_of_family, &ds).is_err());
        let duplicate = EngineState::IwsV1 { answers: vec![(0, true), (0, false)] };
        assert!(engine.restore_state(&duplicate, &ds).is_err());
    }

    #[test]
    fn committee_is_thread_count_independent_and_pure() {
        // The committee must not consume session RNG and must be a pure
        // function of (seed, answers): two engines with the same log score
        // identically.
        let ds = toy_text(1);
        let (engine, _) = run_rounds(&ds, 11, 6);
        let family = engine.candidates.as_ref().expect("enumerated");
        let s1 = engine.committee_scores(11, family);
        let s2 = engine.committee_scores(11, family);
        assert_eq!(s1, s2);
        assert!(s1.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn accepted_candidates_flow_through_the_contextualizer_path() {
        // Accepts submit via Session::submit with the anchor pending, so
        // lineage records a real dev example, same as user-authored LFs.
        let ds = toy_text(1);
        let mut engine = IwsEngine::default();
        let mut session =
            Session::new(&ds, IdpConfig { seed: 2, n_iterations: 12, ..Default::default() });
        // A permissive user so accepts actually happen on the toy task.
        let mut user = SimulatedUser::with_threshold(0.5);
        let mut pipeline = StandardPipeline;
        for _ in 0..12 {
            engine.round(&mut session, &mut user, &mut pipeline).expect("round");
        }
        assert!(!session.lineage().is_empty(), "some candidate should be accepted");
        assert_eq!(session.matrix().n_lfs(), session.lineage().len());
        assert_eq!(session.iteration(), 12);
    }
}

//! Selection engines: pluggable strategies for what the user is asked
//! each interactive round.
//!
//! The original API grew one loop per strategy — `NemoSystem`'s SEU
//! suggest/submit frontend, plus a bespoke `run` per baseline. A
//! [`SelectionEngine`] inverts that: the engine owns one *round* of its
//! protocol against the shared [`Session`] state machine, and every
//! driver (`NemoSystem::run_with_user`, the multi-tenant
//! [`crate::pool::SessionPool`], checkpoint/restore) is engine-agnostic.
//!
//! Two peer engines ship today, selected by the
//! [`SelectionStrategy`] switch on
//! [`IdpConfig`]:
//!
//! - [`SeuEngine`] — the paper's protocol and the doctrine's reference
//!   path: pick the development example with the highest expected SEU
//!   utility, ask the user to author an LF for it.
//! - [`IwsEngine`] — Interactive Weak Supervision (Boecking et al.):
//!   enumerate keyword-LF candidates from the vocabulary, rank them with
//!   a bootstrap-committee usefulness model updated online from
//!   accept/reject feedback, and ask the user only to judge the
//!   top-ranked candidate.
//!
//! Both feed accepted LFs through the contextualizer identically (an
//! accepted IWS candidate is submitted with its anchor example as the
//! development context, exactly like a user-authored LF), draw all
//! randomness from the session's checkpointed RNG stream, and persist
//! their state through the versioned
//! [`EngineState`] checkpoint section —
//! so pooled, evicted, and restored sessions resume bit-identically
//! regardless of engine (`tests/iws_engine_differential.rs`).
//!
//! To add an engine: implement [`SelectionEngine`], give it a
//! [`SelectionStrategy`] variant (and
//! register that variant in nemo-lint's switch registry with a
//! differential test), add an [`EngineState`]
//! variant if it carries state, and wire both into [`engine_for`].

use crate::checkpoint::EngineState;
use crate::config::{IdpConfig, SelectionStrategy};
use crate::error::{RestoreError, SessionError};
use crate::idp::{Selector, StepRecord};
use crate::oracle::User;
use crate::pipeline::LearningPipeline;
use crate::session::Session;
use crate::seu::SeuSelector;
use nemo_data::Dataset;

mod iws;

pub use iws::{IwsEngine, IwsEngineConfig};

/// One selection strategy's interactive protocol over the shared
/// [`Session`] state machine.
///
/// The contract every implementation upholds:
///
/// - [`SelectionEngine::round`] consumes exactly one iteration (via
///   `submit`, `skip`, or `advance_frozen`) and never leaves a
///   suggestion pending;
/// - all randomness is drawn from the session's RNG
///   ([`Session::rng_mut`] / the `rng` handed to its [`Selector`]), so
///   the checkpointed stream covers every draw;
/// - [`SelectionEngine::checkpoint_state`] +
///   [`SelectionEngine::restore_state`] round-trip to a bit-identical
///   continuation: a restored engine makes the same proposals, in the
///   same order, as the uninterrupted one.
///
/// Engines are `Send` so [`crate::pool::SessionPool`] can run resident
/// sessions on its worker threads.
pub trait SelectionEngine: Send {
    /// Engine name for reports (matches
    /// [`SelectionStrategy::name`](crate::config::SelectionStrategy::name)).
    fn name(&self) -> &'static str;

    /// Run one full interactive round against `session`, asking `user`
    /// whatever this engine's protocol asks (author an LF / judge a
    /// candidate), and re-learn through `pipeline`.
    ///
    /// # Errors
    ///
    /// [`SessionError::SuggestionPending`] if a manual-frontend
    /// suggestion is still unresolved; the round itself always resolves
    /// the reservations it makes.
    fn round(
        &mut self,
        session: &mut Session<'_>,
        user: &mut dyn User,
        pipeline: &mut dyn LearningPipeline,
    ) -> Result<StepRecord, SessionError>;

    /// The example [`Selector`] backing the manual suggest/submit
    /// frontend, if this engine's protocol has one. Engines that propose
    /// LF candidates themselves (IWS) return `None`, and the frontend
    /// reports [`SessionError::EngineDriven`].
    fn example_selector(&mut self) -> Option<&mut dyn Selector>;

    /// Snapshot the engine's state for a
    /// [`crate::checkpoint::SessionCheckpoint`].
    fn checkpoint_state(&self) -> EngineState;

    /// Restore the engine from a checkpointed state, validating it
    /// against `ds`.
    ///
    /// # Errors
    ///
    /// [`RestoreError::EngineStateMismatch`] if the state belongs to a
    /// different engine or is inconsistent with the dataset's candidate
    /// family.
    fn restore_state(&mut self, state: &EngineState, ds: &Dataset) -> Result<(), RestoreError>;
}

/// Build the engine the config's
/// [`SelectionStrategy`] selects.
pub fn engine_for(config: &IdpConfig) -> Box<dyn SelectionEngine> {
    match config.selection {
        SelectionStrategy::Seu => Box::new(SeuEngine::new()),
        SelectionStrategy::Iws => Box::new(IwsEngine::new(IwsEngineConfig::default())),
    }
}

/// The SEU engine: the paper's protocol (and the reference path of the
/// `SelectionStrategy` switch). Each round selects the development
/// example with the highest expected SEU utility, asks the user to
/// author LFs for it, and submits them through the contextualized
/// pipeline. All engine state beyond the session itself is the
/// [`SeuSelector`]'s derived score cache, rebuilt cold on restore.
#[derive(Debug, Clone, Default)]
pub struct SeuEngine {
    selector: SeuSelector,
}

impl SeuEngine {
    /// An engine with the default SEU selector configuration.
    pub fn new() -> Self {
        Self { selector: SeuSelector::new() }
    }

    /// An engine over an explicitly configured selector (ablations:
    /// user-model weighting, utility variant, scoring path).
    pub fn with_selector(selector: SeuSelector) -> Self {
        Self { selector }
    }
}

impl SelectionEngine for SeuEngine {
    fn name(&self) -> &'static str {
        SelectionStrategy::Seu.name()
    }

    fn round(
        &mut self,
        session: &mut Session<'_>,
        user: &mut dyn User,
        pipeline: &mut dyn LearningPipeline,
    ) -> Result<StepRecord, SessionError> {
        let iteration = session.iteration();
        let selected = session.select_with(&mut self.selector)?;
        let new_lfs = match selected {
            Some(x) => {
                // Multi-LF submissions share the pending example; an
                // empty answer consumes the iteration like a skip.
                let lfs = session.develop(x, user);
                session
                    .submit(lfs.clone(), pipeline)
                    // invariant: users develop LFs over real primitives,
                    // and `x` is the reservation this round just made.
                    .expect("round submits its own suggestion");
                lfs
            }
            None => {
                // Pool exhausted: keep evaluating the frozen model.
                // invariant: the selection above returned None, so no
                // reservation exists.
                session.advance_frozen().expect("no reservation outstanding");
                Vec::new()
            }
        };
        Ok(StepRecord { iteration, selected, new_lfs })
    }

    fn example_selector(&mut self) -> Option<&mut dyn Selector> {
        Some(&mut self.selector)
    }

    fn checkpoint_state(&self) -> EngineState {
        EngineState::Seu
    }

    fn restore_state(&mut self, state: &EngineState, _ds: &Dataset) -> Result<(), RestoreError> {
        match state {
            EngineState::Seu => Ok(()),
            _ => Err(RestoreError::EngineStateMismatch {
                engine: self.name(),
                reason: "checkpoint carries another engine's state",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionStrategy;
    use nemo_data::catalog::toy_text;

    #[test]
    fn factory_follows_the_config_switch() {
        let seu = engine_for(&IdpConfig::default());
        assert_eq!(seu.name(), "seu");
        let iws =
            engine_for(&IdpConfig { selection: SelectionStrategy::Iws, ..Default::default() });
        assert_eq!(iws.name(), "iws-rank");
    }

    #[test]
    fn seu_engine_rejects_foreign_state() {
        let ds = toy_text(1);
        let mut engine = SeuEngine::new();
        assert!(engine.restore_state(&EngineState::Seu, &ds).is_ok());
        let iws_state = EngineState::IwsV1 { answers: vec![(0, true)] };
        assert!(matches!(
            engine.restore_state(&iws_state, &ds),
            Err(RestoreError::EngineStateMismatch { engine: "seu", .. })
        ));
    }

    #[test]
    fn seu_engine_exposes_the_manual_frontend() {
        let mut engine = SeuEngine::new();
        assert!(engine.example_selector().is_some());
        let mut iws = IwsEngine::new(IwsEngineConfig::default());
        assert!(iws.example_selector().is_none());
    }
}

//! Simulated users (paper Sec. 5.1, "Simulated User").
//!
//! Given a selected development example, the simulated user mirrors the
//! three-step workflow of Sec. 4.1: determine the example's (ground-truth)
//! label `y`, collect the candidate LFs `{λ_{z,y} : z ∈ x}`, filter out
//! candidates whose *true* accuracy on the unlabeled pool falls below a
//! threshold `t` (resembling human expertise; paper default `t = 0.5`),
//! and sample one of the survivors uniformly. When the dataset carries a
//! lexicon (sentiment tasks), candidates are restricted to lexicon
//! primitives first (paper footnote 1 / Appendix C).
//!
//! [`NoisyUser`] adds imperfection for the user-study simulation
//! (Table 3): occasional threshold lapses and per-user threshold jitter.

use nemo_data::Dataset;
use nemo_lf::PrimitiveLf;
use nemo_sparse::DetRng;

/// What the simulated user does when no candidate passes the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Return the highest-accuracy candidate anyway (a determined user
    /// always writes *something*); the default, matching the paper's
    /// fixed iteration budget in which every iteration yields an LF.
    #[default]
    BestAvailable,
    /// Decline to write an LF this iteration.
    Abstain,
}

/// A user that can be queried with a development example.
pub trait User {
    /// Short name for reports.
    fn name(&self) -> &'static str {
        "user"
    }

    /// Inspect example `x` (train-split index) and return an LF, or `None`
    /// if the user declines.
    fn provide_lf(&mut self, x: usize, ds: &Dataset, rng: &mut DetRng) -> Option<PrimitiveLf>;

    /// Multi-LF variant (Sec. 7): return up to `k` distinct LFs. The
    /// default repeatedly queries `provide_lf` semantics over distinct
    /// primitives.
    fn provide_lfs(
        &mut self,
        x: usize,
        k: usize,
        ds: &Dataset,
        rng: &mut DetRng,
    ) -> Vec<PrimitiveLf> {
        let mut out = Vec::new();
        for _ in 0..k {
            match self.provide_lf(x, ds, rng) {
                Some(lf) if !out.contains(&lf) => out.push(lf),
                _ => {}
            }
        }
        out
    }

    /// IWS-style feedback (Boecking et al.): judge a candidate LF the
    /// selection engine proposes — `true` accepts it into the session's
    /// lineage, `false` rejects it (the iteration is still consumed, as
    /// in the fixed-budget protocol). The default accepts every
    /// proposal, so frontends without a judgment UI simply trust the
    /// engine's ranking.
    fn judge_lf(&mut self, lf: &PrimitiveLf, ds: &Dataset, rng: &mut DetRng) -> bool {
        let _ = (lf, ds, rng);
        true
    }
}

/// The accuracy-thresholded oracle user of the paper's experiments.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    /// Accuracy threshold `t` (paper default 0.5; Fig. 8 sweeps it).
    pub threshold: f64,
    /// Consult the dataset lexicon when available.
    pub use_lexicon: bool,
    /// Behaviour when no candidate passes the threshold.
    pub fallback: FallbackPolicy,
}

impl Default for SimulatedUser {
    fn default() -> Self {
        Self { threshold: 0.5, use_lexicon: true, fallback: FallbackPolicy::BestAvailable }
    }
}

impl SimulatedUser {
    /// Construct with a threshold, keeping other defaults.
    pub fn with_threshold(threshold: f64) -> Self {
        Self { threshold, ..Default::default() }
    }

    /// All candidate LFs for example `x` with their true accuracies, in
    /// primitive order. Lexicon membership is handled in `Self::pick`,
    /// which *prefers* threshold-passing lexicon candidates but may fall
    /// back to non-lexicon primitives (a real user is not limited to the
    /// lexicon; it only guides attention).
    pub fn candidates(&self, x: usize, ds: &Dataset) -> Vec<(PrimitiveLf, f64)> {
        let y = ds.train.labels[x];
        ds.train
            .corpus
            .primitives_of(x)
            .iter()
            .filter_map(|&z| {
                let lf = PrimitiveLf::new(z, y);
                lf.accuracy_against(&ds.train.corpus, &ds.train.labels).map(|acc| (lf, acc))
            })
            .collect()
    }

    fn pick(
        &self,
        candidates: &[(PrimitiveLf, f64)],
        threshold: f64,
        ds: &Dataset,
        rng: &mut DetRng,
    ) -> Option<PrimitiveLf> {
        // Preference order: threshold-passing lexicon candidates,
        // threshold-passing candidates of any kind, then the fallback.
        if self.use_lexicon && !ds.lexicon.is_empty() {
            let lex_passing: Vec<&(PrimitiveLf, f64)> = candidates
                .iter()
                .filter(|&&(lf, acc)| acc >= threshold && ds.in_lexicon(lf.z))
                .collect();
            if !lex_passing.is_empty() {
                return Some(lex_passing[rng.index(lex_passing.len())].0);
            }
        }
        let passing: Vec<&(PrimitiveLf, f64)> =
            candidates.iter().filter(|&&(_, acc)| acc >= threshold).collect();
        if !passing.is_empty() {
            return Some(passing[rng.index(passing.len())].0);
        }
        match self.fallback {
            FallbackPolicy::Abstain => None,
            FallbackPolicy::BestAvailable => candidates
                .iter()
                // invariant: accuracies are empirical ratios in [0, 1],
                // never NaN, so partial_cmp always succeeds.
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("accuracies are finite"))
                .map(|&(lf, _)| lf),
        }
    }
}

impl User for SimulatedUser {
    fn name(&self) -> &'static str {
        "simulated-user"
    }

    fn provide_lf(&mut self, x: usize, ds: &Dataset, rng: &mut DetRng) -> Option<PrimitiveLf> {
        let candidates = self.candidates(x, ds);
        if candidates.is_empty() {
            return None;
        }
        self.pick(&candidates, self.threshold, ds, rng)
    }

    /// Accept a proposed candidate iff its *true* accuracy on the
    /// unlabeled pool meets the user's expertise threshold — the same
    /// bar this user applies to LFs it authors itself.
    fn judge_lf(&mut self, lf: &PrimitiveLf, ds: &Dataset, _rng: &mut DetRng) -> bool {
        lf.accuracy_against(&ds.train.corpus, &ds.train.labels)
            .is_some_and(|acc| acc >= self.threshold)
    }

    fn provide_lfs(
        &mut self,
        x: usize,
        k: usize,
        ds: &Dataset,
        rng: &mut DetRng,
    ) -> Vec<PrimitiveLf> {
        let mut candidates = self.candidates(x, ds);
        let mut out = Vec::new();
        for _ in 0..k {
            let Some(lf) = self.pick(&candidates, self.threshold, ds, rng) else {
                break;
            };
            out.push(lf);
            candidates.retain(|&(c, _)| c != lf);
            if candidates.is_empty() {
                break;
            }
        }
        out
    }
}

/// An imperfect user for the simulated user study (Table 3; DESIGN.md §2
/// substitution 4): with probability `lapse` the accuracy filter is
/// skipped entirely, and the base threshold is jittered per user.
#[derive(Debug, Clone)]
pub struct NoisyUser {
    inner: SimulatedUser,
    /// Probability of skipping the accuracy filter on a query.
    pub lapse: f64,
}

impl NoisyUser {
    /// Create a noisy user whose personal threshold is jittered by
    /// `N(0, jitter)` around `base_threshold`.
    pub fn new(base_threshold: f64, jitter: f64, lapse: f64, rng: &mut DetRng) -> Self {
        let threshold = (base_threshold + rng.gaussian() * jitter).clamp(0.4, 0.9);
        Self { inner: SimulatedUser { threshold, ..Default::default() }, lapse }
    }
}

impl User for NoisyUser {
    fn name(&self) -> &'static str {
        "noisy-user"
    }

    fn provide_lf(&mut self, x: usize, ds: &Dataset, rng: &mut DetRng) -> Option<PrimitiveLf> {
        let candidates = self.inner.candidates(x, ds);
        if candidates.is_empty() {
            return None;
        }
        if rng.bernoulli(self.lapse) {
            // Lapse: pick any candidate, ignoring quality.
            return Some(candidates[rng.index(candidates.len())].0);
        }
        self.inner.pick(&candidates, self.inner.threshold, ds, rng)
    }

    fn judge_lf(&mut self, lf: &PrimitiveLf, ds: &Dataset, rng: &mut DetRng) -> bool {
        if rng.bernoulli(self.lapse) {
            // Lapse: wave the candidate through without checking.
            return true;
        }
        self.inner.judge_lf(lf, ds, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_data::catalog::toy_text;

    #[test]
    fn returns_lf_matching_true_label() {
        let ds = toy_text(1);
        let mut user = SimulatedUser::default();
        let mut rng = DetRng::new(1);
        for x in 0..20 {
            if let Some(lf) = user.provide_lf(x, &ds, &mut rng) {
                assert_eq!(lf.y, ds.train.labels[x], "LF label must be the example's label");
            }
        }
    }

    #[test]
    fn threshold_filters_low_accuracy() {
        let ds = toy_text(1);
        let mut rng = DetRng::new(2);
        let mut strict = SimulatedUser {
            threshold: 0.8,
            fallback: FallbackPolicy::Abstain,
            ..Default::default()
        };
        for x in 0..50 {
            if let Some(lf) = strict.provide_lf(x, &ds, &mut rng) {
                let acc = lf.accuracy_against(&ds.train.corpus, &ds.train.labels).unwrap();
                assert!(acc >= 0.8, "LF accuracy {acc} below strict threshold");
            }
        }
    }

    #[test]
    fn fallback_best_available_always_returns() {
        let ds = toy_text(1);
        let mut rng = DetRng::new(3);
        let mut user = SimulatedUser { threshold: 1.1, ..Default::default() }; // nothing passes
        let lf = user.provide_lf(0, &ds, &mut rng);
        assert!(lf.is_some(), "BestAvailable must return an LF");
        // And it must be the argmax-accuracy candidate.
        let cands = user.candidates(0, &ds);
        let best = cands.iter().map(|&(_, a)| a).fold(f64::NEG_INFINITY, f64::max);
        let got = lf.unwrap().accuracy_against(&ds.train.corpus, &ds.train.labels).unwrap();
        assert!((got - best).abs() < 1e-12);
    }

    #[test]
    fn fallback_abstain_returns_none() {
        let ds = toy_text(1);
        let mut rng = DetRng::new(4);
        let mut user = SimulatedUser {
            threshold: 1.1,
            fallback: FallbackPolicy::Abstain,
            ..Default::default()
        };
        assert!(user.provide_lf(0, &ds, &mut rng).is_none());
    }

    #[test]
    fn lexicon_candidates_preferred_when_passing() {
        let ds = toy_text(1);
        let mut user = SimulatedUser::default();
        let mut rng = DetRng::new(40);
        // Find an example with a threshold-passing lexicon candidate.
        let x = (0..ds.train.n())
            .find(|&i| {
                user.candidates(i, &ds).iter().any(|&(lf, acc)| ds.in_lexicon(lf.z) && acc >= 0.5)
            })
            .expect("toy data has passing lexicon words");
        // Every returned LF must then come from the lexicon.
        for _ in 0..10 {
            let lf = user.provide_lf(x, &ds, &mut rng).unwrap();
            assert!(ds.in_lexicon(lf.z), "expected a lexicon LF, got {lf}");
        }
    }

    #[test]
    fn without_lexicon_all_primitives_are_candidates() {
        let ds = toy_text(1);
        let user = SimulatedUser { use_lexicon: false, ..Default::default() };
        let x = 0;
        let cands = user.candidates(x, &ds);
        assert_eq!(cands.len(), ds.train.corpus.primitives_of(x).len());
    }

    #[test]
    fn multi_lf_returns_distinct() {
        let ds = toy_text(1);
        let mut user = SimulatedUser::default();
        let mut rng = DetRng::new(5);
        let lfs = user.provide_lfs(0, 3, &ds, &mut rng);
        let mut dedup = lfs.clone();
        dedup.dedup();
        assert_eq!(lfs.len(), dedup.len());
    }

    #[test]
    fn noisy_user_lapses_ignore_threshold() {
        let ds = toy_text(1);
        let mut seed_rng = DetRng::new(6);
        // lapse = 1.0 → always unfiltered choice; should sometimes pick
        // LFs below a strict threshold.
        let mut user = NoisyUser::new(0.9, 0.0, 1.0, &mut seed_rng);
        let mut rng = DetRng::new(7);
        let mut below = 0;
        for x in 0..60 {
            if let Some(lf) = user.provide_lf(x, &ds, &mut rng) {
                let acc = lf.accuracy_against(&ds.train.corpus, &ds.train.labels).unwrap();
                if acc < 0.9 {
                    below += 1;
                }
            }
        }
        assert!(below > 0, "lapsing user should sometimes return sub-threshold LFs");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_text(1);
        let mut u1 = SimulatedUser::default();
        let mut u2 = SimulatedUser::default();
        let mut r1 = DetRng::new(8);
        let mut r2 = DetRng::new(8);
        for x in 0..20 {
            assert_eq!(u1.provide_lf(x, &ds, &mut r1), u2.provide_lf(x, &ds, &mut r2));
        }
    }
}

//! Plain-data session snapshots for disconnect/resume.
//!
//! [`SessionCheckpoint`] captures the **authoritative** state of an
//! interactive session — configuration and seed, iteration count, lineage,
//! the collected label-matrix columns, the pool-exclusion set, the latest
//! model outputs, the RNG's raw state, and the contextualizer's EM
//! warm-start seeds. Everything else a live session holds is *derived*
//! cache state and is deterministically rebuilt on restore:
//!
//! - the SEU aggregates are reconstructed with a full
//!   [`crate::session::SeuAggregates::new`] rebuild (exact integer fields,
//!   freshly-summed floats — the state a never-interrupted session is
//!   periodically re-anchored to);
//! - the contextualizer's per-LF distance tables are re-registered in one
//!   batch on the next learning round (batched registration is
//!   bit-identical to incremental registration, differential-tested);
//! - the refined-column cache and the SEU score cache start cold and
//!   self-invalidate through their keys (fresh column tokens, fresh
//!   aggregate-cache identity), then refill to the same values.
//!
//! `tests/session_checkpoint.rs` proves the resulting sessions make the
//! same selections, tune the same percentiles, and produce bit-identical
//! posteriors as never-interrupted ones.
//!
//! The struct is all-public plain data so the `nemo-persist` crate can
//! serialize it without reaching into session internals; restoration
//! re-validates every field against the target dataset
//! ([`crate::session::Session::restore`]), so a checkpoint arriving from a
//! hostile file can be rejected with a typed
//! [`crate::error::RestoreError`] instead of corrupting a session.

use crate::config::IdpConfig;
use nemo_lf::TrackedLf;

/// A complete, self-contained snapshot of one interactive session.
///
/// Produced by [`crate::session::Session::checkpoint`] (core state) or
/// [`crate::system::NemoSystem::checkpoint`] (which also captures the
/// contextualizer warm-start seeds); consumed by the matching `restore`
/// constructors. Labels and votes use their signed (`±1`) encoding so the
/// struct round-trips through byte-level serialization without depending
/// on enum layout.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// The session configuration (including the master seed).
    pub config: IdpConfig,
    /// Completed iterations.
    pub iteration: usize,
    /// The example reserved by an unresolved suggestion, if any.
    pub pending: Option<usize>,
    /// Lineage records in creation order.
    pub lineage: Vec<TrackedLf>,
    /// Raw label-matrix columns, aligned with `lineage`: per column the
    /// sorted `(example id, ±1 vote)` entries.
    pub columns: Vec<Vec<(u32, i8)>>,
    /// `excluded[i]` — training example `i` was already shown to the user.
    pub excluded: Vec<bool>,
    /// Label-model posterior `P(y_i = +1)` on the training split.
    pub train_p_pos: Vec<f64>,
    /// End-model probabilities on the training split.
    pub train_probs: Vec<f64>,
    /// End-model hard predictions on the validation split (`±1` signs).
    pub valid_pred: Vec<i8>,
    /// End-model hard predictions on the test split (`±1` signs).
    pub test_pred: Vec<i8>,
    /// The contextualizer percentile chosen by the last learning round.
    pub chosen_p: Option<f64>,
    /// Raw xoshiro256++ state of the session RNG.
    pub rng_state: [u64; 4],
    /// The RNG's banked second Gaussian draw, if any.
    pub rng_gauss_spare: Option<f64>,
    /// Per-grid-point EM warm-start seeds from the contextualizer
    /// (empty for [`crate::session::Session`]-level checkpoints, for
    /// cold-start configurations, and before the first tuning round).
    pub warm_seeds: Vec<Vec<f64>>,
    /// Selection-engine state ([`EngineState::Seu`] — i.e. none — for
    /// [`crate::session::Session`]-level checkpoints;
    /// [`crate::system::NemoSystem::checkpoint`] fills in the live
    /// engine's state, like `warm_seeds`).
    pub engine: EngineState,
}

/// Versioned selection-engine state carried by a checkpoint.
///
/// Each engine's persisted layout is its own variant; evolving a layout
/// means adding a new variant (`IwsV2`, …), never mutating an existing
/// one, so old checkpoints keep restoring bit-identically. The persist
/// layer maps variants to tagged sections and rejects unknown tags with
/// a typed error.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum EngineState {
    /// The SEU engine keeps no state outside the session: its score
    /// cache is derived and rebuilt cold on restore.
    #[default]
    Seu,
    /// IWS engine state, version 1: the accept/reject answer log in
    /// oracle-query order. This is the engine's *complete* state —
    /// candidates are re-enumerated deterministically from the dataset,
    /// and the bootstrap committee is a pure function of (candidate
    /// features, answers, a seed derived from the config seed and the
    /// answer count) — so restore replays the ranking bit-identically
    /// without persisting any float state.
    IwsV1 {
        /// `(candidate index, accepted)` per oracle query, in order.
        answers: Vec<(u32, bool)>,
    },
}

//! # nemo-core
//!
//! The paper's primary contribution: the **Interactive Data Programming
//! (IDP)** formalism (Sec. 3) and the **Nemo** system (Sec. 4) built on two
//! novel components:
//!
//! - **Select by Expected Utility (SEU)** — the development-data selector
//!   (Eq. 1): pick the example maximizing `E_{P(λ|x)}[Ψ_t(λ)]`, where the
//!   [`user_model`] estimates which LF a user would write from an example
//!   (Eq. 2) and the [`utility`] function scores an LF's informativeness
//!   (Eq. 3).
//! - **LF contextualizer** — refine each LF to abstain outside a percentile
//!   radius of its development data point (Eq. 4), exploiting the
//!   data-to-LF lineage.
//!
//! Plus the machinery around them: the reusable interactive [`session`]
//! engine (incremental SEU aggregates, parallel scoring), the [`idp`] loop
//! shared by all methods, pluggable selection [`engines`] (SEU and the
//! learned IWS candidate ranker as peers), [`pipeline`]s (standard vs
//! contextualized
//! learning), the simulated user [`oracle`] (Sec. 5.1), the ergonomic
//! [`system`] facade, the multi-LF extension of Sec. 7 ([`multi_lf`]), and
//! the multi-tenant serving layer — the immutable [`artifacts`] shared by
//! every user and the [`pool`] scheduling hundreds of sessions over them.

#![warn(missing_docs)]

pub mod artifacts;
pub mod checkpoint;
pub mod config;
pub mod contextualizer;
pub mod engines;
pub mod error;
pub mod idp;
pub mod multi_lf;
pub mod oracle;
pub mod pipeline;
pub mod pool;
pub mod session;
pub mod seu;
pub mod system;
pub mod user_model;
pub mod utility;

pub use artifacts::SharedArtifacts;
pub use checkpoint::{EngineState, SessionCheckpoint};
pub use config::{ContextualizerConfig, IdpConfig, LabelModelKind, SelectionStrategy};
pub use contextualizer::Contextualizer;
pub use engines::{engine_for, IwsEngine, IwsEngineConfig, SelectionEngine, SeuEngine};
pub use error::{RestoreError, SessionError};
pub use idp::{
    IdpSession, LearningCurve, ModelOutputs, RandomSelector, SelectionView, Selector, StepRecord,
};
pub use oracle::{FallbackPolicy, NoisyUser, SimulatedUser, User};
pub use pipeline::{ContextualizedPipeline, LearningPipeline, StandardPipeline};
pub use pool::{
    CheckpointStore, MemoryCheckpointStore, PoolConfig, PoolError, PoolStats, RoundJob,
    RoundOutcome, SessionId, SessionPool,
};
pub use session::{Session, SeuAggregates};
pub use seu::SeuSelector;
pub use system::NemoSystem;
pub use user_model::UserModelKind;
pub use utility::UtilityKind;

//! Multi-tenant session service: hundreds of interactive sessions over
//! one shared artifact set.
//!
//! The paper's serving model (Sec. 3) is many users, each running their
//! own select → develop → learn loop against the *same* immutable example
//! pool. [`SessionPool`] is that deployment shape: it borrows one
//! [`SharedArtifacts`] (typically held behind an `Arc`) and multiplexes
//! any number of per-user sessions over it, keeping at most
//! [`PoolConfig::max_resident`] of them materialized in memory. The rest
//! live as checkpoints in a pluggable [`CheckpointStore`] — the in-memory
//! [`MemoryCheckpointStore`] here, or the durable file-backed store in
//! `nemo-persist` — and are restored transparently when their next round
//! arrives.
//!
//! # Scheduling
//!
//! [`SessionPool::run_round`] serves one session; [`SessionPool::run_rounds`]
//! serves a batch, fanning the rounds out over `nemo_sparse::parallel`
//! workers with work stealing (rounds are coarse and heterogeneous — a
//! cold session pays restore + full re-registration, a warm one only an
//! incremental update — so dynamic scheduling beats fixed partitioning).
//! Batches are processed in waves of `max_resident.max(workers)` jobs so
//! the transient memory footprint stays bounded by the pool's capacity,
//! not the batch size.
//!
//! # Determinism
//!
//! A session's trajectory is a pure function of its own state: rounds of
//! different sessions share nothing mutable, eviction/restore is
//! bit-identical (`tests/session_checkpoint.rs`), and the work-stealing
//! scheduler only changes *when* a round runs, never *what* it computes.
//! Every pooled session therefore reproduces its standalone
//! [`NemoSystem`] run exactly — same selections, same percentiles, same
//! posterior bits — under any worker count and any eviction pattern
//! (`tests/session_pool_differential.rs`).

// lint: allow(determinism/hash-collections): pool maps are keyed stores
// and membership sets; iteration order is never observed.
use std::collections::{HashMap, HashSet};
use std::fmt;
// lint: allow(determinism/wall-clock): round_ns telemetry only; eviction
// uses the logical `clock: u64`, never wall time.
use std::time::Instant;

use crate::artifacts::SharedArtifacts;
use crate::checkpoint::SessionCheckpoint;
use crate::config::{ContextualizerConfig, IdpConfig};
use crate::engines::engine_for;
use crate::error::{RestoreError, SessionError};
use crate::idp::StepRecord;
use crate::oracle::User;
use crate::system::NemoSystem;
use nemo_sparse::parallel;

/// Opaque handle of a session admitted to a [`SessionPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, as used for [`CheckpointStore`] keys.
    pub fn raw(self) -> u64 {
        self.0
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// Where evicted sessions park their checkpoints.
///
/// Implementations are keyed by [`SessionId::raw`]. The pool guarantees
/// `load(id)` is only called for ids it previously `save(id, _)`-ed, and
/// treats every method as fallible — a failing store never corrupts pool
/// state (a failed eviction leaves the session resident, a failed load
/// leaves it evicted).
pub trait CheckpointStore: Send {
    /// Persist `ckpt` under `id`, replacing any previous snapshot.
    fn save(&mut self, id: u64, ckpt: &SessionCheckpoint) -> Result<(), String>;
    /// Fetch the snapshot saved under `id`.
    fn load(&mut self, id: u64) -> Result<SessionCheckpoint, String>;
    /// Drop the snapshot saved under `id`, if any.
    fn remove(&mut self, id: u64) -> Result<(), String>;
}

/// The default [`CheckpointStore`]: checkpoints held in process memory.
///
/// Suited to pools whose eviction exists to bound *working* memory
/// (resident sessions carry rebuilt caches and aggregates; a checkpoint
/// is just the compact authoritative state). For durability across
/// processes use `nemo_persist::FileCheckpointStore`.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    // lint: allow(determinism/hash-collections): keyed store, accessed
    // only by session id; never iterated.
    slots: HashMap<u64, SessionCheckpoint>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&mut self, id: u64, ckpt: &SessionCheckpoint) -> Result<(), String> {
        self.slots.insert(id, ckpt.clone());
        Ok(())
    }

    fn load(&mut self, id: u64) -> Result<SessionCheckpoint, String> {
        self.slots.get(&id).cloned().ok_or_else(|| format!("no checkpoint stored for id {id}"))
    }

    fn remove(&mut self, id: u64) -> Result<(), String> {
        self.slots.remove(&id);
        Ok(())
    }
}

/// Knobs of a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum number of sessions kept materialized in memory; beyond it
    /// the least-recently-used session is checkpointed to the store.
    /// Values below 1 are treated as 1. Default: 64.
    pub max_resident: usize,
    /// Worker threads for [`SessionPool::run_rounds`]. `None` (the
    /// default) follows the ambient `NEMO_THREADS` setting via
    /// [`parallel::num_threads`]; `Some(n)` pins the count, which
    /// determinism tests use to compare fixed worker budgets without
    /// touching the process environment.
    pub workers: Option<usize>,
    /// Contextualizer settings applied to every admitted session.
    pub ctx: ContextualizerConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { max_resident: 64, workers: None, ctx: ContextualizerConfig::default() }
    }
}

/// Counters describing a pool's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Sessions ever admitted.
    pub admitted: u64,
    /// Checkpoint-on-evict events (capacity pressure or explicit).
    pub evictions: u64,
    /// Restores of evicted sessions back to residency.
    pub restores: u64,
    /// Interactive rounds served.
    pub rounds: u64,
}

/// One unit of work for [`SessionPool::run_rounds`]: which session to
/// advance and the user answering its suggestion.
pub struct RoundJob<'u> {
    /// The session to run one round of.
    pub id: SessionId,
    /// The (simulated) user developing LFs for this round. `Send` because
    /// the round may execute on a worker thread.
    pub user: &'u mut (dyn User + Send),
}

impl<'u> RoundJob<'u> {
    /// Pair a session with its user.
    pub fn new(id: SessionId, user: &'u mut (dyn User + Send)) -> Self {
        Self { id, user }
    }
}

/// What one scheduled round did.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The session the round belonged to.
    pub id: SessionId,
    /// The round's interactive record (iteration, selection, new LFs).
    pub record: StepRecord,
    /// Wall-clock latency of the round as the tenant experienced it,
    /// including the restore for sessions that were evicted.
    pub round_ns: u64,
    /// Whether this round had to restore the session from the store.
    pub restored: bool,
}

/// A pool operation that could not be served.
#[derive(Debug)]
pub enum PoolError {
    /// The id was never issued by this pool, or its session was closed.
    UnknownSession {
        /// The offending raw id.
        id: u64,
    },
    /// A [`SessionPool::run_rounds`] batch names the same session twice;
    /// a session cannot run two rounds of one batch concurrently.
    DuplicateJob {
        /// The raw id that appeared more than once.
        id: u64,
    },
    /// The session's interactive protocol reported an error.
    Session {
        /// The raw id of the session.
        id: u64,
        /// The underlying protocol error.
        source: SessionError,
    },
    /// A stored checkpoint failed validation on restore.
    Restore {
        /// The raw id of the session.
        id: u64,
        /// The underlying validation error.
        source: RestoreError,
    },
    /// The [`CheckpointStore`] failed.
    Store {
        /// The raw id of the session.
        id: u64,
        /// Which store operation failed (`"save"`, `"load"`, `"remove"`).
        op: &'static str,
        /// The store's description of the failure.
        reason: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::UnknownSession { id } => {
                write!(f, "session {id} is unknown to this pool (never admitted, or closed)")
            }
            PoolError::DuplicateJob { id } => {
                write!(f, "batch names session {id} more than once")
            }
            PoolError::Session { id, source } => {
                write!(f, "session {id}: {source}")
            }
            PoolError::Restore { id, source } => {
                write!(f, "session {id} failed to restore: {source}")
            }
            PoolError::Store { id, op, reason } => {
                write!(f, "checkpoint store failed to {op} session {id}: {reason}")
            }
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Session { source, .. } => Some(source),
            PoolError::Restore { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Residency state of one admitted session. The live engine is boxed so
/// an evicted or closed slot costs one pointer, not a `NemoSystem`-sized
/// hole in the slot table.
enum Slot<'a> {
    /// Materialized: live engine state, ready to serve a round.
    Resident {
        system: Box<NemoSystem<'a>>,
        /// LRU clock stamp of the last access.
        touch: u64,
    },
    /// Checkpointed to the store; restored on the next access.
    Evicted,
}

/// A multi-tenant scheduler of interactive sessions over one shared
/// artifact set.
///
/// Admission hands out [`SessionId`]s; rounds are served one at a time
/// ([`SessionPool::run_round`]) or as work-stealing batches
/// ([`SessionPool::run_rounds`]). When more than
/// [`PoolConfig::max_resident`] sessions are materialized, the
/// least-recently-used one is checkpointed to the [`CheckpointStore`] and
/// transparently restored on its next round — with no effect on its
/// trajectory.
///
/// ```
/// use std::sync::Arc;
/// use nemo_core::pool::{PoolConfig, SessionPool};
/// use nemo_core::{IdpConfig, SharedArtifacts, SimulatedUser};
/// use nemo_data::catalog::toy_text;
///
/// let artifacts = Arc::new(SharedArtifacts::new(toy_text(1)));
/// // Keep at most 2 of the 4 sessions materialized at a time.
/// let config = PoolConfig { max_resident: 2, ..Default::default() };
/// let mut pool = SessionPool::new(&artifacts, config);
///
/// let ids: Vec<_> = (0..4)
///     .map(|i| {
///         let cfg = IdpConfig { n_iterations: 4, seed: 40 + i, ..Default::default() };
///         pool.admit(cfg).unwrap()
///     })
///     .collect();
///
/// // Interleave rounds; evicted sessions restore transparently.
/// let mut user = SimulatedUser::default();
/// for _ in 0..2 {
///     for &id in &ids {
///         pool.run_round(id, &mut user).unwrap();
///     }
/// }
/// assert!(pool.stats().evictions > 0);
/// for &id in &ids {
///     assert_eq!(pool.with_session(id, |nemo| nemo.iteration()).unwrap(), 2);
/// }
/// ```
pub struct SessionPool<'a> {
    artifacts: &'a SharedArtifacts,
    config: PoolConfig,
    /// One entry per ever-admitted session; `None` marks a closed one.
    slots: Vec<Option<Slot<'a>>>,
    store: Box<dyn CheckpointStore>,
    clock: u64,
    stats: PoolStats,
}

impl<'a> SessionPool<'a> {
    /// A pool over `artifacts` with the in-memory checkpoint store.
    pub fn new(artifacts: &'a SharedArtifacts, config: PoolConfig) -> Self {
        Self::with_store(artifacts, config, Box::new(MemoryCheckpointStore::new()))
    }

    /// A pool with an explicit [`CheckpointStore`] (e.g. the durable
    /// `nemo_persist::FileCheckpointStore`).
    pub fn with_store(
        artifacts: &'a SharedArtifacts,
        mut config: PoolConfig,
        store: Box<dyn CheckpointStore>,
    ) -> Self {
        config.max_resident = config.max_resident.max(1);
        Self { artifacts, config, slots: Vec::new(), store, clock: 0, stats: PoolStats::default() }
    }

    /// Admit a new session with its own per-user `config`, evicting the
    /// least-recently-used resident first if the pool is at capacity.
    ///
    /// # Errors
    ///
    /// [`PoolError::Store`] if making room requires an eviction and the
    /// store rejects the checkpoint.
    pub fn admit(&mut self, config: IdpConfig) -> Result<SessionId, PoolError> {
        self.make_room(1)?;
        let engine = engine_for(&config);
        let system = Box::new(NemoSystem::with_components(
            self.artifacts.dataset(),
            config,
            engine,
            self.config.ctx.clone(),
        ));
        let id = SessionId(self.slots.len() as u64);
        self.clock += 1;
        self.slots.push(Some(Slot::Resident { system, touch: self.clock }));
        self.stats.admitted += 1;
        Ok(id)
    }

    /// Serve one interactive round of session `id`, restoring it from the
    /// store first if it was evicted.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSession`] for an id this pool never issued (or
    /// already closed); [`PoolError::Store`] / [`PoolError::Restore`] if
    /// an eviction or restore on the way fails; [`PoolError::Session`] if
    /// the session's protocol state rejects the round.
    pub fn run_round(
        &mut self,
        id: SessionId,
        user: &mut dyn User,
    ) -> Result<StepRecord, PoolError> {
        self.ensure_resident(id)?;
        self.clock += 1;
        let clock = self.clock;
        // invariant: ensure_resident left the slot materialized.
        let Some(Slot::Resident { system, touch }) = self.slots[id.index()].as_mut() else {
            unreachable!("ensure_resident materializes the slot")
        };
        *touch = clock;
        let record = system
            .step_with_user(user)
            .map_err(|source| PoolError::Session { id: id.raw(), source })?;
        self.stats.rounds += 1;
        Ok(record)
    }

    /// Serve one round for every job in the batch, fanning the rounds out
    /// over work-stealing workers (see the module docs for the wave
    /// discipline bounding transient memory). Outcomes are returned in
    /// job order regardless of scheduling.
    ///
    /// # Errors
    ///
    /// The batch is validated up front: [`PoolError::UnknownSession`] or
    /// [`PoolError::DuplicateJob`] reject it before any round runs. A
    /// failure mid-batch ([`PoolError::Store`], [`PoolError::Restore`],
    /// [`PoolError::Session`]) reports the first error; the pool itself
    /// stays consistent — every session remains either resident or safely
    /// checkpointed — but the batch's outcomes are discarded.
    pub fn run_rounds(
        &mut self,
        jobs: &mut [RoundJob<'_>],
    ) -> Result<Vec<RoundOutcome>, PoolError> {
        // lint: allow(determinism/hash-collections): membership-only
        // duplicate check; never iterated.
        let mut seen = HashSet::new();
        for job in jobs.iter() {
            self.check_open(job.id)?;
            if !seen.insert(job.id) {
                return Err(PoolError::DuplicateJob { id: job.id.raw() });
            }
        }
        let workers = self.workers();
        let wave_len = self.config.max_resident.max(workers).max(1);
        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut start = 0;
        while start < jobs.len() {
            let end = (start + wave_len).min(jobs.len());
            let wave_outcomes = self.run_wave(&mut jobs[start..end], workers)?;
            outcomes.extend(wave_outcomes);
            start = end;
        }
        Ok(outcomes)
    }

    /// Run one wave of at most `max_resident.max(workers)` jobs.
    fn run_wave(
        &mut self,
        jobs: &mut [RoundJob<'_>],
        workers: usize,
    ) -> Result<Vec<RoundOutcome>, PoolError> {
        // Pass 1: fetch checkpoints for the wave's evicted members. This
        // can fail without having touched any slot.
        let mut staged: Vec<Option<SessionCheckpoint>> = Vec::with_capacity(jobs.len());
        for job in jobs.iter() {
            match self.slots[job.id.index()] {
                Some(Slot::Resident { .. }) => staged.push(None),
                Some(Slot::Evicted) => {
                    let ckpt = self.store.load(job.id.raw()).map_err(|reason| {
                        PoolError::Store { id: job.id.raw(), op: "load", reason }
                    })?;
                    staged.push(Some(ckpt));
                }
                // invariant: run_rounds validated every id as open.
                None => unreachable!("batch ids validated as open"),
            }
        }

        // Pass 2 (infallible): move each job's session state into a work
        // cell, leaving its slot empty while the round is in flight.
        let mut cells: Vec<WorkCell<'a, '_>> = jobs
            .iter_mut()
            .zip(staged)
            .map(|(job, ckpt)| {
                // invariant: validated open above.
                let state = match self.slots[job.id.index()].take().expect("slot open") {
                    Slot::Resident { system, .. } => CellState::Live(system),
                    Slot::Evicted => {
                        // invariant: pass 1 staged a checkpoint for every
                        // evicted job before this infallible pass began.
                        CellState::Stored(Box::new(ckpt.expect("pass 1 staged a checkpoint")))
                    }
                };
                WorkCell {
                    id: job.id,
                    user: &mut *job.user,
                    restored: matches!(state, CellState::Stored(_)),
                    state,
                    outcome: None,
                    round_ns: 0,
                    error: None,
                }
            })
            .collect();

        // The rounds themselves: independent per-session work, dynamically
        // scheduled. Each cell is touched by exactly one worker.
        let artifacts = self.artifacts;
        let ctx = &self.config.ctx;
        parallel::par_for_each_stealing_with(&mut cells, workers, |_, cell| {
            // lint: allow(determinism/wall-clock): round_ns telemetry
            // only; it never feeds a result-affecting path.
            let timer = Instant::now();
            let mut system = match std::mem::replace(&mut cell.state, CellState::Failed) {
                CellState::Live(system) => system,
                CellState::Stored(ckpt) => {
                    match NemoSystem::restore_with(artifacts.dataset(), &ckpt, ctx.clone()) {
                        Ok(system) => Box::new(system),
                        Err(source) => {
                            cell.error = Some(PoolError::Restore { id: cell.id.raw(), source });
                            return;
                        }
                    }
                }
                // invariant: cells start Live or Stored and are visited once.
                CellState::Failed => unreachable!("cell visited twice"),
            };
            match system.step_with_user(cell.user) {
                Ok(record) => cell.outcome = Some(record),
                Err(source) => cell.error = Some(PoolError::Session { id: cell.id.raw(), source }),
            }
            cell.round_ns = timer.elapsed().as_nanos() as u64;
            cell.state = CellState::Live(system);
        });

        // Reinsert every session before reporting anything, so an error
        // cannot leave slots empty.
        let mut outcomes = Vec::with_capacity(cells.len());
        let mut first_error = None;
        for cell in cells {
            let idx = cell.id.index();
            match cell.state {
                CellState::Live(system) => {
                    self.clock += 1;
                    if cell.restored {
                        self.stats.restores += 1;
                    }
                    self.slots[idx] = Some(Slot::Resident { system, touch: self.clock });
                }
                // Restore failed: the checkpoint is still in the store.
                CellState::Stored(_) | CellState::Failed => {
                    self.slots[idx] = Some(Slot::Evicted);
                }
            }
            match (cell.outcome, cell.error) {
                (Some(record), None) => {
                    self.stats.rounds += 1;
                    outcomes.push(RoundOutcome {
                        id: cell.id,
                        record,
                        round_ns: cell.round_ns,
                        restored: cell.restored,
                    });
                }
                (_, Some(error)) => {
                    if first_error.is_none() {
                        first_error = Some(error);
                    }
                }
                // invariant: a visited cell has an outcome or an error.
                (None, None) => unreachable!("cell finished without outcome or error"),
            }
        }
        // The wave may have materialized more sessions than capacity;
        // shed the least-recently-used surplus.
        self.make_room(0)?;
        match first_error {
            Some(error) => Err(error),
            None => Ok(outcomes),
        }
    }

    /// Checkpoint session `id` to the store and drop its materialized
    /// state. A no-op for sessions already evicted.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSession`]; [`PoolError::Store`] if the store
    /// rejects the checkpoint (the session then stays resident).
    pub fn evict(&mut self, id: SessionId) -> Result<(), PoolError> {
        self.check_open(id)?;
        self.evict_index(id.index())
    }

    /// Read session `id`'s live state (restoring it first if needed).
    ///
    /// # Errors
    ///
    /// As for [`SessionPool::run_round`], minus the protocol errors.
    pub fn with_session<R>(
        &mut self,
        id: SessionId,
        f: impl FnOnce(&NemoSystem<'a>) -> R,
    ) -> Result<R, PoolError> {
        self.ensure_resident(id)?;
        self.clock += 1;
        let clock = self.clock;
        // invariant: ensure_resident left the slot materialized.
        let Some(Slot::Resident { system, touch }) = self.slots[id.index()].as_mut() else {
            unreachable!("ensure_resident materializes the slot")
        };
        *touch = clock;
        Ok(f(system))
    }

    /// A point-in-time checkpoint of session `id`, wherever it resides.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSession`]; [`PoolError::Store`] if the session
    /// is evicted and the store cannot produce its checkpoint.
    pub fn checkpoint_of(&mut self, id: SessionId) -> Result<SessionCheckpoint, PoolError> {
        self.check_open(id)?;
        match &self.slots[id.index()] {
            Some(Slot::Resident { system, .. }) => Ok(system.checkpoint()),
            Some(Slot::Evicted) => self.store.load(id.raw()).map_err(|reason| PoolError::Store {
                id: id.raw(),
                op: "load",
                reason,
            }),
            // invariant: check_open guarantees the slot exists.
            None => unreachable!("checked open"),
        }
    }

    /// Retire session `id` from the pool, returning its final checkpoint
    /// (so the caller can persist or hand it elsewhere). The id becomes
    /// permanently unknown.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSession`]; [`PoolError::Store`] if the session
    /// was evicted and its checkpoint cannot be loaded (the session stays
    /// open in that case).
    pub fn close(&mut self, id: SessionId) -> Result<SessionCheckpoint, PoolError> {
        self.check_open(id)?;
        let idx = id.index();
        let ckpt = match &self.slots[idx] {
            Some(Slot::Resident { system, .. }) => system.checkpoint(),
            Some(Slot::Evicted) => self
                .store
                .load(id.raw())
                .map_err(|reason| PoolError::Store { id: id.raw(), op: "load", reason })?,
            // invariant: check_open guarantees the slot exists.
            None => unreachable!("checked open"),
        };
        self.slots[idx] = None;
        // Best-effort: a store that cannot forget a closed session is not
        // an error the caller can act on.
        let _ = self.store.remove(id.raw());
        Ok(ckpt)
    }

    /// Whether session `id` is currently materialized in memory.
    pub fn is_resident(&self, id: SessionId) -> bool {
        matches!(self.slots.get(id.index()), Some(Some(Slot::Resident { .. })))
    }

    /// Number of open (admitted, not closed) sessions.
    pub fn session_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of sessions currently materialized in memory.
    pub fn resident_count(&self) -> usize {
        self.slots.iter().flatten().filter(|s| matches!(s, Slot::Resident { .. })).count()
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    fn workers(&self) -> usize {
        self.config.workers.unwrap_or_else(parallel::num_threads)
    }

    fn check_open(&self, id: SessionId) -> Result<(), PoolError> {
        match self.slots.get(id.index()) {
            Some(Some(_)) => Ok(()),
            _ => Err(PoolError::UnknownSession { id: id.raw() }),
        }
    }

    /// Evict least-recently-used residents until `incoming` more sessions
    /// fit within [`PoolConfig::max_resident`].
    fn make_room(&mut self, incoming: usize) -> Result<(), PoolError> {
        while self.resident_count() + incoming > self.config.max_resident {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| match slot {
                    Some(Slot::Resident { touch, .. }) => Some((i, *touch)),
                    _ => None,
                })
                .min_by_key(|&(_, touch)| touch);
            match victim {
                Some((idx, _)) => self.evict_index(idx)?,
                None => break,
            }
        }
        Ok(())
    }

    fn evict_index(&mut self, idx: usize) -> Result<(), PoolError> {
        if let Some(Slot::Resident { system, .. }) = &self.slots[idx] {
            let ckpt = system.checkpoint();
            // Save first: if the store fails, the session stays resident.
            self.store.save(idx as u64, &ckpt).map_err(|reason| PoolError::Store {
                id: idx as u64,
                op: "save",
                reason,
            })?;
            self.slots[idx] = Some(Slot::Evicted);
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Materialize session `id` if it is evicted.
    fn ensure_resident(&mut self, id: SessionId) -> Result<(), PoolError> {
        self.check_open(id)?;
        if self.is_resident(id) {
            return Ok(());
        }
        self.make_room(1)?;
        let ckpt = self.store.load(id.raw()).map_err(|reason| PoolError::Store {
            id: id.raw(),
            op: "load",
            reason,
        })?;
        let system =
            NemoSystem::restore_with(self.artifacts.dataset(), &ckpt, self.config.ctx.clone())
                .map(Box::new)
                .map_err(|source| PoolError::Restore { id: id.raw(), source })?;
        self.clock += 1;
        self.slots[id.index()] = Some(Slot::Resident { system, touch: self.clock });
        self.stats.restores += 1;
        Ok(())
    }
}

/// In-flight state of one batch job.
struct WorkCell<'a, 'u> {
    id: SessionId,
    user: &'u mut (dyn User + Send),
    state: CellState<'a>,
    restored: bool,
    outcome: Option<StepRecord>,
    round_ns: u64,
    error: Option<PoolError>,
}

enum CellState<'a> {
    Live(Box<NemoSystem<'a>>),
    Stored(Box<SessionCheckpoint>),
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedUser;
    use nemo_data::catalog::toy_text;

    fn idp(n: usize, seed: u64) -> IdpConfig {
        IdpConfig { n_iterations: n, eval_every: 2, seed, ..Default::default() }
    }

    fn artifacts() -> SharedArtifacts {
        SharedArtifacts::new(toy_text(1))
    }

    /// Standalone reference trajectory: selections then final posterior.
    fn standalone(
        arts: &SharedArtifacts,
        cfg: IdpConfig,
        rounds: usize,
    ) -> (Vec<Option<usize>>, Vec<u64>) {
        let mut nemo = NemoSystem::new(arts.dataset(), cfg);
        let mut user = SimulatedUser::default();
        let mut selections = Vec::new();
        for _ in 0..rounds {
            selections.push(nemo.step_with_user(&mut user).unwrap().selected);
        }
        let bits =
            nemo.outputs().train_posterior.p_pos_slice().iter().map(|p| p.to_bits()).collect();
        (selections, bits)
    }

    #[test]
    fn pooled_sessions_match_standalone_under_churn() {
        let arts = artifacts();
        // Capacity 1 forces an evict/restore between every pair of rounds.
        let config = PoolConfig { max_resident: 1, workers: Some(1), ..Default::default() };
        let mut pool = SessionPool::new(&arts, config);
        let cfgs: Vec<IdpConfig> = (0..3).map(|i| idp(6, 100 + i)).collect();
        let ids: Vec<SessionId> = cfgs.iter().map(|c| pool.admit(c.clone()).unwrap()).collect();

        let mut users: Vec<SimulatedUser> = ids.iter().map(|_| SimulatedUser::default()).collect();
        let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); ids.len()];
        for _round in 0..4 {
            for (k, &id) in ids.iter().enumerate() {
                let rec = pool.run_round(id, &mut users[k]).unwrap();
                selections[k].push(rec.selected);
            }
        }
        assert!(pool.stats().evictions >= 8, "capacity 1 must thrash: {:?}", pool.stats());
        for (k, cfg) in cfgs.iter().enumerate() {
            let (want_sel, want_bits) = standalone(&arts, cfg.clone(), 4);
            assert_eq!(selections[k], want_sel, "session {k} selections diverged");
            let got_bits: Vec<u64> = pool
                .with_session(ids[k], |nemo| {
                    nemo.outputs()
                        .train_posterior
                        .p_pos_slice()
                        .iter()
                        .map(|p| p.to_bits())
                        .collect()
                })
                .unwrap();
            assert_eq!(got_bits, want_bits, "session {k} posterior diverged");
        }
    }

    #[test]
    fn batch_rounds_match_serial_rounds() {
        let arts = artifacts();
        let mk_pool = |workers: usize| {
            let config =
                PoolConfig { max_resident: 2, workers: Some(workers), ..Default::default() };
            SessionPool::new(&arts, config)
        };

        let run = |mut pool: SessionPool<'_>, batched: bool| -> Vec<Vec<Option<usize>>> {
            let ids: Vec<SessionId> =
                (0..4).map(|i| pool.admit(idp(6, 300 + i)).unwrap()).collect();
            let mut users: Vec<SimulatedUser> =
                ids.iter().map(|_| SimulatedUser::default()).collect();
            let mut selections: Vec<Vec<Option<usize>>> = vec![Vec::new(); ids.len()];
            for _round in 0..3 {
                if batched {
                    let mut jobs: Vec<RoundJob<'_>> = ids
                        .iter()
                        .zip(users.iter_mut())
                        .map(|(&id, u)| RoundJob::new(id, u))
                        .collect();
                    let outcomes = pool.run_rounds(&mut jobs).unwrap();
                    assert_eq!(outcomes.len(), ids.len());
                    for (k, outcome) in outcomes.iter().enumerate() {
                        assert_eq!(outcome.id, ids[k], "outcomes must keep job order");
                        selections[k].push(outcome.record.selected);
                    }
                } else {
                    for (k, &id) in ids.iter().enumerate() {
                        selections[k].push(pool.run_round(id, &mut users[k]).unwrap().selected);
                    }
                }
            }
            selections
        };

        let serial = run(mk_pool(1), false);
        for workers in [1usize, 4] {
            assert_eq!(run(mk_pool(workers), true), serial, "workers={workers}");
        }
    }

    #[test]
    fn batch_validation_rejects_bad_jobs() {
        let arts = artifacts();
        let mut pool = SessionPool::new(&arts, PoolConfig::default());
        let id = pool.admit(idp(4, 1)).unwrap();
        let mut u1 = SimulatedUser::default();
        let mut u2 = SimulatedUser::default();
        let mut dup = vec![RoundJob::new(id, &mut u1), RoundJob::new(id, &mut u2)];
        assert!(matches!(pool.run_rounds(&mut dup), Err(PoolError::DuplicateJob { .. })));
        let ghost = SessionId(99);
        let mut unknown = vec![RoundJob::new(ghost, &mut u1)];
        assert!(matches!(pool.run_rounds(&mut unknown), Err(PoolError::UnknownSession { id: 99 })));
        // The failed batches ran no rounds.
        assert_eq!(pool.stats().rounds, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let arts = artifacts();
        let config = PoolConfig { max_resident: 2, workers: Some(1), ..Default::default() };
        let mut pool = SessionPool::new(&arts, config);
        let a = pool.admit(idp(4, 1)).unwrap();
        let b = pool.admit(idp(4, 2)).unwrap();
        let mut user = SimulatedUser::default();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        pool.run_round(a, &mut user).unwrap();
        let c = pool.admit(idp(4, 3)).unwrap();
        assert!(pool.is_resident(a));
        assert!(!pool.is_resident(b));
        assert!(pool.is_resident(c));
        assert_eq!(pool.resident_count(), 2);
        assert_eq!(pool.session_count(), 3);
    }

    #[test]
    fn close_retires_the_id() {
        let arts = artifacts();
        let mut pool = SessionPool::new(&arts, PoolConfig::default());
        let id = pool.admit(idp(4, 9)).unwrap();
        let mut user = SimulatedUser::default();
        pool.run_round(id, &mut user).unwrap();
        let ckpt = pool.close(id).unwrap();
        assert_eq!(ckpt.iteration, 1);
        assert!(matches!(pool.run_round(id, &mut user), Err(PoolError::UnknownSession { .. })));
        assert_eq!(pool.session_count(), 0);
        // New admissions still work and get a fresh id.
        let id2 = pool.admit(idp(4, 10)).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn stats_count_the_lifecycle() {
        let arts = artifacts();
        let config = PoolConfig { max_resident: 1, workers: Some(1), ..Default::default() };
        let mut pool = SessionPool::new(&arts, config);
        let a = pool.admit(idp(4, 5)).unwrap();
        let b = pool.admit(idp(4, 6)).unwrap(); // evicts a
        let mut user = SimulatedUser::default();
        pool.run_round(a, &mut user).unwrap(); // restores a, evicts b
        pool.run_round(b, &mut user).unwrap(); // restores b, evicts a
        let stats = pool.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.restores, 2);
    }

    #[test]
    fn failing_store_keeps_sessions_resident() {
        struct RejectingStore;
        impl CheckpointStore for RejectingStore {
            fn save(&mut self, _: u64, _: &SessionCheckpoint) -> Result<(), String> {
                Err("disk full".into())
            }
            fn load(&mut self, id: u64) -> Result<SessionCheckpoint, String> {
                Err(format!("no checkpoint for {id}"))
            }
            fn remove(&mut self, _: u64) -> Result<(), String> {
                Ok(())
            }
        }
        let arts = artifacts();
        let config = PoolConfig { max_resident: 1, workers: Some(1), ..Default::default() };
        let mut pool = SessionPool::with_store(&arts, config, Box::new(RejectingStore));
        let a = pool.admit(idp(4, 1)).unwrap();
        // Admitting a second session needs an eviction, which the store
        // rejects; the first session must remain live and servable.
        assert!(matches!(pool.admit(idp(4, 2)), Err(PoolError::Store { op: "save", .. })));
        assert!(pool.is_resident(a));
        let mut user = SimulatedUser::default();
        pool.run_round(a, &mut user).unwrap();
    }
}

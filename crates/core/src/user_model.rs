//! The SEU user model `P(λ | x)` (paper Eq. 2 and Eq. 6).
//!
//! Given a development example `x`, the user model scores how likely the
//! user is to return each candidate LF `λ_{z,y}` with `z` contained in `x`.
//! Following the paper's chain-rule decomposition, the probability factors
//! into the label prior `P(y)` and a primitive-pick term proportional to a
//! weight `w(acc(λ_{z,y}))`:
//!
//! - [`UserModelKind::AccuracyWeighted`] (Eq. 2): `w = acc`, normalized
//!   over the candidate primitives of `x` — users preferentially extract
//!   primitives that are strongly label-indicative.
//! - [`UserModelKind::Uniform`] (Table 6 ablation): `w = 1`.
//! - [`UserModelKind::MultiLfIndicator`] (Eq. 6, Sec. 7): `w = acc ·
//!   1[acc > 0.5]`, *unnormalized* — the multi-LF generalization where the
//!   user may return every sufficiently-accurate candidate.
//!
//! Accuracies are approximated with the end model's current predictions
//! `ŷ = f(x)` in place of the unobserved ground truth (Sec. 4.2).

/// The user-model variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UserModelKind {
    /// Accuracy-weighted pick probability (paper Eq. 2) — Nemo's default.
    #[default]
    AccuracyWeighted,
    /// Uniform pick probability (Table 6 ablation).
    Uniform,
    /// Thresholded accuracy weight of the multi-LF extension (Eq. 6).
    MultiLfIndicator,
}

impl UserModelKind {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            UserModelKind::AccuracyWeighted => "accuracy-weighted",
            UserModelKind::Uniform => "uniform",
            UserModelKind::MultiLfIndicator => "multi-lf-indicator",
        }
    }

    /// Weight assigned to a candidate LF with estimated accuracy `acc`.
    #[inline]
    pub fn weight(self, acc: f64) -> f64 {
        match self {
            UserModelKind::AccuracyWeighted => acc,
            UserModelKind::Uniform => 1.0,
            UserModelKind::MultiLfIndicator => {
                if acc > 0.5 {
                    acc
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether weights are normalized over the candidates of an example
    /// (the single-LF models are proper conditional distributions; the
    /// multi-LF model scores each candidate independently).
    #[inline]
    pub fn normalized(self) -> bool {
        !matches!(self, UserModelKind::MultiLfIndicator)
    }
}

/// Normalized pick distribution over candidate weights (helper used by the
/// SEU scorer and by tests). Returns uniform over positive weights when the
/// total is zero.
pub fn pick_distribution(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        weights.iter().map(|w| w / total).collect()
    } else if weights.is_empty() {
        Vec::new()
    } else {
        vec![1.0 / weights.len() as f64; weights.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_weighted_prefers_accurate() {
        let m = UserModelKind::AccuracyWeighted;
        assert!(m.weight(0.9) > m.weight(0.6));
    }

    #[test]
    fn uniform_ignores_accuracy() {
        let m = UserModelKind::Uniform;
        assert_eq!(m.weight(0.9), m.weight(0.1));
    }

    #[test]
    fn indicator_zeroes_below_half() {
        let m = UserModelKind::MultiLfIndicator;
        assert_eq!(m.weight(0.5), 0.0);
        assert_eq!(m.weight(0.49), 0.0);
        assert!((m.weight(0.8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normalization_flags() {
        assert!(UserModelKind::AccuracyWeighted.normalized());
        assert!(UserModelKind::Uniform.normalized());
        assert!(!UserModelKind::MultiLfIndicator.normalized());
    }

    #[test]
    fn pick_distribution_sums_to_one() {
        let d = pick_distribution(&[0.9, 0.6, 0.5]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d[0] > d[2]);
    }

    #[test]
    fn pick_distribution_zero_total_uniform() {
        let d = pick_distribution(&[0.0, 0.0]);
        assert_eq!(d, vec![0.5, 0.5]);
    }

    #[test]
    fn pick_distribution_empty() {
        assert!(pick_distribution(&[]).is_empty());
    }
}

//! The Nemo system facade (paper Sec. 4, Figure 4).
//!
//! [`NemoSystem`] binds a [`Session`] to a pluggable selection engine
//! ([`crate::engines`]) and the contextualized learning pipeline. The
//! engine — SEU by default, the learned IWS candidate ranker via
//! [`crate::config::SelectionStrategy::Iws`] — owns the interactive
//! protocol; the facade exposes two frontends over it:
//!
//! - the **round driver** ([`NemoSystem::step_with_user`] /
//!   [`NemoSystem::run_with_user`]): one engine round per call, whatever
//!   the engine's protocol asks of the user (author an LF for a chosen
//!   example, or judge a proposed candidate);
//! - the **manual loop** for engines that select examples:
//!   [`NemoSystem::suggest_example`], then [`NemoSystem::submit_lf`] or
//!   [`NemoSystem::skip`]. Engines that propose LF candidates themselves
//!   report [`SessionError::EngineDriven`] here.
//!
//! The primitive-based example explorer of Sec. 7
//! ([`NemoSystem::explore_primitive`]) lets a user inspect a random sample
//! of other examples containing a candidate primitive before committing to
//! an LF.

use crate::checkpoint::SessionCheckpoint;
use crate::config::{ContextualizerConfig, IdpConfig};
use crate::engines::{engine_for, SelectionEngine};
use crate::error::{RestoreError, SessionError};
use crate::idp::{LearningCurve, ModelOutputs, StepRecord};
use crate::oracle::User;
use crate::pipeline::ContextualizedPipeline;
use crate::session::Session;
use nemo_data::Dataset;
use nemo_lf::{Lineage, PrimitiveLf};

/// The end-to-end Nemo system (selection engine + contextualized
/// learning): a thin frontend driver over the [`Session`] engine, which
/// owns the interactive state and the incrementally-maintained SEU
/// aggregates.
pub struct NemoSystem<'a> {
    session: Session<'a>,
    engine: Box<dyn SelectionEngine>,
    pipeline: ContextualizedPipeline,
}

impl<'a> NemoSystem<'a> {
    /// Create a Nemo instance over a dataset; the selection engine
    /// follows [`IdpConfig::selection`].
    pub fn new(ds: &'a Dataset, config: IdpConfig) -> Self {
        let engine = engine_for(&config);
        Self::with_components(ds, config, engine, ContextualizerConfig::default())
    }

    /// Create with an explicit engine and contextualizer settings
    /// (ablations: [`crate::engines::SeuEngine::with_selector`] for the
    /// Table 6/7 user-model/utility variants, custom engines for new
    /// strategies).
    pub fn with_components(
        ds: &'a Dataset,
        config: IdpConfig,
        engine: Box<dyn SelectionEngine>,
        ctx_config: ContextualizerConfig,
    ) -> Self {
        Self {
            session: Session::new(ds, config),
            engine,
            pipeline: ContextualizedPipeline::new(ctx_config),
        }
    }

    /// The active selection engine.
    pub fn engine(&self) -> &dyn SelectionEngine {
        self.engine.as_ref()
    }

    /// The underlying engine state.
    pub fn session(&self) -> &Session<'a> {
        &self.session
    }

    /// The dataset in use.
    pub fn dataset(&self) -> &Dataset {
        self.session.dataset()
    }

    /// Collected lineage.
    pub fn lineage(&self) -> &Lineage {
        self.session.lineage()
    }

    /// Latest model outputs.
    pub fn outputs(&self) -> &ModelOutputs {
        self.session.outputs()
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.session.iteration()
    }

    /// IDP stage 1: suggest the next development example. Returns
    /// `Ok(None)` when the pool is exhausted. The example is reserved
    /// until [`NemoSystem::submit_lf`] or [`NemoSystem::skip`] is called.
    ///
    /// # Errors
    ///
    /// [`SessionError::SuggestionPending`] if the previous suggestion has
    /// not been resolved yet; [`SessionError::EngineDriven`] if the
    /// active engine proposes LF candidates itself (drive it with
    /// [`NemoSystem::step_with_user`] instead).
    pub fn suggest_example(&mut self) -> Result<Option<usize>, SessionError> {
        let name = self.engine.name();
        match self.engine.example_selector() {
            Some(selector) => self.session.select_with(selector),
            None => Err(SessionError::EngineDriven { engine: name }),
        }
    }

    /// IDP stages 2–3: record an LF written from the pending example and
    /// re-learn the models.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoPendingSuggestion`] without a prior
    /// [`NemoSystem::suggest_example`];
    /// [`SessionError::PrimitiveOutOfDomain`] for an LF outside the
    /// dataset's primitive domain. On error no state changes.
    pub fn submit_lf(&mut self, lf: PrimitiveLf) -> Result<(), SessionError> {
        self.session.submit(vec![lf], &mut self.pipeline)
    }

    /// Decline to write an LF for the pending example; models advance
    /// unchanged (the iteration is still consumed, as in the paper's
    /// fixed-budget protocol).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoPendingSuggestion`] without a pending suggestion.
    pub fn skip(&mut self) -> Result<(), SessionError> {
        self.session.skip(&mut self.pipeline)
    }

    /// Sec. 7 example explorer: a random sample of up to `k` training
    /// examples containing primitive `z` (so the user can judge how well a
    /// candidate LF generalizes before creating it).
    pub fn explore_primitive(&mut self, z: u32, k: usize) -> Vec<u32> {
        self.session.sample_covered(z, k)
    }

    /// Current test score under the dataset metric.
    pub fn test_score(&self) -> f64 {
        self.session.test_score()
    }

    /// Run one full interactive round of the active engine's protocol:
    /// SEU suggests an example and lets `user` develop LFs from it; IWS
    /// proposes its top-ranked candidate LF for `user` to judge. Either
    /// way the round re-learns the models (or advances the frozen model
    /// once the pool / candidate family is exhausted).
    /// [`NemoSystem::run_with_user`] is a loop over this; multi-tenant
    /// schedulers ([`crate::pool::SessionPool`]) call it directly so
    /// rounds from many sessions can interleave.
    ///
    /// # Errors
    ///
    /// [`SessionError::SuggestionPending`] if a suggestion made through
    /// [`NemoSystem::suggest_example`] is still unresolved; the round
    /// itself always resolves the reservations it makes.
    pub fn step_with_user(&mut self, user: &mut dyn User) -> Result<StepRecord, SessionError> {
        self.engine.round(&mut self.session, user, &mut self.pipeline)
    }

    /// Drive the full interactive loop with a (simulated) user for the
    /// configured number of iterations, evaluating on the paper's cadence.
    pub fn run_with_user(&mut self, user: &mut dyn User) -> LearningCurve {
        let mut curve = LearningCurve::default();
        let (n_iterations, eval_every) =
            (self.session.config().n_iterations, self.session.config().eval_every);
        for t in 0..n_iterations {
            // invariant: this loop resolves every suggestion it makes, so
            // the protocol errors are unreachable from here.
            self.step_with_user(user).expect("loop never leaves a suggestion pending");
            if (t + 1) % eval_every == 0 {
                curve.push(t + 1, self.test_score());
            }
        }
        curve
    }

    /// Whether the configured checkpoint cadence
    /// ([`IdpConfig::checkpoint_every`]) says a snapshot is due now.
    pub fn checkpoint_due(&self) -> bool {
        self.session.checkpoint_due()
    }

    /// Snapshot the full system state: the session's authoritative state
    /// plus the contextualizer's EM warm-start seeds (so restored tuning
    /// rounds seed their fits exactly like uninterrupted ones).
    ///
    /// A checkpoint taken mid-loop restores to a system that continues
    /// bit-identically to the uninterrupted run:
    ///
    /// ```
    /// use nemo_core::{IdpConfig, NemoSystem, SimulatedUser};
    /// use nemo_data::catalog::toy_text;
    ///
    /// let ds = toy_text(1);
    /// let config = IdpConfig { n_iterations: 6, seed: 7, ..Default::default() };
    /// let mut original = NemoSystem::new(&ds, config);
    /// let mut user = SimulatedUser::default();
    /// for _ in 0..3 {
    ///     original.step_with_user(&mut user).unwrap();
    /// }
    ///
    /// let ckpt = original.checkpoint();
    /// let mut resumed = NemoSystem::restore(&ds, &ckpt).unwrap();
    ///
    /// // Finish both runs; the resumed one retraces the original exactly.
    /// let mut fresh_user = SimulatedUser::default();
    /// for _ in 3..6 {
    ///     let a = original.step_with_user(&mut user).unwrap();
    ///     let b = resumed.step_with_user(&mut fresh_user).unwrap();
    ///     assert_eq!(a.selected, b.selected);
    /// }
    /// assert_eq!(original.test_score().to_bits(), resumed.test_score().to_bits());
    /// ```
    pub fn checkpoint(&self) -> SessionCheckpoint {
        let mut ckpt = self.session.checkpoint();
        ckpt.warm_seeds = self.pipeline.contextualizer().warm_seeds().to_vec();
        ckpt.engine = self.engine.checkpoint_state();
        ckpt
    }

    /// Restore a system from a checkpoint with default contextualizer
    /// settings; the engine follows the checkpointed
    /// [`IdpConfig::selection`] and resumes from the checkpoint's
    /// engine-state section.
    ///
    /// Restoration validates every checkpoint field against `ds` before
    /// touching any state — a checkpoint from the wrong dataset (or a
    /// corrupted one) is rejected, never half-applied:
    ///
    /// ```
    /// use nemo_core::{IdpConfig, NemoSystem, RestoreError};
    /// use nemo_data::catalog::toy_text;
    ///
    /// let ds = toy_text(1);
    /// let ckpt = NemoSystem::new(&ds, IdpConfig::default()).checkpoint();
    /// assert!(NemoSystem::restore(&ds, &ckpt).is_ok());
    ///
    /// let mut bad = ckpt.clone();
    /// bad.excluded.pop(); // now the wrong length for `ds`
    /// assert!(matches!(
    ///     NemoSystem::restore(&ds, &bad),
    ///     Err(RestoreError::LengthMismatch { field: "excluded", .. })
    /// ));
    /// ```
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from validating the checkpoint against `ds`.
    pub fn restore(ds: &'a Dataset, ckpt: &SessionCheckpoint) -> Result<Self, RestoreError> {
        Self::restore_with(ds, ckpt, ContextualizerConfig::default())
    }

    /// Restore with explicit contextualizer settings (the counterpart of
    /// [`NemoSystem::with_components`]). The engine is rebuilt from the
    /// checkpointed [`IdpConfig::selection`] and handed the checkpoint's
    /// engine-state section. The contextualizer starts with empty
    /// distance caches — its next learning round re-registers the whole
    /// lineage in one batch, which is bit-identical to the incremental
    /// registrations of the original run — and with the checkpoint's
    /// warm-start seeds, so percentile tuning resumes from the same EM
    /// state. Restored sessions therefore make the same selections and
    /// produce the same model outputs as never-interrupted ones
    /// (`tests/session_checkpoint.rs`, `tests/iws_engine_differential.rs`).
    ///
    /// # Errors
    ///
    /// Any [`RestoreError`] from validating the checkpoint against `ds`;
    /// [`RestoreError::ValueOutOfRange`] if a warm seed is non-finite;
    /// [`RestoreError::EngineStateMismatch`] if the engine-state section
    /// does not fit the configured engine.
    pub fn restore_with(
        ds: &'a Dataset,
        ckpt: &SessionCheckpoint,
        ctx_config: ContextualizerConfig,
    ) -> Result<Self, RestoreError> {
        if ckpt.warm_seeds.iter().flatten().any(|s| !s.is_finite()) {
            return Err(RestoreError::ValueOutOfRange { field: "warm_seeds" });
        }
        let mut engine = engine_for(&ckpt.config);
        engine.restore_state(&ckpt.engine, ds)?;
        let session = Session::restore(ds, ckpt)?;
        let mut pipeline = ContextualizedPipeline::new(ctx_config);
        pipeline.contextualizer_mut().set_warm_seeds(ckpt.warm_seeds.clone());
        Ok(Self { session, engine, pipeline })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedUser;
    use nemo_data::catalog::toy_text;
    use nemo_lf::Label;

    fn cfg(n: usize, seed: u64) -> IdpConfig {
        IdpConfig { n_iterations: n, eval_every: 5, seed, ..Default::default() }
    }

    #[test]
    fn interactive_loop_suggest_submit() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 1));
        let x = nemo.suggest_example().unwrap().expect("pool non-empty");
        let prims = ds.train.corpus.primitives_of(x);
        let lf = PrimitiveLf::new(prims[0], Label::Pos);
        nemo.submit_lf(lf).unwrap();
        assert_eq!(nemo.lineage().len(), 1);
        assert_eq!(nemo.iteration(), 1);
        assert_eq!(nemo.lineage().dev_example(0), x as u32);
    }

    #[test]
    fn skip_consumes_iteration() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 2));
        nemo.suggest_example().unwrap();
        nemo.skip().unwrap();
        assert_eq!(nemo.lineage().len(), 0);
        assert_eq!(nemo.iteration(), 1);
    }

    #[test]
    fn submit_without_suggest_is_an_error() {
        use crate::error::SessionError;
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 3));
        assert_eq!(
            nemo.submit_lf(PrimitiveLf::new(0, Label::Pos)),
            Err(SessionError::NoPendingSuggestion)
        );
        assert_eq!(nemo.skip(), Err(SessionError::NoPendingSuggestion));
        assert_eq!(nemo.iteration(), 0);
    }

    #[test]
    fn double_suggest_is_an_error() {
        use crate::error::SessionError;
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 4));
        let x = nemo.suggest_example().unwrap().unwrap();
        assert_eq!(nemo.suggest_example(), Err(SessionError::SuggestionPending { pending: x }));
    }

    #[test]
    fn checkpoint_restore_resumes_mid_loop() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 7));
        let mut user = SimulatedUser::default();
        for _ in 0..3 {
            match nemo.suggest_example().unwrap() {
                Some(x) => {
                    let lfs = nemo.session.develop(x, &mut user);
                    nemo.session.submit(lfs, &mut nemo.pipeline).unwrap();
                }
                None => nemo.session.advance_frozen().unwrap(),
            }
        }
        let ckpt = nemo.checkpoint();
        let restored = NemoSystem::restore(&ds, &ckpt).expect("valid checkpoint restores");
        assert_eq!(restored.iteration(), nemo.iteration());
        assert_eq!(restored.lineage().tracked(), nemo.lineage().tracked());
        assert_eq!(
            restored.pipeline.contextualizer().warm_seeds(),
            nemo.pipeline.contextualizer().warm_seeds()
        );
    }

    #[test]
    fn restore_rejects_non_finite_warm_seeds() {
        use crate::error::RestoreError;
        let ds = toy_text(1);
        let nemo = NemoSystem::new(&ds, cfg(10, 8));
        let mut ckpt = nemo.checkpoint();
        ckpt.warm_seeds = vec![vec![0.5, f64::NAN]];
        assert!(matches!(
            NemoSystem::restore(&ds, &ckpt),
            Err(RestoreError::ValueOutOfRange { field: "warm_seeds" })
        ));
    }

    #[test]
    fn explorer_returns_covered_examples() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 5));
        // Find a reasonably common primitive.
        let z = (0..ds.n_primitives as u32).max_by_key(|&z| ds.train.corpus.index().df(z)).unwrap();
        let sample = nemo.explore_primitive(z, 5);
        assert!(sample.len() <= 5);
        assert!(!sample.is_empty());
        for &i in &sample {
            assert!(ds.train.corpus.contains(i as usize, z));
        }
    }

    #[test]
    fn run_with_simulated_user_learns() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(15, 6));
        let mut user = SimulatedUser::default();
        let curve = nemo.run_with_user(&mut user);
        assert_eq!(curve.points().len(), 3);
        assert!(curve.final_score() > 0.55, "final {}", curve.final_score());
        assert!(nemo.outputs().chosen_p.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_text(1);
        let run = |seed| {
            let mut nemo = NemoSystem::new(&ds, cfg(8, seed));
            let mut user = SimulatedUser::default();
            nemo.run_with_user(&mut user).points().to_vec()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn iws_engine_rejects_the_manual_frontend() {
        use crate::config::SelectionStrategy;
        let ds = toy_text(1);
        let config = IdpConfig { selection: SelectionStrategy::Iws, ..cfg(10, 1) };
        let mut nemo = NemoSystem::new(&ds, config);
        assert_eq!(nemo.engine().name(), "iws-rank");
        assert_eq!(nemo.suggest_example(), Err(SessionError::EngineDriven { engine: "iws-rank" }));
        // The round driver still works — and the frontend error left no
        // reservation behind.
        let mut user = SimulatedUser::default();
        nemo.step_with_user(&mut user).expect("engine-driven round runs");
        assert_eq!(nemo.iteration(), 1);
    }

    #[test]
    fn iws_runs_end_to_end_and_restores_bit_identically() {
        use crate::config::SelectionStrategy;
        let ds = toy_text(1);
        let config = IdpConfig {
            selection: SelectionStrategy::Iws,
            n_iterations: 8,
            eval_every: 4,
            seed: 21,
            ..Default::default()
        };
        let mut original = NemoSystem::new(&ds, config);
        let mut user = SimulatedUser::with_threshold(0.5);
        for _ in 0..4 {
            original.step_with_user(&mut user).unwrap();
        }
        let ckpt = original.checkpoint();
        assert!(matches!(ckpt.engine, crate::checkpoint::EngineState::IwsV1 { .. }));
        let mut resumed = NemoSystem::restore(&ds, &ckpt).expect("valid checkpoint restores");
        assert_eq!(resumed.engine().name(), "iws-rank");
        let mut fresh_user = SimulatedUser::with_threshold(0.5);
        for _ in 4..8 {
            let a = original.step_with_user(&mut user).unwrap();
            let b = resumed.step_with_user(&mut fresh_user).unwrap();
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.new_lfs, b.new_lfs);
        }
        assert_eq!(original.test_score().to_bits(), resumed.test_score().to_bits());
    }

    #[test]
    fn restore_rejects_engine_state_from_the_wrong_engine() {
        use crate::checkpoint::EngineState;
        use crate::error::RestoreError;
        let ds = toy_text(1);
        let nemo = NemoSystem::new(&ds, cfg(10, 9));
        let mut ckpt = nemo.checkpoint();
        ckpt.engine = EngineState::IwsV1 { answers: vec![(0, true)] };
        assert!(matches!(
            NemoSystem::restore(&ds, &ckpt),
            Err(RestoreError::EngineStateMismatch { engine: "seu", .. })
        ));
    }
}

//! The Nemo system facade (paper Sec. 4, Figure 4).
//!
//! [`NemoSystem`] is the end-to-end system: the SEU development-data
//! selector plus the contextualized learning pipeline, wrapped in an
//! interactive API shaped like the paper's frontend loop:
//!
//! 1. [`NemoSystem::suggest_example`] — the backend picks the next
//!    development example.
//! 2. The user (human or simulated) inspects it and writes an LF; the
//!    caller passes it to [`NemoSystem::submit_lf`] (or
//!    [`NemoSystem::skip`]).
//! 3. Models are re-learned with development context; repeat.
//!
//! The primitive-based example explorer of Sec. 7
//! ([`NemoSystem::explore_primitive`]) lets a user inspect a random sample
//! of other examples containing a candidate primitive before committing to
//! an LF.

use crate::config::{ContextualizerConfig, IdpConfig};
use crate::idp::{LearningCurve, ModelOutputs, SelectionView, Selector};
use crate::oracle::User;
use crate::pipeline::{ContextualizedPipeline, LearningPipeline};
use crate::seu::SeuSelector;
use nemo_data::Dataset;
use nemo_lf::{LabelMatrix, LfColumn, Lineage, PrimitiveLf};
use nemo_sparse::DetRng;

/// The end-to-end Nemo system (SEU + contextualized learning).
pub struct NemoSystem<'a> {
    ds: &'a Dataset,
    config: IdpConfig,
    selector: SeuSelector,
    pipeline: ContextualizedPipeline,
    lineage: Lineage,
    matrix: LabelMatrix,
    excluded: Vec<bool>,
    outputs: ModelOutputs,
    rng: DetRng,
    iteration: usize,
    pending: Option<usize>,
}

impl<'a> NemoSystem<'a> {
    /// Create a Nemo instance over a dataset with default components.
    pub fn new(ds: &'a Dataset, config: IdpConfig) -> Self {
        Self::with_components(ds, config, SeuSelector::new(), ContextualizerConfig::default())
    }

    /// Create with explicit SEU/contextualizer settings (ablations).
    pub fn with_components(
        ds: &'a Dataset,
        config: IdpConfig,
        selector: SeuSelector,
        ctx_config: ContextualizerConfig,
    ) -> Self {
        let rng = DetRng::new(config.seed ^ 0x4e40);
        Self {
            ds,
            selector,
            pipeline: ContextualizedPipeline::new(ctx_config),
            lineage: Lineage::new(),
            matrix: LabelMatrix::new(ds.train.n()),
            excluded: vec![false; ds.train.n()],
            outputs: ModelOutputs::initial(ds),
            rng,
            iteration: 0,
            pending: None,
            config,
        }
    }

    /// The dataset in use.
    pub fn dataset(&self) -> &Dataset {
        self.ds
    }

    /// Collected lineage.
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// Latest model outputs.
    pub fn outputs(&self) -> &ModelOutputs {
        &self.outputs
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// IDP stage 1: suggest the next development example. Returns `None`
    /// when the pool is exhausted. The example is reserved until
    /// [`NemoSystem::submit_lf`] or [`NemoSystem::skip`] is called.
    pub fn suggest_example(&mut self) -> Option<usize> {
        assert!(self.pending.is_none(), "previous suggestion not yet resolved");
        let view = SelectionView {
            ds: self.ds,
            lineage: &self.lineage,
            matrix: &self.matrix,
            outputs: &self.outputs,
            excluded: &self.excluded,
            iteration: self.iteration,
        };
        let x = self.selector.select(&view, &mut self.rng)?;
        self.excluded[x] = true;
        self.pending = Some(x);
        Some(x)
    }

    /// IDP stages 2–3: record an LF written from the pending example and
    /// re-learn the models.
    pub fn submit_lf(&mut self, lf: PrimitiveLf) {
        let dev = self.pending.take().expect("submit_lf without a pending suggestion") as u32;
        assert!(
            (lf.z as usize) < self.ds.n_primitives,
            "LF primitive {} outside the domain",
            lf.z
        );
        self.lineage.record(lf, dev, self.iteration as u32);
        self.matrix.push(LfColumn::from_lf(&lf, &self.ds.train.corpus));
        self.relearn();
    }

    /// Decline to write an LF for the pending example; models advance
    /// unchanged (the iteration is still consumed, as in the paper's
    /// fixed-budget protocol).
    pub fn skip(&mut self) {
        self.pending.take().expect("skip without a pending suggestion");
        self.relearn();
    }

    fn relearn(&mut self) {
        let iter_seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.iteration as u64);
        self.outputs =
            self.pipeline
                .learn(&self.lineage, &self.matrix, self.ds, &self.config, iter_seed);
        self.iteration += 1;
    }

    /// Sec. 7 example explorer: a random sample of up to `k` training
    /// examples containing primitive `z` (so the user can judge how well a
    /// candidate LF generalizes before creating it).
    pub fn explore_primitive(&mut self, z: u32, k: usize) -> Vec<u32> {
        let postings = self.ds.train.corpus.index().postings(z);
        if postings.len() <= k {
            return postings.to_vec();
        }
        let picks = self.rng.sample_indices(postings.len(), k);
        picks.into_iter().map(|i| postings[i]).collect()
    }

    /// Current test score under the dataset metric.
    pub fn test_score(&self) -> f64 {
        self.ds.metric.score(&self.outputs.test_pred, &self.ds.test.labels)
    }

    /// Drive the full interactive loop with a (simulated) user for the
    /// configured number of iterations, evaluating on the paper's cadence.
    pub fn run_with_user(&mut self, user: &mut dyn User) -> LearningCurve {
        let mut curve = LearningCurve::default();
        for t in 0..self.config.n_iterations {
            match self.suggest_example() {
                Some(x) => {
                    let lfs = if self.config.lfs_per_iteration <= 1 {
                        user.provide_lf(x, self.ds, &mut self.rng).into_iter().collect()
                    } else {
                        user.provide_lfs(x, self.config.lfs_per_iteration, self.ds, &mut self.rng)
                    };
                    if lfs.is_empty() {
                        self.skip();
                    } else {
                        // Multi-LF submissions share the pending example.
                        let dev = self.pending.take().expect("pending") as u32;
                        for lf in lfs {
                            self.lineage.record(lf, dev, self.iteration as u32);
                            self.matrix.push(LfColumn::from_lf(&lf, &self.ds.train.corpus));
                        }
                        self.relearn();
                    }
                }
                None => {
                    // Pool exhausted: keep evaluating the frozen model.
                    self.iteration += 1;
                }
            }
            if (t + 1) % self.config.eval_every == 0 {
                curve.push(t + 1, self.test_score());
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedUser;
    use nemo_data::catalog::toy_text;
    use nemo_lf::Label;

    fn cfg(n: usize, seed: u64) -> IdpConfig {
        IdpConfig { n_iterations: n, eval_every: 5, seed, ..Default::default() }
    }

    #[test]
    fn interactive_loop_suggest_submit() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 1));
        let x = nemo.suggest_example().expect("pool non-empty");
        let prims = ds.train.corpus.primitives_of(x);
        let lf = PrimitiveLf::new(prims[0], Label::Pos);
        nemo.submit_lf(lf);
        assert_eq!(nemo.lineage().len(), 1);
        assert_eq!(nemo.iteration(), 1);
        assert_eq!(nemo.lineage().dev_example(0), x as u32);
    }

    #[test]
    fn skip_consumes_iteration() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 2));
        nemo.suggest_example().unwrap();
        nemo.skip();
        assert_eq!(nemo.lineage().len(), 0);
        assert_eq!(nemo.iteration(), 1);
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn submit_without_suggest_panics() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 3));
        nemo.submit_lf(PrimitiveLf::new(0, Label::Pos));
    }

    #[test]
    #[should_panic(expected = "not yet resolved")]
    fn double_suggest_panics() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 4));
        nemo.suggest_example().unwrap();
        nemo.suggest_example();
    }

    #[test]
    fn explorer_returns_covered_examples() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(10, 5));
        // Find a reasonably common primitive.
        let z = (0..ds.n_primitives as u32)
            .max_by_key(|&z| ds.train.corpus.index().df(z))
            .unwrap();
        let sample = nemo.explore_primitive(z, 5);
        assert!(sample.len() <= 5);
        assert!(!sample.is_empty());
        for &i in &sample {
            assert!(ds.train.corpus.contains(i as usize, z));
        }
    }

    #[test]
    fn run_with_simulated_user_learns() {
        let ds = toy_text(1);
        let mut nemo = NemoSystem::new(&ds, cfg(15, 6));
        let mut user = SimulatedUser::default();
        let curve = nemo.run_with_user(&mut user);
        assert_eq!(curve.points().len(), 3);
        assert!(curve.final_score() > 0.55, "final {}", curve.final_score());
        assert!(nemo.outputs().chosen_p.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_text(1);
        let run = |seed| {
            let mut nemo = NemoSystem::new(&ds, cfg(8, seed));
            let mut user = SimulatedUser::default();
            nemo.run_with_user(&mut user).points().to_vec()
        };
        assert_eq!(run(9), run(9));
    }
}

//! The reusable interactive engine: [`Session`] owns every piece of
//! long-lived IDP state and keeps the SEU scoring machinery **incremental**
//! across rounds.
//!
//! Before this engine existed, each selection round rebuilt the
//! per-primitive aggregates ([`PrimAgg`]) with a full `O(nnz(U))` pass over
//! the inverted index, even though consecutive rounds share almost all of
//! their model state. `Session` instead owns a [`SeuAggregates`] cache and
//! *delta-updates* it after every learning stage: only the examples whose
//! posterior entropy or end-model prediction actually changed replay
//! their contribution into the primitives that contain them —
//! `O(Σ_{i dirty} |prims(i)|)` work instead of `O(nnz(U))`. The integer
//! fields of every aggregate stay exact; the float sums pick up at most
//! one rounding step per update and are re-anchored by periodic full
//! rebuilds. `tests/session_differential.rs` proves the cache tracks a
//! from-scratch rebuild within `1e-9` and that selections driven by the
//! cache are identical to selections recomputed from scratch.
//!
//! Everything interactive is a thin driver over this type:
//! [`crate::idp::IdpSession`] (the benchmark loop), [`crate::NemoSystem`]
//! (the suggest/submit frontend API), and through them every baseline in
//! `nemo-baselines` — so every selector sees the same cached state.

use crate::checkpoint::SessionCheckpoint;
use crate::config::IdpConfig;
use crate::error::{RestoreError, SessionError};
use crate::idp::{ModelOutputs, SelectionView, Selector, StepRecord};
use crate::oracle::User;
use crate::pipeline::LearningPipeline;
use crate::utility::PrimAgg;
use nemo_data::Dataset;
use nemo_labelmodel::Posterior;
use nemo_lf::{Label, LabelMatrix, LfColumn, Lineage, PrimitiveLf};
use nemo_sparse::DetRng;
// lint: allow(determinism/sync-primitives): process-unique id counter
// for cache-identity tokens; the ids only gate cache validation, they
// never order or affect results.
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a [`SeuAggregates::sync`] fell back to a full rebuild instead of a
/// delta update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildReason {
    /// The constructor's initial population of the cache.
    Initial,
    /// The dirty set would touch more slots than the cost model allows
    /// (see [`SeuAggregates::sync`] for the threshold and its rationale).
    DirtyMajority,
    /// Periodic re-anchor bounding floating-point drift of the in-place
    /// sums.
    DriftBound,
}

impl RebuildReason {
    /// Name for logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            RebuildReason::Initial => "initial",
            RebuildReason::DirtyMajority => "dirty-majority",
            RebuildReason::DriftBound => "drift-bound",
        }
    }
}

/// What one [`SeuAggregates::sync`] call did — returned to the caller and
/// counted internally, so avoidable rebuilds are observable rather than
/// silent (`BENCH_kernel.json` records the per-reason totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// No example's `(ψ, ŷ)` changed; the cache was already consistent.
    Clean,
    /// In-place delta update of the dirty examples' contributions.
    Delta {
        /// Examples whose `(ψ, ŷ)` changed.
        dirty_examples: usize,
        /// Primitive-occurrence slots those examples replayed.
        dirty_slots: usize,
    },
    /// Full rebuild, with the reason it was forced.
    Rebuild(RebuildReason),
}

/// Per-primitive SEU aggregates, maintained incrementally across learning
/// rounds.
///
/// Invariant: `aggs[z]` equals the fold of [`PrimAgg::add`] over the
/// postings of `z` under the cached `psi` (posterior entropies) and `yhat`
/// (end-model prediction signs) vectors, and those vectors match the
/// `ModelOutputs` last passed to [`SeuAggregates::sync`].
///
/// Beyond the aggregates themselves, the cache keeps a **dirty log**: for
/// every delta sync since the last full rebuild, the sorted set of
/// primitives whose aggregate changed, tagged with a monotonically
/// increasing generation. Downstream caches (the
/// [`crate::seu::SeuSelector`] score cache) snapshot the generation when
/// they compute, then ask [`SeuAggregates::dirty_prims_since`] what
/// changed and revalidate only that — the dirty-set scoring path of
/// [`crate::config::SeuScoring`]. The log is cleared at every rebuild
/// (a rebuild dirties everything, reported as `None`), so its size is
/// bounded by the drift-rebuild cadence (64 delta syncs).
#[derive(Debug)]
pub struct SeuAggregates {
    /// Process-unique cache identity, so score caches keyed on
    /// `(id, generation)` can never mistake one aggregate cache for
    /// another (sessions and benches construct several).
    id: u64,
    psi: Vec<f64>,
    yhat: Vec<i8>,
    aggs: Vec<PrimAgg>,
    /// Bumped on every state change (delta or rebuild).
    generation: u64,
    /// `generation` value produced by the most recent full rebuild;
    /// snapshots older than this predate the rebuild and must be fully
    /// recomputed.
    rebuild_generation: u64,
    /// `(generation, dirty primitives)` per delta sync since the last
    /// rebuild, in increasing generation order.
    dirty_log: Vec<(u64, Vec<u32>)>,
    /// Scratch flags for deduplicating dirty primitives (one slot per
    /// primitive, cleared after each use).
    prim_seen: Vec<bool>,
    full_rebuilds: usize,
    rebuilds_dirty_majority: usize,
    rebuilds_drift_bound: usize,
    delta_syncs: usize,
    delta_syncs_since_rebuild: usize,
    /// Primitive-occurrence slots updated by delta syncs (speedup
    /// accounting).
    delta_slots_updated: u64,
}

/// Delta syncs between forced full rebuilds: each in-place update adds at
/// most one rounding step to a float sum, so this bounds the drift of the
/// cached sums relative to a from-scratch rebuild.
const MAX_DELTA_SYNCS_BETWEEN_REBUILDS: usize = 64;

/// Dirty-majority fallback threshold, as a fraction of total postings:
/// fall back to a rebuild only when `dirty_slots > 7/8 · nnz(U)`.
///
/// For the aggregates alone the break-even sits near 1/2 (a delta update
/// costs ~2 adds per slot vs 1 per slot for a rebuild, and the original
/// threshold was exactly that). But a rebuild also wipes the dirty log,
/// which forces every downstream score cache to rescore the *entire*
/// pool — the dominant per-round cost the dirty-set path exists to avoid.
/// Charging the rebuild for that lost reuse moves the break-even close to
/// 1: a delta that touches 60–80% of the slots still preserves partial
/// score reuse, so only a near-total dirty set justifies rebuilding.
/// Measured on the quick-profile replay this eliminated the avoidable
/// `rebuild_fallbacks` the old 1/2 threshold produced (see
/// `BENCH_kernel.json` `seu_loop.rebuild_fallbacks`).
const DIRTY_MAJORITY_NUM: usize = 7;
const DIRTY_MAJORITY_DEN: usize = 8;

/// Source of process-unique [`SeuAggregates`] identities.
// lint: allow(determinism/sync-primitives): identity tokens only decide
// whether a score cache may validate, never what any path computes.
static NEXT_AGGS_ID: AtomicU64 = AtomicU64::new(1);

impl Clone for SeuAggregates {
    /// Clones get a fresh identity: a clone diverges from its source on
    /// the next sync, so score caches keyed on the source's `(id,
    /// generation)` must not validate against the copy.
    fn clone(&self) -> Self {
        Self {
            id: NEXT_AGGS_ID.fetch_add(1, Ordering::Relaxed),
            psi: self.psi.clone(),
            yhat: self.yhat.clone(),
            aggs: self.aggs.clone(),
            generation: self.generation,
            rebuild_generation: self.rebuild_generation,
            dirty_log: self.dirty_log.clone(),
            prim_seen: self.prim_seen.clone(),
            full_rebuilds: self.full_rebuilds,
            rebuilds_dirty_majority: self.rebuilds_dirty_majority,
            rebuilds_drift_bound: self.rebuilds_drift_bound,
            delta_syncs: self.delta_syncs,
            delta_syncs_since_rebuild: self.delta_syncs_since_rebuild,
            delta_slots_updated: self.delta_slots_updated,
        }
    }
}

impl SeuAggregates {
    /// Build the cache from scratch for the given model state.
    pub fn new(ds: &Dataset, outputs: &ModelOutputs) -> Self {
        let n_primitives = ds.train.corpus.n_primitives();
        let mut cache = Self {
            id: NEXT_AGGS_ID.fetch_add(1, Ordering::Relaxed),
            psi: Vec::new(),
            yhat: Vec::new(),
            aggs: vec![PrimAgg::default(); n_primitives],
            generation: 0,
            rebuild_generation: 0,
            dirty_log: Vec::new(),
            prim_seen: vec![false; n_primitives],
            full_rebuilds: 0,
            rebuilds_dirty_majority: 0,
            rebuilds_drift_bound: 0,
            delta_syncs: 0,
            delta_syncs_since_rebuild: 0,
            delta_slots_updated: 0,
        };
        cache.rebuild(ds, outputs);
        cache
    }

    /// The cached aggregates (aligned with the primitive domain).
    pub fn aggs(&self) -> &[PrimAgg] {
        &self.aggs
    }

    /// Process-unique identity of this cache instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current generation; bumped on every state change. Snapshot it when
    /// deriving state from [`SeuAggregates::aggs`], then revalidate with
    /// [`SeuAggregates::dirty_prims_since`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `(full rebuilds, delta syncs)` performed so far.
    pub fn sync_counts(&self) -> (usize, usize) {
        (self.full_rebuilds, self.delta_syncs)
    }

    /// Rebuilds forced after the initial build, by reason:
    /// `(dirty-majority, drift-bound)`.
    pub fn rebuild_fallback_counts(&self) -> (usize, usize) {
        (self.rebuilds_dirty_majority, self.rebuilds_drift_bound)
    }

    /// Primitive-occurrence slots updated in place by delta syncs so far.
    pub fn delta_slots_updated(&self) -> u64 {
        self.delta_slots_updated
    }

    /// The sorted, deduplicated set of primitives whose aggregate changed
    /// after generation `since` — or `None` when a full rebuild happened
    /// since then (everything must be treated as dirty).
    ///
    /// `since == generation()` yields `Some([])`: nothing changed.
    pub fn dirty_prims_since(&self, since: u64) -> Option<Vec<u32>> {
        if since < self.rebuild_generation {
            return None;
        }
        let mut dirty: Vec<u32> = self
            .dirty_log
            .iter()
            .filter(|(generation, _)| *generation > since)
            .flat_map(|(_, prims)| prims.iter().copied())
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        Some(dirty)
    }

    fn rebuild(&mut self, ds: &Dataset, outputs: &ModelOutputs) {
        self.psi = outputs.train_posterior.entropies();
        self.yhat = outputs.yhat_signs();
        let index = ds.train.corpus.index();
        self.aggs.fill(PrimAgg::default());
        for (z, postings) in index.iter_nonempty() {
            let agg = &mut self.aggs[z as usize];
            for &i in postings {
                agg.add(self.psi[i as usize], self.yhat[i as usize]);
            }
        }
        self.full_rebuilds += 1;
        self.delta_syncs_since_rebuild = 0;
        self.generation += 1;
        self.rebuild_generation = self.generation;
        self.dirty_log.clear();
    }

    /// Bring the cache in line with `outputs` by applying, in place, the
    /// contribution delta of every example whose `(psi, yhat)` changed —
    /// `O(Σ_{i dirty} |prims(i)|)` instead of the `O(nnz(U))` rebuild —
    /// and append the touched primitives to the dirty log.
    ///
    /// Falls back to a full rebuild when the dirty set covers nearly all
    /// slots (`dirty_slots > 7/8 · nnz(U)`; see the cost model on the
    /// threshold constants) and forces
    /// one every 64 delta syncs (`MAX_DELTA_SYNCS_BETWEEN_REBUILDS`) to
    /// bound floating-point drift of the in-place sums. The returned
    /// [`SyncOutcome`] says which path ran and, for rebuilds, why.
    pub fn sync(&mut self, ds: &Dataset, outputs: &ModelOutputs) -> SyncOutcome {
        let new_psi = outputs.train_posterior.entropies();
        let new_yhat = outputs.yhat_signs();
        debug_assert_eq!(new_psi.len(), self.psi.len());
        let n = new_psi.len();
        let corpus = &ds.train.corpus;
        let dirty: Vec<u32> = (0..n)
            .filter(|&i| {
                self.psi[i].to_bits() != new_psi[i].to_bits() || self.yhat[i] != new_yhat[i]
            })
            .map(|i| i as u32)
            .collect();
        if dirty.is_empty() {
            return SyncOutcome::Clean;
        }
        let dirty_slots: usize =
            dirty.iter().map(|&i| corpus.primitives_of(i as usize).len()).sum();
        let reason =
            if dirty_slots * DIRTY_MAJORITY_DEN >= corpus.total_postings() * DIRTY_MAJORITY_NUM {
                Some(RebuildReason::DirtyMajority)
            } else if self.delta_syncs_since_rebuild >= MAX_DELTA_SYNCS_BETWEEN_REBUILDS {
                Some(RebuildReason::DriftBound)
            } else {
                None
            };
        if let Some(reason) = reason {
            match reason {
                RebuildReason::DirtyMajority => self.rebuilds_dirty_majority += 1,
                RebuildReason::DriftBound => self.rebuilds_drift_bound += 1,
                // invariant: `reason` is built just above from the two
                // sync triggers; Initial is constructor-only.
                RebuildReason::Initial => unreachable!("sync never reports Initial"),
            }
            self.rebuild(ds, outputs);
            return SyncOutcome::Rebuild(reason);
        }

        let mut dirty_prims = Vec::new();
        for &i in &dirty {
            let i = i as usize;
            let (old_psi, old_sign) = (self.psi[i], self.yhat[i]);
            let (np, ns) = (new_psi[i], new_yhat[i]);
            for &z in corpus.primitives_of(i) {
                self.aggs[z as usize].apply_delta(old_psi, old_sign, np, ns);
                if !self.prim_seen[z as usize] {
                    self.prim_seen[z as usize] = true;
                    dirty_prims.push(z);
                }
            }
        }
        for &z in &dirty_prims {
            self.prim_seen[z as usize] = false;
        }
        dirty_prims.sort_unstable();
        self.psi = new_psi;
        self.yhat = new_yhat;
        self.delta_slots_updated += dirty_slots as u64;
        self.delta_syncs += 1;
        self.delta_syncs_since_rebuild += 1;
        self.generation += 1;
        self.dirty_log.push((self.generation, dirty_prims));
        SyncOutcome::Delta { dirty_examples: dirty.len(), dirty_slots }
    }
}

/// One interactive IDP session: dataset binding, collected LFs with
/// lineage, the pool-exclusion set, the latest model outputs, and the
/// incrementally-maintained SEU aggregates.
///
/// `Session` is component-agnostic: selectors, users, and learning
/// pipelines are passed *into* the methods that need them, so a single
/// session can be driven interactively ([`Session::select_with`] /
/// [`Session::submit`] / [`Session::skip`]) or in batch
/// ([`Session::step`]).
pub struct Session<'a> {
    ds: &'a Dataset,
    config: IdpConfig,
    lineage: Lineage,
    matrix: LabelMatrix,
    excluded: Vec<bool>,
    outputs: ModelOutputs,
    cache: SeuAggregates,
    rng: DetRng,
    iteration: usize,
    pending: Option<usize>,
}

impl<'a> Session<'a> {
    /// Create a session at iteration 0 with prior-level model outputs.
    ///
    /// The inverted index over the training corpus is built once by the
    /// dataset; the session only ever reads it.
    pub fn new(ds: &'a Dataset, config: IdpConfig) -> Self {
        let outputs = ModelOutputs::initial(ds);
        let cache = SeuAggregates::new(ds, &outputs);
        Self {
            rng: DetRng::new(config.seed ^ 0x005e_5510),
            lineage: Lineage::new(),
            matrix: LabelMatrix::new(ds.train.n()),
            excluded: vec![false; ds.train.n()],
            iteration: 0,
            pending: None,
            outputs,
            cache,
            ds,
            config,
        }
    }

    /// The dataset this session runs on. Returned at the dataset's own
    /// lifetime (not the borrow's), so engines can hold it across
    /// mutable session calls.
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The session configuration.
    pub fn config(&self) -> &IdpConfig {
        &self.config
    }

    /// Collected lineage so far.
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// Raw train label matrix of collected LFs.
    ///
    /// Columns are `Arc`-shared ([`nemo_lf::LabelMatrix`]'s
    /// copy-on-write storage), so cloning the returned matrix — per-round
    /// trajectory recording, checkpoints, the replay benches — copies `m`
    /// handles, not `m` vote vectors.
    pub fn matrix(&self) -> &LabelMatrix {
        &self.matrix
    }

    /// Latest model outputs.
    pub fn outputs(&self) -> &ModelOutputs {
        &self.outputs
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The example reserved by the last [`Session::select_with`], if any.
    pub fn pending(&self) -> Option<usize> {
        self.pending
    }

    /// The incrementally-maintained SEU aggregates.
    pub fn aggregates(&self) -> &SeuAggregates {
        &self.cache
    }

    /// Mutable access to the session's deterministic RNG stream.
    ///
    /// Selection engines ([`crate::engines`]) draw their acquisition
    /// randomness from here (never from an engine-private generator), so
    /// every draw lives in the one stream the checkpoint captures — a
    /// restored session replays the exact tail of draws the
    /// uninterrupted one would have made.
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// A read-only selection view over the current state, exposing the
    /// cached aggregates to selectors.
    pub fn view(&self) -> SelectionView<'_> {
        SelectionView {
            ds: self.ds,
            lineage: &self.lineage,
            matrix: &self.matrix,
            outputs: &self.outputs,
            excluded: &self.excluded,
            iteration: self.iteration,
            aggs: Some(&self.cache),
        }
    }

    /// IDP stage 1: run a selector over the current view. The returned
    /// example is excluded from the pool and reserved until
    /// [`Session::submit`] or [`Session::skip`] resolves it
    /// (`Ok(None)` when the pool is exhausted).
    ///
    /// # Errors
    ///
    /// [`SessionError::SuggestionPending`] if a previous suggestion has
    /// not been resolved yet.
    pub fn select_with(
        &mut self,
        selector: &mut dyn Selector,
    ) -> Result<Option<usize>, SessionError> {
        if let Some(pending) = self.pending {
            return Err(SessionError::SuggestionPending { pending });
        }
        // Field-level borrows (rather than `self.view()`) so the selector
        // can take the RNG mutably alongside the read-only view.
        let view = SelectionView {
            ds: self.ds,
            lineage: &self.lineage,
            matrix: &self.matrix,
            outputs: &self.outputs,
            excluded: &self.excluded,
            iteration: self.iteration,
            aggs: Some(&self.cache),
        };
        let Some(x) = selector.select(&view, &mut self.rng) else {
            return Ok(None);
        };
        self.excluded[x] = true;
        self.pending = Some(x);
        Ok(Some(x))
    }

    /// IDP stage 2: query a user for LF(s) on example `x`, honoring the
    /// configured `lfs_per_iteration`.
    pub fn develop(&mut self, x: usize, user: &mut dyn User) -> Vec<PrimitiveLf> {
        if self.config.lfs_per_iteration <= 1 {
            user.provide_lf(x, self.ds, &mut self.rng).into_iter().collect()
        } else {
            user.provide_lfs(x, self.config.lfs_per_iteration, self.ds, &mut self.rng)
        }
    }

    /// IDP stages 2–3: record LFs written from the pending example, then
    /// re-learn and re-sync the aggregates. An empty `lfs` behaves like
    /// [`Session::skip`] (the iteration is still consumed).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoPendingSuggestion`] without a pending suggestion;
    /// [`SessionError::PrimitiveOutOfDomain`] if any LF references a
    /// primitive outside the dataset's domain. On error no state changes:
    /// the pending suggestion stays reserved and nothing is recorded.
    pub fn submit(
        &mut self,
        lfs: Vec<PrimitiveLf>,
        pipeline: &mut dyn LearningPipeline,
    ) -> Result<(), SessionError> {
        if self.pending.is_none() {
            return Err(SessionError::NoPendingSuggestion);
        }
        // Validate every LF before touching any state, so a rejected
        // submission leaves the session exactly as it was.
        for lf in &lfs {
            if lf.z as usize >= self.ds.n_primitives {
                return Err(SessionError::PrimitiveOutOfDomain {
                    z: lf.z,
                    n_primitives: self.ds.n_primitives,
                });
            }
        }
        // invariant: checked Some above.
        let dev = self.pending.take().expect("pending checked above") as u32;
        for lf in lfs {
            self.lineage.record(lf, dev, self.iteration as u32);
            self.matrix.push(LfColumn::from_lf(&lf, &self.ds.train.corpus));
        }
        self.relearn(pipeline);
        Ok(())
    }

    /// Decline to write an LF for the pending example; models advance
    /// unchanged (the iteration is still consumed, as in the paper's
    /// fixed-budget protocol).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoPendingSuggestion`] without a pending suggestion.
    pub fn skip(&mut self, pipeline: &mut dyn LearningPipeline) -> Result<(), SessionError> {
        if self.pending.take().is_none() {
            return Err(SessionError::NoPendingSuggestion);
        }
        self.relearn(pipeline);
        Ok(())
    }

    /// Consume one iteration with the pool exhausted and the model frozen
    /// (the `NemoSystem::run_with_user` tail behaviour).
    ///
    /// # Errors
    ///
    /// [`SessionError::SuggestionPending`] if a suggestion is unresolved.
    pub fn advance_frozen(&mut self) -> Result<(), SessionError> {
        if let Some(pending) = self.pending {
            return Err(SessionError::SuggestionPending { pending });
        }
        self.iteration += 1;
        Ok(())
    }

    /// IDP stage 3: re-learn from the collected LFs, advance the
    /// iteration, and delta-sync the SEU aggregates.
    fn relearn(&mut self, pipeline: &mut dyn LearningPipeline) {
        let iter_seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.iteration as u64);
        self.outputs =
            pipeline.learn(&self.lineage, &self.matrix, self.ds, &self.config, iter_seed);
        self.cache.sync(self.ds, &self.outputs);
        self.iteration += 1;
    }

    /// Run one full IDP iteration: select → develop → learn. The learning
    /// stage runs even on user abstention or pool exhaustion, keeping the
    /// model state consistent with the lineage.
    pub fn step(
        &mut self,
        selector: &mut dyn Selector,
        user: &mut dyn User,
        pipeline: &mut dyn LearningPipeline,
    ) -> StepRecord {
        let iteration = self.iteration;
        // invariant: step resolves every suggestion it makes, so the
        // protocol state machine cannot be violated from here.
        let selected = self.select_with(selector).expect("step never leaves a suggestion pending");
        let new_lfs = match selected {
            Some(x) => {
                let lfs = self.develop(x, user);
                // invariant: `x` was just reserved and `develop` returns
                // in-domain primitives (the user sees only real ones).
                self.submit(lfs.clone(), pipeline).expect("step submits its own suggestion");
                lfs
            }
            None => {
                // Pool exhausted: no pending reservation was made, but the
                // learning stage still runs (matching the historical
                // `IdpSession::step` contract).
                self.relearn(pipeline);
                Vec::new()
            }
        };
        StepRecord { iteration, selected, new_lfs }
    }

    /// Sec. 7 example explorer: a random sample of up to `k` training
    /// examples containing primitive `z`.
    pub fn sample_covered(&mut self, z: u32, k: usize) -> Vec<u32> {
        let postings = self.ds.train.corpus.index().postings(z);
        if postings.len() <= k {
            return postings.to_vec();
        }
        let picks = self.rng.sample_indices(postings.len(), k);
        picks.into_iter().map(|i| postings[i]).collect()
    }

    /// Current test-split score under the dataset metric.
    pub fn test_score(&self) -> f64 {
        self.ds.metric.score(&self.outputs.test_pred, &self.ds.test.labels)
    }

    /// Current validation-split score under the dataset metric.
    pub fn valid_score(&self) -> f64 {
        self.ds.metric.score(&self.outputs.valid_pred, &self.ds.valid.labels)
    }

    /// Whether the configured checkpoint cadence says a snapshot is due
    /// now (`checkpoint_every` iterations completed since the last
    /// multiple; never due at iteration 0 or when the knob is unset).
    pub fn checkpoint_due(&self) -> bool {
        match self.config.checkpoint_every {
            Some(k) if k > 0 => self.iteration > 0 && self.iteration % k == 0,
            _ => false,
        }
    }

    /// Snapshot the session's authoritative state (see
    /// [`crate::checkpoint::SessionCheckpoint`] for what is captured vs
    /// deterministically rebuilt on restore). `warm_seeds` is left empty —
    /// the contextualizer belongs to the pipeline, so
    /// [`crate::NemoSystem::checkpoint`] fills it in.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        let (rng_state, rng_gauss_spare) = self.rng.raw_state();
        SessionCheckpoint {
            config: self.config.clone(),
            iteration: self.iteration,
            pending: self.pending,
            lineage: self.lineage.tracked().to_vec(),
            columns: self.matrix.columns().map(|c| c.entries().to_vec()).collect(),
            excluded: self.excluded.clone(),
            train_p_pos: self.outputs.train_posterior.p_pos_slice().to_vec(),
            train_probs: self.outputs.train_probs.clone(),
            valid_pred: self.outputs.valid_pred.iter().map(|l| l.sign()).collect(),
            test_pred: self.outputs.test_pred.iter().map(|l| l.sign()).collect(),
            chosen_p: self.outputs.chosen_p,
            rng_state,
            rng_gauss_spare,
            warm_seeds: Vec::new(),
            engine: crate::checkpoint::EngineState::default(),
        }
    }

    /// Rebuild a session from a checkpoint against `ds`.
    ///
    /// Every field is validated against the dataset before any state is
    /// built, so a checkpoint from an untrusted file is rejected with a
    /// typed [`RestoreError`] rather than panicking or producing a
    /// session that violates its invariants. On success the session's
    /// observable behaviour is identical to the one that produced the
    /// checkpoint: same lineage and matrix, bit-identical model outputs
    /// and RNG stream, and a freshly rebuilt (exact) SEU aggregate cache.
    pub fn restore(ds: &'a Dataset, ckpt: &SessionCheckpoint) -> Result<Self, RestoreError> {
        let n_train = ds.train.n();
        let expect_len = |field, expected: usize, actual: usize| {
            if expected == actual {
                Ok(())
            } else {
                Err(RestoreError::LengthMismatch { field, expected, actual })
            }
        };
        expect_len("excluded", n_train, ckpt.excluded.len())?;
        expect_len("train_p_pos", n_train, ckpt.train_p_pos.len())?;
        expect_len("train_probs", n_train, ckpt.train_probs.len())?;
        expect_len("valid_pred", ds.valid.n(), ckpt.valid_pred.len())?;
        expect_len("test_pred", ds.test.n(), ckpt.test_pred.len())?;

        let unit_interval = |field, values: &[f64]| {
            if values.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)) {
                Ok(())
            } else {
                Err(RestoreError::ValueOutOfRange { field })
            }
        };
        unit_interval("train_p_pos", &ckpt.train_p_pos)?;
        unit_interval("train_probs", &ckpt.train_probs)?;
        if let Some(p) = ckpt.chosen_p {
            if !p.is_finite() {
                return Err(RestoreError::ValueOutOfRange { field: "chosen_p" });
            }
        }
        let signs_to_labels = |field, signs: &[i8]| {
            signs
                .iter()
                .map(|&s| Label::from_sign(s).ok_or(RestoreError::ValueOutOfRange { field }))
                .collect::<Result<Vec<Label>, RestoreError>>()
        };
        let valid_pred = signs_to_labels("valid_pred", &ckpt.valid_pred)?;
        let test_pred = signs_to_labels("test_pred", &ckpt.test_pred)?;

        for (j, rec) in ckpt.lineage.iter().enumerate() {
            if rec.lf.z as usize >= ds.n_primitives || rec.dev_example as usize >= n_train {
                return Err(RestoreError::LineageOutOfDomain { lf: j });
            }
        }
        if ckpt.columns.len() != ckpt.lineage.len() {
            return Err(RestoreError::ColumnArity {
                expected: ckpt.lineage.len(),
                actual: ckpt.columns.len(),
            });
        }
        let mut matrix = LabelMatrix::new(n_train);
        for (j, entries) in ckpt.columns.iter().enumerate() {
            if entries.iter().any(|&(i, _)| i as usize >= n_train) {
                return Err(RestoreError::MalformedColumn {
                    lf: j,
                    reason: "entry references an example outside the training split",
                });
            }
            let col = LfColumn::try_new(entries.clone())
                .map_err(|reason| RestoreError::MalformedColumn { lf: j, reason })?;
            matrix.push(col);
        }

        if let Some(x) = ckpt.pending {
            if x >= n_train || !ckpt.excluded[x] {
                return Err(RestoreError::InvalidPending);
            }
        }
        let rng = DetRng::from_raw_state(ckpt.rng_state, ckpt.rng_gauss_spare)
            .ok_or(RestoreError::DegenerateRngState)?;

        let mut lineage = Lineage::new();
        for rec in &ckpt.lineage {
            lineage.record(rec.lf, rec.dev_example, rec.iteration);
        }
        // `Posterior::new` clamps to [0, 1]; the range check above makes
        // the clamp an identity, so the persisted bits survive intact.
        let outputs = ModelOutputs {
            train_posterior: Posterior::new(ckpt.train_p_pos.clone()),
            train_probs: ckpt.train_probs.clone(),
            valid_pred,
            test_pred,
            chosen_p: ckpt.chosen_p,
        };
        let cache = SeuAggregates::new(ds, &outputs);
        Ok(Self {
            rng,
            lineage,
            matrix,
            excluded: ckpt.excluded.clone(),
            iteration: ckpt.iteration,
            pending: ckpt.pending,
            outputs,
            cache,
            ds,
            config: ckpt.config.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idp::RandomSelector;
    use crate::oracle::SimulatedUser;
    use crate::pipeline::StandardPipeline;
    use crate::seu::SeuSelector;
    use nemo_data::catalog::toy_text;

    fn cfg(n: usize, seed: u64) -> IdpConfig {
        IdpConfig { n_iterations: n, eval_every: 5, seed, ..Default::default() }
    }

    #[test]
    fn select_submit_cycle_updates_state() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 1));
        let mut selector = RandomSelector;
        let mut pipeline = StandardPipeline;
        let x = s.select_with(&mut selector).unwrap().expect("pool non-empty");
        assert_eq!(s.pending(), Some(x));
        let z = ds.train.corpus.primitives_of(x)[0];
        s.submit(vec![PrimitiveLf::new(z, nemo_lf::Label::Pos)], &mut pipeline).unwrap();
        assert_eq!(s.lineage().len(), 1);
        assert_eq!(s.iteration(), 1);
        assert_eq!(s.pending(), None);
    }

    #[test]
    fn double_select_is_an_error() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 2));
        let mut selector = RandomSelector;
        let x = s.select_with(&mut selector).unwrap().unwrap();
        assert_eq!(
            s.select_with(&mut selector),
            Err(crate::error::SessionError::SuggestionPending { pending: x })
        );
        // The reservation survives the failed call.
        assert_eq!(s.pending(), Some(x));
    }

    #[test]
    fn submit_without_select_is_an_error() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 3));
        let mut pipeline = StandardPipeline;
        assert_eq!(
            s.submit(vec![PrimitiveLf::new(0, nemo_lf::Label::Pos)], &mut pipeline),
            Err(crate::error::SessionError::NoPendingSuggestion)
        );
        assert_eq!(s.skip(&mut pipeline), Err(crate::error::SessionError::NoPendingSuggestion));
        assert_eq!(s.iteration(), 0);
    }

    #[test]
    fn out_of_domain_submit_rejected_without_state_change() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 3));
        let mut selector = RandomSelector;
        let mut pipeline = StandardPipeline;
        let x = s.select_with(&mut selector).unwrap().unwrap();
        let bad = PrimitiveLf::new(ds.n_primitives as u32, nemo_lf::Label::Pos);
        assert_eq!(
            s.submit(vec![bad], &mut pipeline),
            Err(crate::error::SessionError::PrimitiveOutOfDomain {
                z: ds.n_primitives as u32,
                n_primitives: ds.n_primitives
            })
        );
        // Nothing recorded, suggestion still pending and resolvable.
        assert_eq!(s.lineage().len(), 0);
        assert_eq!(s.pending(), Some(x));
        s.skip(&mut pipeline).unwrap();
        assert_eq!(s.iteration(), 1);
    }

    #[test]
    fn cached_aggregates_track_full_rebuild_over_a_run() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(12, 4));
        let mut selector = SeuSelector::new();
        let mut user = SimulatedUser::default();
        let mut pipeline = StandardPipeline;
        for _ in 0..12 {
            s.step(&mut selector, &mut user, &mut pipeline);
            let rebuilt = SeuSelector::primitive_aggregates(&s.view());
            for (z, (cached, fresh)) in s.aggregates().aggs().iter().zip(&rebuilt).enumerate() {
                assert_eq!(cached.df, fresh.df, "z={z}");
                assert_eq!(cached.n_pos, fresh.n_pos, "z={z}");
                assert!((cached.s_psi - fresh.s_psi).abs() < 1e-9, "z={z}");
                assert!((cached.s_yhat - fresh.s_yhat).abs() < 1e-9, "z={z}");
                assert!((cached.s_psi_yhat - fresh.s_psi_yhat).abs() < 1e-9, "z={z}");
            }
        }
        let (rebuilds, deltas) = s.aggregates().sync_counts();
        assert!(deltas > 0, "delta path never exercised ({rebuilds} rebuilds)");
    }

    #[test]
    fn matrix_snapshots_share_vote_buffers() {
        // Per-round trajectory recording clones the session matrix; with
        // Arc-backed storage every snapshot must share the collected
        // columns' vote buffers instead of memcpying them.
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(6, 9));
        let mut selector = SeuSelector::new();
        let mut user = SimulatedUser::default();
        let mut pipeline = StandardPipeline;
        for _ in 0..6 {
            s.step(&mut selector, &mut user, &mut pipeline);
        }
        let n_lfs = s.matrix().n_lfs();
        assert!(n_lfs > 0, "session collected no LFs");
        let snapshot = s.matrix().clone();
        assert_eq!(snapshot.shared_columns_with(s.matrix()), n_lfs);
        assert_eq!(&snapshot, s.matrix());
    }

    #[test]
    fn empty_submit_consumes_iteration_like_skip() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 5));
        let mut selector = RandomSelector;
        let mut pipeline = StandardPipeline;
        s.select_with(&mut selector).unwrap();
        s.submit(Vec::new(), &mut pipeline).unwrap();
        assert_eq!(s.lineage().len(), 0);
        assert_eq!(s.iteration(), 1);
    }

    #[test]
    fn advance_frozen_only_bumps_iteration() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 6));
        s.advance_frozen().unwrap();
        assert_eq!(s.iteration(), 1);
        assert_eq!(s.lineage().len(), 0);
    }

    #[test]
    fn checkpoint_roundtrips_through_restore() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(12, 7));
        let mut selector = SeuSelector::new();
        let mut user = SimulatedUser::default();
        let mut pipeline = StandardPipeline;
        for _ in 0..4 {
            s.step(&mut selector, &mut user, &mut pipeline);
        }
        let ckpt = s.checkpoint();
        let r = Session::restore(&ds, &ckpt).expect("valid checkpoint restores");
        assert_eq!(r.iteration(), s.iteration());
        assert_eq!(r.lineage().tracked(), s.lineage().tracked());
        assert_eq!(r.matrix(), s.matrix());
        assert_eq!(
            r.outputs().train_posterior.p_pos_slice(),
            s.outputs().train_posterior.p_pos_slice()
        );
        assert_eq!(r.outputs().train_probs, s.outputs().train_probs);
        assert_eq!(r.outputs().valid_pred, s.outputs().valid_pred);
        assert_eq!(r.outputs().chosen_p, s.outputs().chosen_p);
        // The restored cache is an exact full rebuild of the same state.
        assert_eq!(r.aggregates().aggs().len(), s.aggregates().aggs().len());
        for (a, b) in r.aggregates().aggs().iter().zip(s.aggregates().aggs()) {
            assert_eq!(a.df, b.df);
            assert_eq!(a.n_pos, b.n_pos);
        }
    }

    #[test]
    fn checkpoint_preserves_pending_reservation() {
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(10, 8));
        let mut selector = RandomSelector;
        let mut pipeline = StandardPipeline;
        let x = s.select_with(&mut selector).unwrap().unwrap();
        let ckpt = s.checkpoint();
        let mut r = Session::restore(&ds, &ckpt).unwrap();
        assert_eq!(r.pending(), Some(x));
        r.skip(&mut pipeline).unwrap();
        assert_eq!(r.iteration(), 1);
    }

    #[test]
    fn restore_rejects_inconsistent_checkpoints() {
        use crate::error::RestoreError;
        let ds = toy_text(1);
        let mut s = Session::new(&ds, cfg(12, 9));
        let mut selector = SeuSelector::new();
        let mut user = SimulatedUser::default();
        let mut pipeline = StandardPipeline;
        for _ in 0..3 {
            s.step(&mut selector, &mut user, &mut pipeline);
        }
        let good = s.checkpoint();
        assert!(Session::restore(&ds, &good).is_ok());

        let mut bad = good.clone();
        bad.excluded.pop();
        assert!(matches!(
            Session::restore(&ds, &bad),
            Err(RestoreError::LengthMismatch { field: "excluded", .. })
        ));

        let mut bad = good.clone();
        bad.train_p_pos[0] = f64::NAN;
        assert!(matches!(
            Session::restore(&ds, &bad),
            Err(RestoreError::ValueOutOfRange { field: "train_p_pos" })
        ));

        let mut bad = good.clone();
        bad.valid_pred[0] = 0;
        assert!(matches!(
            Session::restore(&ds, &bad),
            Err(RestoreError::ValueOutOfRange { field: "valid_pred" })
        ));

        let mut bad = good.clone();
        bad.lineage[0].lf.z = ds.n_primitives as u32;
        assert!(matches!(
            Session::restore(&ds, &bad),
            Err(RestoreError::LineageOutOfDomain { lf: 0 })
        ));

        let mut bad = good.clone();
        bad.columns.pop();
        assert!(matches!(Session::restore(&ds, &bad), Err(RestoreError::ColumnArity { .. })));

        let mut bad = good.clone();
        bad.columns[0] = vec![(0, 2)];
        assert!(matches!(
            Session::restore(&ds, &bad),
            Err(RestoreError::MalformedColumn { lf: 0, .. })
        ));

        let mut bad = good.clone();
        bad.columns[0] = vec![(ds.train.n() as u32, 1)];
        assert!(matches!(
            Session::restore(&ds, &bad),
            Err(RestoreError::MalformedColumn { lf: 0, .. })
        ));

        let mut bad = good.clone();
        bad.pending = Some(ds.train.n());
        assert!(matches!(Session::restore(&ds, &bad), Err(RestoreError::InvalidPending)));

        let mut bad = good.clone();
        bad.rng_state = [0; 4];
        assert!(matches!(Session::restore(&ds, &bad), Err(RestoreError::DegenerateRngState)));
    }

    #[test]
    fn checkpoint_due_follows_cadence() {
        let ds = toy_text(1);
        let mut config = cfg(10, 10);
        config.checkpoint_every = Some(2);
        let mut s = Session::new(&ds, config);
        let mut selector = RandomSelector;
        let mut user = SimulatedUser::default();
        let mut pipeline = StandardPipeline;
        assert!(!s.checkpoint_due(), "never due at iteration 0");
        let mut due = Vec::new();
        for _ in 0..5 {
            s.step(&mut selector, &mut user, &mut pipeline);
            due.push(s.checkpoint_due());
        }
        assert_eq!(due, vec![false, true, false, true, false]);
        let unset = Session::new(&ds, cfg(10, 11));
        assert!(!unset.checkpoint_due());
    }
}

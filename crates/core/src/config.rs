//! Configuration types for IDP sessions.

use nemo_endmodel::LogRegConfig;
use nemo_labelmodel::{GenerativeModel, LabelModel, MajorityVote, TripletModel};
use nemo_sparse::{DenseBackend, Distance};

/// Which label model aggregates the weak votes (the paper adopts MeTaL;
/// alternatives are provided for ablation).
// lint: allow(doctrine/unregistered-switch): an ablation axis (which
// estimator), not a fast path vs. reference path — no differential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelModelKind {
    /// Moment-based accuracy estimation with shrinkage (the binary
    /// equivalent of MeTaL's matrix-completion step, implemented via the
    /// FlyingSquid triplet identities) — the paper's default label model.
    #[default]
    Metal,
    /// Dawid–Skene EM-fitted generative model (alternative estimator).
    Generative,
    /// Majority vote.
    Majority,
}

impl LabelModelKind {
    /// Instantiate the estimator.
    pub fn build(self) -> Box<dyn LabelModel> {
        match self {
            LabelModelKind::Metal => Box::new(TripletModel::default()),
            LabelModelKind::Generative => Box::new(GenerativeModel::default()),
            LabelModelKind::Majority => Box::new(MajorityVote::default()),
        }
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LabelModelKind::Metal => "metal-moment",
            LabelModelKind::Generative => "generative-em",
            LabelModelKind::Majority => "majority-vote",
        }
    }
}

/// Which distance engine backs the contextualizer's per-LF caches.
///
/// Both engines are bit-identical (the indexed kernel accumulates each
/// row's matching terms in the same order as the row-major merge), so this
/// switch never changes results — only how fast registration runs. The
/// naive engine is retained for differential tests
/// (`tests/contextualizer_paths.rs`) and the regression guard in
/// `kernel_microbench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceBackend {
    /// Inverted-index (CSC) kernel with batched, parallel registration —
    /// the production path.
    #[default]
    Indexed,
    /// Per-LF row-major scan (the pre-index reference path).
    Naive,
}

impl DistanceBackend {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DistanceBackend::Indexed => "indexed",
            DistanceBackend::Naive => "naive",
        }
    }
}

/// How the SEU selector scores the candidate pool each round.
///
/// A candidate's utility depends only on the score-table rows of its
/// primitives, so the dirty-set path caches every candidate's score
/// components and applies only the row deltas reported by the session's
/// [`crate::session::SeuAggregates`] dirty log — `O(Σ_{z dirty} df(z) +
/// n)` per round instead of the full `O(nnz(U))` rescore. A periodic
/// drift re-anchor, aggregate rebuilds, and rounds whose dirty rows
/// cover the entire posting mass recompute exactly, bit-identical to
/// [`SeuScoring::Full`]; delta rounds agree within fp-drift tolerance
/// (`1e-9`, differential-tested). The full path is retained for
/// differential tests
/// (`tests/incremental_differential.rs`, `tests/incremental_paths.rs`)
/// and is the only path for stand-alone views without cached aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeuScoring {
    /// Rescore only candidates covered by a dirty primitive; clean
    /// candidates keep their cached utility — the production path.
    #[default]
    DirtySet,
    /// Rebuild the score table and rescore the whole pool every round
    /// (the pre-dirty-set reference path).
    Full,
}

impl SeuScoring {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SeuScoring::DirtySet => "dirty-set",
            SeuScoring::Full => "full",
        }
    }
}

/// Whether iterative label-model fits inside percentile tuning are seeded
/// from previously fitted parameters.
///
/// With [`WarmStart::Warm`], [`crate::contextualizer::Contextualizer::tune_p`]
/// seeds each grid point's EM fit from the parameters fitted at the same
/// grid point one round earlier, and — because per-point seeding keeps
/// the fits independent — runs the grid's fits in parallel, so a tuning
/// round's wall-clock is one fit rather than one per grid point.
/// Moment-based estimators (MeTaL
/// triplets, majority vote) ignore the seed, making the switch a no-op
/// for them. On well-conditioned matrices warm and cold fits agree
/// within the EM tolerance (not bit-identically — differential-tested);
/// on weakly-identified matrices, where EM is genuinely multimodal, warm
/// seeding *tracks the incumbent basin* across rounds instead of
/// re-picking one from the fixed initializer — see
/// [`crate::contextualizer::Contextualizer::tune_p`] for why that is the
/// intended semantics. The cold path remains selectable for differential
/// tests and for restart-from-scratch reproducibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// Seed EM from previously fitted parameters — the production path.
    #[default]
    Warm,
    /// Every fit starts from the estimator's default initialization.
    Cold,
}

impl WarmStart {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WarmStart::Warm => "warm",
            WarmStart::Cold => "cold",
        }
    }
}

/// How `tune_p` obtains the per-grid-point refined label matrices.
///
/// Refinement at a fixed percentile is a pure function of the raw column
/// and the radius `r_j(p)`, and between interactive rounds almost nothing
/// feeding that function changes: lineage is append-only, so an existing
/// LF's distance table (hence its radius at every grid point) is frozen
/// at registration, and its raw column is built once. The incremental
/// path therefore caches every `(grid point, LF)` pair's filtered
/// train/valid columns keyed by the radius bits and the raw column's
/// construction token ([`nemo_lf::LfColumn::token`]), and refilters a
/// column only when its key actually changed — on a warm round that is
/// just the newly registered LFs, `O(grid)` filters instead of
/// `O(grid · lfs)`. Served columns are clones of the cached filter
/// output, so both paths produce **bit-identical** matrices, tuned
/// percentiles, and dedup (`repr`/`unique`) resolution; the rebuild path
/// is retained for differential tests (`tests/refine_cache_differential.rs`)
/// and the `refine_cache` regression guard in `kernel_microbench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinementCaching {
    /// Serve unchanged columns from the cross-round refined-column cache —
    /// the production path.
    #[default]
    Incremental,
    /// Re-filter every LF column at every grid point each round (the
    /// pre-cache reference path).
    Rebuild,
}

impl RefinementCaching {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RefinementCaching::Incremental => "incremental",
            RefinementCaching::Rebuild => "rebuild",
        }
    }
}

/// How `tune_p` scores the per-grid-point refined matrices on the
/// validation split.
///
/// Two grid points whose train-side dedup proved the fits identical
/// (same `repr`, hence bitwise-equal fitted parameters) and whose
/// refined *validation* matrices are content-equal (radii quantizing to
/// the same filtered columns — column equality short-circuits through
/// [`nemo_lf::LfColumn::token`]) necessarily produce bitwise-identical
/// posteriors and log-likelihood scores. The class path runs **one**
/// label-model posterior predict + score per such equivalence class and
/// reuses the representative's score for every member, so the tuned
/// percentile and validation score are bit-identical to scoring every
/// grid point — the per-point path is retained as the reference for
/// differential tests (`tests/matrix_cow_differential.rs`) and the
/// `tune_p_dedup` regression guard in `kernel_microbench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PosteriorDedup {
    /// One posterior predict + score per `(fit, validation matrix)`
    /// equivalence class — the production path.
    #[default]
    Class,
    /// Predict and score every grid point independently (the
    /// pre-dedup reference path).
    PerPoint,
}

impl PosteriorDedup {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PosteriorDedup::Class => "class",
            PosteriorDedup::PerPoint => "per-point",
        }
    }
}

/// Which selection engine drives the interactive loop.
///
/// Both engines plug into the same [`crate::Session`] state machine, feed
/// accepted LFs through the contextualizer identically, and checkpoint /
/// restore bit-identically through [`crate::SessionCheckpoint`]; the
/// switch changes *what the user is asked each round*, not any learning
/// semantics downstream of the answer. SEU is the paper's protocol and
/// the reference path (`tests/iws_engine_differential.rs` pins the IWS
/// engine's trajectories across thread counts, checkpoint/restore, and
/// pool churn); the `iws_rank` bench section records end-model accuracy
/// per oracle query for both engines Table-5-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// SEU development-example selection: the engine picks the most
    /// useful unlabeled example and the user authors an LF for it — the
    /// paper's protocol and the reference path.
    #[default]
    Seu,
    /// IWS learned LF-candidate ranking (Boecking et al.): the engine
    /// enumerates keyword-LF candidates from the vocabulary, ranks them
    /// with a bootstrap-committee user model updated online from
    /// accept/reject feedback, and asks the user only to judge the
    /// top-ranked candidate each round.
    Iws,
}

impl SelectionStrategy {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::Seu => "seu",
            SelectionStrategy::Iws => "iws-rank",
        }
    }
}

/// Contextualizer settings (paper Sec. 4.3).
#[derive(Debug, Clone)]
pub struct ContextualizerConfig {
    /// Distance function (cosine by default; Table 9 compares euclidean).
    pub distance: Distance,
    /// Candidate percentile values for the refinement radius; the best is
    /// chosen per iteration by validation accuracy of the soft labels.
    pub p_grid: Vec<f64>,
    /// Distance engine used to build the per-LF distance caches.
    pub backend: DistanceBackend,
    /// Dense reduction kernel for dense-backed feature splits
    /// ([`nemo_sparse::DenseBackend`]): the blocked multi-accumulator
    /// kernel (production default, deterministic, ≤ ~1e-9 relative from
    /// the reference) or the scalar reference leg. Sparse-backed splits
    /// ignore this switch, and [`DistanceBackend::Naive`] always uses the
    /// scalar kernels so the reference path stays a single anchored
    /// implementation.
    pub dense_backend: DenseBackend,
    /// Whether percentile tuning warm-starts iterative label-model fits
    /// across grid points and rounds.
    pub warm_start: WarmStart,
    /// Whether `tune_p` serves per-grid-point refined columns from the
    /// cross-round cache or refilters everything each round.
    pub refinement: RefinementCaching,
    /// Whether `tune_p` runs one validation predict per score
    /// equivalence class or one per grid point.
    pub posterior_dedup: PosteriorDedup,
}

impl Default for ContextualizerConfig {
    fn default() -> Self {
        Self {
            distance: Distance::Cosine,
            p_grid: vec![25.0, 50.0, 75.0, 100.0],
            backend: DistanceBackend::default(),
            dense_backend: DenseBackend::default(),
            warm_start: WarmStart::default(),
            refinement: RefinementCaching::default(),
            posterior_dedup: PosteriorDedup::default(),
        }
    }
}

/// Configuration of one IDP run (paper Sec. 5.1 evaluation protocol).
#[derive(Debug, Clone)]
pub struct IdpConfig {
    /// Total interactive iterations (paper: 50).
    pub n_iterations: usize,
    /// Evaluate the end model on the test split every this many
    /// iterations (paper: 5).
    pub eval_every: usize,
    /// Label model choice.
    pub label_model: LabelModelKind,
    /// End-model hyperparameters.
    pub end_model: LogRegConfig,
    /// LFs the user may return per iteration (1 = the paper's atomic
    /// setting; >1 enables the Sec. 7 multi-LF extension).
    pub lfs_per_iteration: usize,
    /// Which selection engine drives the loop (SEU example selection —
    /// the reference path — or IWS learned LF-candidate ranking).
    pub selection: SelectionStrategy,
    /// Master seed for the run.
    pub seed: u64,
    /// Snapshot cadence for crash recovery: `Some(k)` asks the driver to
    /// persist a [`crate::checkpoint::SessionCheckpoint`] every `k`
    /// completed iterations ([`crate::Session::checkpoint_due`] reports
    /// when). `None` (the default) disables periodic checkpointing; the
    /// knob never affects learning behaviour, only when snapshots happen.
    pub checkpoint_every: Option<usize>,
}

impl Default for IdpConfig {
    fn default() -> Self {
        Self {
            n_iterations: 50,
            eval_every: 5,
            label_model: LabelModelKind::Metal,
            end_model: LogRegConfig::default(),
            lfs_per_iteration: 1,
            selection: SelectionStrategy::default(),
            seed: 0,
            checkpoint_every: None,
        }
    }
}

impl IdpConfig {
    /// Copy with a different seed (for multi-seed protocols).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self { seed, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_model_kinds_build() {
        for kind in [LabelModelKind::Metal, LabelModelKind::Generative, LabelModelKind::Majority] {
            let _ = kind.build();
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn defaults_match_paper_protocol() {
        let cfg = IdpConfig::default();
        assert_eq!(cfg.n_iterations, 50);
        assert_eq!(cfg.eval_every, 5);
        assert_eq!(cfg.lfs_per_iteration, 1);
        assert_eq!(cfg.label_model, LabelModelKind::Metal);
        assert_eq!(cfg.checkpoint_every, None);
        assert_eq!(cfg.selection, SelectionStrategy::Seu);
    }

    #[test]
    fn selection_strategy_names_stable() {
        assert_eq!(SelectionStrategy::Seu.name(), "seu");
        assert_eq!(SelectionStrategy::Iws.name(), "iws-rank");
        assert_eq!(SelectionStrategy::default(), SelectionStrategy::Seu);
    }

    #[test]
    fn contextualizer_default_grid() {
        let c = ContextualizerConfig::default();
        assert_eq!(c.distance, Distance::Cosine);
        assert_eq!(c.p_grid, vec![25.0, 50.0, 75.0, 100.0]);
        assert_eq!(c.backend, DistanceBackend::Indexed);
    }

    #[test]
    fn backend_names_stable() {
        assert_eq!(DistanceBackend::Indexed.name(), "indexed");
        assert_eq!(DistanceBackend::Naive.name(), "naive");
        assert_eq!(DenseBackend::Blocked.name(), "blocked");
        assert_eq!(DenseBackend::Scalar.name(), "scalar");
    }

    #[test]
    fn incremental_switch_names_stable() {
        assert_eq!(SeuScoring::DirtySet.name(), "dirty-set");
        assert_eq!(SeuScoring::Full.name(), "full");
        assert_eq!(WarmStart::Warm.name(), "warm");
        assert_eq!(WarmStart::Cold.name(), "cold");
        assert_eq!(RefinementCaching::Incremental.name(), "incremental");
        assert_eq!(RefinementCaching::Rebuild.name(), "rebuild");
        assert_eq!(PosteriorDedup::Class.name(), "class");
        assert_eq!(PosteriorDedup::PerPoint.name(), "per-point");
    }

    #[test]
    fn incremental_paths_are_the_defaults() {
        assert_eq!(SeuScoring::default(), SeuScoring::DirtySet);
        assert_eq!(WarmStart::default(), WarmStart::Warm);
        assert_eq!(ContextualizerConfig::default().warm_start, WarmStart::Warm);
        assert_eq!(RefinementCaching::default(), RefinementCaching::Incremental);
        assert_eq!(ContextualizerConfig::default().refinement, RefinementCaching::Incremental);
        assert_eq!(PosteriorDedup::default(), PosteriorDedup::Class);
        assert_eq!(ContextualizerConfig::default().posterior_dedup, PosteriorDedup::Class);
        assert_eq!(DenseBackend::default(), DenseBackend::Blocked);
        assert_eq!(ContextualizerConfig::default().dense_backend, DenseBackend::Blocked);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = IdpConfig::default();
        let b = a.with_seed(9);
        assert_eq!(b.seed, 9);
        assert_eq!(b.n_iterations, a.n_iterations);
    }
}

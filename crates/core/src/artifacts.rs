//! The shared read-only world of a multi-tenant deployment.
//!
//! Everything a learning round *reads* but never *writes* — the prepared
//! [`Dataset`] (feature matrices with their CSC companions and cached row
//! norms, primitive corpora, lexicon) plus the fitted text-pipeline state
//! (vocabulary, TF-IDF statistics) — is immutable after dataset
//! preparation. [`SharedArtifacts`] packages exactly that set so it can be
//! built (or loaded from a `nemo-persist` artifact file) once and handed
//! out behind an [`Arc`] to any number of concurrent sessions: every
//! per-user structure ([`crate::Session`], [`crate::NemoSystem`],
//! [`crate::pool::SessionPool`]) borrows the artifacts, it never clones
//! them.
//!
//! The split mirrors the paper's serving model: Nemo's interactive loop
//! (Hsieh et al., PVLDB 2022, Sec. 4) is per-user mutable state — lineage,
//! label matrix, selector aggregates, RNG — evolving over an immutable
//! example pool. Keeping the immutable side in one place is what makes a
//! session cheap enough to admit by the hundreds.

use std::ops::Deref;
use std::sync::Arc;

use nemo_data::Dataset;
use nemo_text::{TfIdfModel, Vocab};

/// The immutable artifact set shared by every session of a deployment:
/// one prepared dataset plus the optional fitted text-pipeline state.
///
/// Derefs to [`Dataset`], so any API taking `&Dataset` accepts
/// `&SharedArtifacts` unchanged:
///
/// ```
/// use std::sync::Arc;
/// use nemo_core::{IdpConfig, NemoSystem, SharedArtifacts, SimulatedUser};
/// use nemo_data::catalog::toy_text;
///
/// // Build the read-only world once...
/// let artifacts = Arc::new(SharedArtifacts::new(toy_text(1)));
///
/// // ...and run any number of independent sessions over one copy.
/// let mut curves = Vec::new();
/// for seed in [1u64, 2] {
///     let config = IdpConfig { n_iterations: 4, seed, ..Default::default() };
///     let mut nemo = NemoSystem::new(&artifacts, config);
///     curves.push(nemo.run_with_user(&mut SimulatedUser::default()));
/// }
/// assert_eq!(curves.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SharedArtifacts {
    dataset: Dataset,
    vocab: Option<Vocab>,
    tfidf: Option<TfIdfModel>,
}

impl SharedArtifacts {
    /// Wrap a prepared dataset with no text-pipeline state (the shape of
    /// dense-embedding tasks).
    pub fn new(dataset: Dataset) -> Self {
        Self { dataset, vocab: None, tfidf: None }
    }

    /// Wrap a prepared dataset together with the fitted text-pipeline
    /// state that produced its features (the shape of text tasks, and of
    /// a loaded `nemo-persist` artifact bundle).
    pub fn with_text(dataset: Dataset, vocab: Option<Vocab>, tfidf: Option<TfIdfModel>) -> Self {
        Self { dataset, vocab, tfidf }
    }

    /// The prepared dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The fitted token vocabulary, if this artifact set came from the
    /// text pipeline.
    pub fn vocab(&self) -> Option<&Vocab> {
        self.vocab.as_ref()
    }

    /// The fitted TF-IDF statistics, if this artifact set came from the
    /// text pipeline.
    pub fn tfidf(&self) -> Option<&TfIdfModel> {
        self.tfidf.as_ref()
    }

    /// Move into an [`Arc`], the handle multi-tenant callers share.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

impl Deref for SharedArtifacts {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        &self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdpConfig;
    use crate::system::NemoSystem;
    use nemo_data::catalog::toy_text;

    #[test]
    fn derefs_to_dataset() {
        let artifacts = SharedArtifacts::new(toy_text(1));
        assert_eq!(artifacts.train.features.n(), artifacts.dataset().train.features.n());
        // Deref coercion lets `&SharedArtifacts` stand in for `&Dataset`.
        let nemo = NemoSystem::new(&artifacts, IdpConfig::default());
        assert_eq!(nemo.iteration(), 0);
    }

    #[test]
    fn text_state_is_carried() {
        let artifacts = SharedArtifacts::new(toy_text(2));
        assert!(artifacts.vocab().is_none());
        assert!(artifacts.tfidf().is_none());
        let shared = artifacts.into_shared();
        assert_eq!(std::sync::Arc::strong_count(&shared), 1);
    }
}

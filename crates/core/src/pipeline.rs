//! Learning pipelines (IDP stage 3).
//!
//! [`StandardPipeline`] is the conventional DP learning stage: label model
//! on the raw label matrix, then the end model on the soft labels
//! (Sec. 4.3, "Standard Learning Pipeline"). [`ContextualizedPipeline`]
//! inserts Nemo's LF contextualizer before aggregation (the bottom path of
//! Figure 4): LFs are refined around their development data, the
//! refinement percentile is tuned on validation, and the same label/end
//! models run on the refined votes — the contextualizer is model-agnostic
//! pre-processing, as the paper emphasizes.

use crate::config::IdpConfig;
use crate::contextualizer::Contextualizer;
use crate::idp::ModelOutputs;
use nemo_data::Dataset;
use nemo_endmodel::LogisticRegression;
use nemo_labelmodel::Posterior;
use nemo_lf::{Label, LabelMatrix, Lineage, Metric};

/// The class balance used inside weak-label aggregation (MeTaL's default).
pub const UNIFORM_BALANCE: [f64; 2] = [0.5, 0.5];

/// Convert validation/test probabilities into hard predictions under the
/// dataset metric. Accuracy tasks use the 0.5 threshold; F1 tasks tune
/// the threshold on the validation split (under heavy class imbalance the
/// 0.5 threshold never predicts the minority class; see
/// [`nemo_lf::metrics::best_f1_threshold`]).
pub fn hard_predictions(
    valid_probs: &[f64],
    test_probs: &[f64],
    ds: &Dataset,
) -> (Vec<Label>, Vec<Label>) {
    let threshold = match ds.metric {
        Metric::Accuracy => 0.5,
        Metric::F1 => nemo_lf::metrics::best_f1_threshold(valid_probs, &ds.valid.labels),
    };
    let to_labels = |probs: &[f64]| -> Vec<Label> {
        probs.iter().map(|&p| Label::from_bool(p >= threshold)).collect()
    };
    (to_labels(valid_probs), to_labels(test_probs))
}

/// A learning stage: consume the collected LFs (with lineage) and produce
/// model outputs.
pub trait LearningPipeline {
    /// Name for reports ("standard", "contextualized", "implyloss").
    fn name(&self) -> &'static str;

    /// Learn from the LFs collected so far.
    ///
    /// `raw_matrix` is the unrefined train label matrix aligned with
    /// `lineage`; `iter_seed` is a per-iteration deterministic seed.
    fn learn(
        &mut self,
        lineage: &Lineage,
        raw_matrix: &LabelMatrix,
        ds: &Dataset,
        config: &IdpConfig,
        iter_seed: u64,
    ) -> ModelOutputs;
}

/// Train the end model on covered examples against the label-model soft
/// labels and predict all three splits — the step every pipeline shares.
///
/// `covered` is the ascending list of train examples with at least one
/// non-abstain vote, as returned alongside the posterior by
/// [`nemo_labelmodel::FittedLabelModel::predict_with_coverage`] — the
/// aggregation pass already touches every vote, so pipelines hand the
/// coverage through instead of this function re-scanning the (tuned)
/// train matrix every round.
pub fn end_model_outputs(
    posterior: Posterior,
    covered: &[u32],
    ds: &Dataset,
    config: &IdpConfig,
    iter_seed: u64,
    chosen_p: Option<f64>,
) -> ModelOutputs {
    if covered.is_empty() {
        return ModelOutputs { chosen_p, ..ModelOutputs::initial(ds) };
    }

    let trainer = LogisticRegression::new(config.end_model.clone());
    let model =
        trainer.fit(ds.train.features.csr(), posterior.p_pos_slice(), Some(covered), iter_seed);
    let train_probs = model.predict_proba(ds.train.features.csr());
    let valid_probs = model.predict_proba(ds.valid.features.csr());
    let test_probs = model.predict_proba(ds.test.features.csr());
    let (valid_pred, test_pred) = hard_predictions(&valid_probs, &test_probs, ds);

    ModelOutputs { train_posterior: posterior, train_probs, valid_pred, test_pred, chosen_p }
}

/// The standard (context-blind) learning pipeline.
#[derive(Debug, Clone, Default)]
pub struct StandardPipeline;

impl LearningPipeline for StandardPipeline {
    fn name(&self) -> &'static str {
        "standard"
    }

    fn learn(
        &mut self,
        _lineage: &Lineage,
        raw_matrix: &LabelMatrix,
        ds: &Dataset,
        config: &IdpConfig,
        iter_seed: u64,
    ) -> ModelOutputs {
        let label_model = config.label_model.build();
        // MeTaL's default assumes a uniform class balance unless one is
        // supplied; we follow it. On imbalanced tasks (SMS) feeding the
        // true prior into naive-Bayes aggregation makes a single
        // minority-class vote unable to cross 0.5 — the posterior then
        // never predicts the minority class and F1 collapses to zero.
        let fitted = label_model.fit(raw_matrix, UNIFORM_BALANCE);
        let (posterior, covered) = fitted.predict_with_coverage(raw_matrix);
        end_model_outputs(posterior, &covered, ds, config, iter_seed, None)
    }
}

/// Nemo's contextualized learning pipeline (Figure 4, bottom path).
///
/// The pipeline owns the [`Contextualizer`] and therefore all of its
/// cross-round caches: the per-LF distance tables, the EM warm-start
/// seeds, and the refined-column cache behind
/// [`crate::config::RefinementCaching::Incremental`]. A
/// [`crate::session::Session`] drives `learn` every round with the
/// *same* pipeline instance, so `Contextualizer::sync` registers only the
/// round's new LFs and `tune_p` refilters only their columns — the rest
/// of the per-grid-point refined matrices are assembled from shared
/// `Arc` handles of the cached columns (`O(1)` per column, zero vote
/// memcpys), and grid points whose fits and refined validation matrices
/// coincide share one posterior predict
/// ([`crate::config::PosteriorDedup::Class`]). Constructing a fresh
/// pipeline per round forfeits exactly that reuse (results are identical
/// either way; the caches never change outputs).
pub struct ContextualizedPipeline {
    ctx: Contextualizer,
}

impl ContextualizedPipeline {
    /// Create with a contextualizer configuration.
    pub fn new(config: crate::config::ContextualizerConfig) -> Self {
        Self { ctx: Contextualizer::new(config) }
    }

    /// Access the underlying contextualizer (diagnostics — e.g.
    /// [`Contextualizer::refine_cache_stats`] and
    /// [`Contextualizer::tune_fits`]).
    pub fn contextualizer(&self) -> &Contextualizer {
        &self.ctx
    }

    /// Mutable access to the underlying contextualizer (checkpoint
    /// restoration via [`Contextualizer::set_warm_seeds`] /
    /// [`Contextualizer::invalidate_refined_cache_from`]).
    pub fn contextualizer_mut(&mut self) -> &mut Contextualizer {
        &mut self.ctx
    }
}

impl Default for ContextualizedPipeline {
    fn default() -> Self {
        Self::new(crate::config::ContextualizerConfig::default())
    }
}

impl LearningPipeline for ContextualizedPipeline {
    fn name(&self) -> &'static str {
        "contextualized"
    }

    fn learn(
        &mut self,
        lineage: &Lineage,
        raw_matrix: &LabelMatrix,
        ds: &Dataset,
        config: &IdpConfig,
        iter_seed: u64,
    ) -> ModelOutputs {
        self.ctx.sync(lineage, ds);
        if lineage.is_empty() {
            return ModelOutputs::initial(ds);
        }
        let label_model = config.label_model.build();
        let tuned = self.ctx.tune_p(raw_matrix, ds, &*label_model, UNIFORM_BALANCE);
        let (posterior, covered) = tuned.fitted.predict_with_coverage(&tuned.train_matrix);
        end_model_outputs(posterior, &covered, ds, config, iter_seed, Some(tuned.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idp::{IdpSession, RandomSelector};
    use crate::oracle::SimulatedUser;
    use nemo_data::catalog::toy_text;

    fn run(
        ds: &Dataset,
        pipeline: Box<dyn LearningPipeline + '_>,
        seed: u64,
    ) -> crate::idp::LearningCurve {
        let config = IdpConfig { n_iterations: 12, eval_every: 3, seed, ..Default::default() };
        IdpSession::new(
            ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            pipeline,
        )
        .run()
    }

    #[test]
    fn standard_pipeline_learns() {
        let ds = toy_text(1);
        let curve = run(&ds, Box::new(StandardPipeline), 1);
        assert!(curve.final_score() > 0.5, "score {}", curve.final_score());
    }

    #[test]
    fn contextualized_pipeline_learns_and_reports_p() {
        let ds = toy_text(1);
        let config = IdpConfig { n_iterations: 6, eval_every: 3, seed: 2, ..Default::default() };
        let mut session = IdpSession::new(
            &ds,
            config,
            Box::new(RandomSelector),
            Box::new(SimulatedUser::default()),
            Box::new(ContextualizedPipeline::default()),
        );
        session.step();
        let p = session.outputs().chosen_p.expect("contextualized pipeline reports p");
        assert!(crate::config::ContextualizerConfig::default().p_grid.contains(&p));
    }

    #[test]
    fn contextualized_not_worse_than_standard_on_toy() {
        // The toy generator plants strong locality (flip_prob 0.3), where
        // contextualization is designed to help. Averaged over seeds it
        // should not lose to the standard pipeline.
        let ds = toy_text(3);
        let mut std_sum = 0.0;
        let mut ctx_sum = 0.0;
        for seed in 0..3 {
            std_sum += run(&ds, Box::new(StandardPipeline), seed).summary();
            ctx_sum += run(&ds, Box::new(ContextualizedPipeline::default()), seed).summary();
        }
        assert!(ctx_sum >= std_sum - 0.03, "contextualized {ctx_sum:.3} vs standard {std_sum:.3}");
    }

    #[test]
    fn empty_lineage_outputs_prior() {
        let ds = toy_text(1);
        let mut pipeline = ContextualizedPipeline::default();
        let lineage = Lineage::new();
        let matrix = LabelMatrix::new(ds.train.n());
        let config = IdpConfig::default();
        let out = pipeline.learn(&lineage, &matrix, &ds, &config, 0);
        assert!(out.chosen_p.is_none());
        assert_eq!(out.train_probs.len(), ds.train.n());
    }

    #[test]
    fn end_model_outputs_prior_when_uncovered() {
        let ds = toy_text(1);
        let posterior = Posterior::from_prior(ds.train.n(), ds.class_prior_pos);
        let out = end_model_outputs(posterior, &[], &ds, &IdpConfig::default(), 0, Some(50.0));
        assert_eq!(out.chosen_p, Some(50.0));
        assert!((out.train_probs[0] - ds.class_prior_pos).abs() < 1e-12);
    }
}

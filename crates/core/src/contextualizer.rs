//! The LF contextualizer (paper Sec. 4.3, Eq. 4).
//!
//! Exploits the data-to-LF lineage: each LF `λ_j` is refined to abstain on
//! examples farther than a radius `r_j` from its development data point,
//!
//! ```text
//! λ'_j(x) = λ_j(x)  if dist(x, x_{λ_j}) ≤ r_j   else abstain
//! ```
//!
//! with `r_j` the `p`-th percentile of the distances from `x_{λ_j}` to the
//! unlabeled pool, and `p` selected on the validation accuracy of the
//! resulting soft labels. Distances from each development point to the
//! training and validation splits are computed once per LF and cached —
//! refinement at any `p` is then a cheap filter.
//!
//! Registration is **batched**: all of a round's new LFs go through
//! [`Contextualizer::register_batch`], which computes every train/valid
//! distance vector in one pass over the feature matrices' inverted-index
//! engine ([`nemo_data::Features::point_to_all_many`]), partitioned over
//! the pivots in parallel. The per-LF naive path is selectable via
//! [`crate::config::DistanceBackend::Naive`] for differential testing;
//! both backends are bit-identical.

use crate::config::{
    ContextualizerConfig, DistanceBackend, PosteriorDedup, RefinementCaching, WarmStart,
};
use nemo_data::Dataset;
use nemo_labelmodel::{FittedLabelModel, LabelModel};
use nemo_lf::{LabelMatrix, LfColumn, Lineage, PrimitiveLf, TrackedLf};
use nemo_sparse::parallel::par_map_min;
use nemo_sparse::stats::percentile_of_sorted;
// lint: allow(determinism/hash-collections): dedup maps below are
// lookup-only (entry/or_insert); their iteration order is never observed.
use std::collections::HashMap;
use std::sync::Arc;

/// Result of percentile tuning: the chosen `p`, the refined training
/// matrix at that `p`, and the label model fitted to it.
pub struct TunedRefinement {
    /// Chosen percentile.
    pub p: f64,
    /// Refined training label matrix.
    pub train_matrix: LabelMatrix,
    /// Label model fitted on the refined matrix.
    pub fitted: Box<dyn FittedLabelModel>,
    /// Validation score (mean log-likelihood of the validation labels
    /// under the refined soft labels) achieved by the chosen `p`.
    pub valid_score: f64,
}

/// One `(grid point, LF)` slot of the cross-round refined-column cache:
/// the filtered train and valid columns, plus the key they were filtered
/// under — the radius (bitwise) and the raw train column's construction
/// token. Lineage is append-only, so for an existing LF neither component
/// moves between rounds and the slot stays valid until the caller changes
/// the grid or swaps the raw matrix. Columns are held as shared
/// [`Arc<LfColumn>`] handles: serving a slot into a grid matrix is an
/// `Arc` clone ([`LabelMatrix::push_shared`]) — a refcount bump, never a
/// vote memcpy.
struct RefinedEntry {
    /// `radius(j, p).to_bits()` at filter time.
    radius_bits: u64,
    /// [`LfColumn::token`] of the raw train column the train column was
    /// filtered from (the valid column's raw source is owned by the
    /// contextualizer and immutable, so it needs no key).
    raw_token: u64,
    train: Arc<LfColumn>,
    valid: Arc<LfColumn>,
}

/// Cumulative refined-column cache counters (bench accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineCacheStats {
    /// `(grid point, LF)` slots served from the cache.
    pub hits: usize,
    /// Slots whose own-slot key missed (cold slots, radius changes,
    /// raw-column changes — and every slot under
    /// [`RefinementCaching::Rebuild`]).
    pub refilters: usize,
    /// Of the `refilters`, slots recovered by sharing an *earlier grid
    /// slot's* cached columns (same LF, same radius bits, same raw token)
    /// instead of re-running the filter — duplicate grid percentiles and
    /// adjacent percentiles quantizing to the same radius cost a refcount
    /// bump, and equal columns across slots come out pointer-equal.
    pub cross_slot_reuses: usize,
    /// Columns handed to grid matrices as shared `Arc` clones (train and
    /// valid counted separately). On the incremental path **every**
    /// served column is shared — a warm round's matrix assembly performs
    /// zero per-column vote memcpys, which the CoW differential tests
    /// pin via `Arc::ptr_eq` across rounds.
    pub shared_serves: usize,
}

/// The contextualizer with per-LF distance caches.
pub struct Contextualizer {
    /// Configuration (distance function and percentile grid).
    pub config: ContextualizerConfig,
    train_dists: Vec<Vec<f64>>,
    train_sorted: Vec<Vec<f64>>,
    valid_dists: Vec<Vec<f64>>,
    raw_valid_cols: Vec<LfColumn>,
    /// Per-grid-point LF accuracies from the previous
    /// [`Contextualizer::tune_p`] round, the cross-round EM warm-start
    /// seeds under [`WarmStart::Warm`] (empty before the first round and
    /// under [`WarmStart::Cold`]).
    warm_accs: Vec<Vec<f64>>,
    /// Label-model fit iterations spent by `tune_p` so far (bench
    /// accounting; only iterative estimators report non-trivial counts).
    tune_fits: usize,
    /// Validation posterior predicts run by [`Contextualizer::tune_p`] so
    /// far — one per score equivalence class under
    /// [`PosteriorDedup::Class`], one per grid point under
    /// [`PosteriorDedup::PerPoint`] (bench accounting).
    tune_predicts: usize,
    /// Cross-round refined-column cache, `[grid slot][lf]`, lazily grown
    /// and revalidated per slot (see [`RefinementCaching`]).
    refined_cache: Vec<Vec<Option<RefinedEntry>>>,
    cache_stats: RefineCacheStats,
}

impl Contextualizer {
    /// Create an empty contextualizer.
    pub fn new(config: ContextualizerConfig) -> Self {
        Self {
            config,
            train_dists: Vec::new(),
            train_sorted: Vec::new(),
            valid_dists: Vec::new(),
            raw_valid_cols: Vec::new(),
            warm_accs: Vec::new(),
            tune_fits: 0,
            tune_predicts: 0,
            refined_cache: Vec::new(),
            cache_stats: RefineCacheStats::default(),
        }
    }

    /// Label-model fits performed by [`Contextualizer::tune_p`] so far.
    pub fn tune_fits(&self) -> usize {
        self.tune_fits
    }

    /// Validation posterior predicts performed by
    /// [`Contextualizer::tune_p`] so far. Under
    /// [`PosteriorDedup::Class`] grid points whose fits and refined
    /// validation matrices coincide share one predict, so this lags
    /// `rounds × p_grid.len()`; under [`PosteriorDedup::PerPoint`] it
    /// equals it (empty-validation rounds predict nothing either way).
    pub fn tune_predicts(&self) -> usize {
        self.tune_predicts
    }

    /// Cumulative refined-column cache hit/refilter counters (only the
    /// [`RefinementCaching::Incremental`] path records hits).
    pub fn refine_cache_stats(&self) -> RefineCacheStats {
        self.cache_stats
    }

    /// Drop cached refined columns for LFs with index `≥ from` at every
    /// grid point. The cache self-invalidates through its keys, so
    /// ordinary sessions never need this; it exists for state restoration
    /// (a checkpoint restored with [`Contextualizer::set_warm_seeds`] may
    /// reuse a contextualizer whose cache outlived the checkpoint) and
    /// for benches that re-measure the same warm round repeatedly.
    pub fn invalidate_refined_cache_from(&mut self, from: usize) {
        for slot in &mut self.refined_cache {
            slot.truncate(from);
        }
    }

    /// Per-grid-point warm-start seeds captured by the last
    /// [`Contextualizer::tune_p`] round (empty under
    /// [`WarmStart::Cold`]). Together with
    /// [`Contextualizer::set_warm_seeds`] this lets a session checkpoint
    /// and restore tuning state — and lets benches measure a single
    /// cross-round warm tune in isolation.
    pub fn warm_seeds(&self) -> &[Vec<f64>] {
        &self.warm_accs
    }

    /// Restore warm-start seeds (aligned with the percentile grid; entry
    /// lengths may lag the current LF count — fits pad with their
    /// initializer).
    pub fn set_warm_seeds(&mut self, seeds: Vec<Vec<f64>>) {
        self.warm_accs = seeds;
    }

    /// Number of LFs registered so far.
    pub fn n_registered(&self) -> usize {
        self.train_dists.len()
    }

    /// Register one LF with its development example, caching distances
    /// (a batch of one; see [`Contextualizer::register_batch`]).
    pub fn register(&mut self, lf: &PrimitiveLf, dev_example: u32, ds: &Dataset) {
        self.register_batch(&[TrackedLf { lf: *lf, dev_example, iteration: 0 }], ds);
    }

    /// Register a round's worth of LFs in one pass: every train and valid
    /// distance vector is computed by a single batched call into the
    /// configured distance engine, and the per-LF radius tables are sorted
    /// in the same parallel partitioning.
    pub fn register_batch(&mut self, recs: &[TrackedLf], ds: &Dataset) {
        if recs.is_empty() {
            return;
        }
        let dist = self.config.distance;
        let pivots: Vec<usize> = recs.iter().map(|r| r.dev_example as usize).collect();
        let (train_ds, valid_ds) = match self.config.backend {
            // The production engine takes the configured dense reduction
            // backend (a no-op for sparse-backed splits); the naive
            // reference path below stays fully scalar so there is exactly
            // one anchored reference implementation.
            DistanceBackend::Indexed => (
                ds.train.features.point_to_all_many_with(dist, self.config.dense_backend, &pivots),
                ds.train.features.point_to_other_many_with(
                    dist,
                    self.config.dense_backend,
                    &pivots,
                    &ds.valid.features,
                ),
            ),
            DistanceBackend::Naive => (
                pivots.iter().map(|&p| ds.train.features.point_to_all_naive(dist, p)).collect(),
                pivots
                    .iter()
                    .map(|&p| ds.train.features.point_to_other_naive(dist, p, &ds.valid.features))
                    .collect(),
            ),
        };
        let sorted: Vec<Vec<f64>> = par_map_min(&train_ds, 2, |_, d: &Vec<f64>| {
            let mut s = d.clone();
            // invariant: distances are finite — both kernels compute
            // sums/square roots of finite feature values, and
            // `Features` validates its buffers (finite norms) on import.
            s.sort_unstable_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            s
        });
        for ((rec, train_d), (valid_d, sorted_d)) in
            recs.iter().zip(train_ds).zip(valid_ds.into_iter().zip(sorted))
        {
            self.train_dists.push(train_d);
            self.train_sorted.push(sorted_d);
            self.valid_dists.push(valid_d);
            self.raw_valid_cols.push(LfColumn::from_lf(&rec.lf, &ds.valid.corpus));
        }
    }

    /// Register any lineage entries not yet cached (lineage is
    /// append-only, so indices stay aligned) — the batch entry point
    /// `Session`/`NemoSystem` reach through `ContextualizedPipeline`.
    pub fn sync(&mut self, lineage: &Lineage, ds: &Dataset) {
        self.register_batch(&lineage.tracked()[self.n_registered()..], ds);
    }

    /// Refinement radius `r_j` at percentile `p`.
    ///
    /// An LF registered against an **empty training split** has no
    /// reference distances to take a percentile of
    /// ([`nemo_sparse::stats::percentile_of_sorted`] asserts on empty
    /// input). The radius is *defined* as `+∞` there: with no distance
    /// information the contextualizer cannot justify shrinking coverage,
    /// so refinement degrades to the identity (every example is within
    /// radius) — consistent with the `p = 100` endpoint — instead of
    /// panicking deep inside the stats crate.
    pub fn radius(&self, j: usize, p: f64) -> f64 {
        let sorted = &self.train_sorted[j];
        if sorted.is_empty() {
            return f64::INFINITY;
        }
        percentile_of_sorted(sorted, p)
    }

    /// Refine LF `j`'s raw training column at percentile `p`.
    pub fn refine_train(&self, j: usize, p: f64, raw: &LfColumn) -> LfColumn {
        let r = self.radius(j, p);
        let d = &self.train_dists[j];
        raw.filtered(|i| d[i as usize] <= r)
    }

    /// Refine LF `j`'s validation column at percentile `p` (radius still
    /// computed from training distances, applied to validation examples).
    pub fn refine_valid(&self, j: usize, p: f64) -> LfColumn {
        let r = self.radius(j, p);
        let d = &self.valid_dists[j];
        self.raw_valid_cols[j].filtered(|i| d[i as usize] <= r)
    }

    /// Refined training matrix at percentile `p`.
    pub fn refined_train_matrix(&self, raw: &LabelMatrix, p: f64) -> LabelMatrix {
        // invariant: callers pass the matrix aligned with the lineage this
        // contextualizer was synced against (documented expert API).
        assert_eq!(raw.n_lfs(), self.n_registered(), "matrix/lineage mismatch");
        let mut out = LabelMatrix::new(raw.n_examples());
        for (j, col) in raw.columns().enumerate() {
            out.push(self.refine_train(j, p, col));
        }
        out
    }

    /// Refined validation matrix at percentile `p`.
    pub fn refined_valid_matrix(&self, p: f64, n_valid: usize) -> LabelMatrix {
        let mut out = LabelMatrix::new(n_valid);
        for j in 0..self.n_registered() {
            out.push(self.refine_valid(j, p));
        }
        out
    }

    /// The per-grid-point refined train and valid matrices `tune_p`
    /// consumes (one pair per entry of `config.p_grid`, in grid order).
    ///
    /// Under [`RefinementCaching::Incremental`] each `(grid point, LF)`
    /// column pair is served from the cross-round cache when its key —
    /// the radius bits and the raw train column's
    /// [`nemo_lf::LfColumn::token`] — matches, and refiltered (then
    /// re-cached) otherwise. Because lineage is append-only and an
    /// existing LF's distance table is frozen at registration, a warm
    /// round refilters only the newly registered LFs' columns: `O(grid)`
    /// filters instead of the rebuild path's `O(grid · lfs)`. Served
    /// columns are **shared handles** of the cached filter output
    /// (`Arc` clones via [`LabelMatrix::push_shared`] — `O(1)` per
    /// column, no vote memcpy), so both paths are bit-identical — the
    /// `refine_cache` differential suite and bench guard pin this, and
    /// the CoW suite additionally pins pointer identity across warm
    /// rounds.
    ///
    /// Under [`RefinementCaching::Rebuild`] every column is refiltered
    /// through [`Contextualizer::refined_train_matrix`] /
    /// [`Contextualizer::refined_valid_matrix`] (the reference path).
    pub fn refined_grid_matrices(
        &mut self,
        raw_train: &LabelMatrix,
        n_valid: usize,
    ) -> (Vec<LabelMatrix>, Vec<LabelMatrix>) {
        // invariant: same matrix/lineage alignment contract as
        // `refined_train_matrix`.
        assert_eq!(raw_train.n_lfs(), self.n_registered(), "matrix/lineage mismatch");
        let p_grid = self.config.p_grid.clone();
        if self.config.refinement == RefinementCaching::Rebuild {
            self.cache_stats.refilters += p_grid.len() * self.n_registered();
            let train = p_grid.iter().map(|&p| self.refined_train_matrix(raw_train, p)).collect();
            let valid = p_grid.iter().map(|&p| self.refined_valid_matrix(p, n_valid)).collect();
            return (train, valid);
        }

        // The grid is position-keyed: slot k caches whatever radius
        // p_grid[k] last produced, so a grown/shrunk grid resizes the
        // outer vec and an edited percentile invalidates through the
        // radius key alone.
        let n_lfs = self.n_registered();
        self.refined_cache.resize_with(p_grid.len(), Vec::new);
        let mut train_out = Vec::with_capacity(p_grid.len());
        let mut valid_out = Vec::with_capacity(p_grid.len());
        for (k, &p) in p_grid.iter().enumerate() {
            let mut train_m = LabelMatrix::new(raw_train.n_examples());
            let mut valid_m = LabelMatrix::new(n_valid);
            for j in 0..n_lfs {
                let r = self.radius(j, p);
                let raw = raw_train.column(j);
                if self.refined_cache[k].len() <= j {
                    self.refined_cache[k].resize_with(n_lfs, || None);
                }
                let fresh = matches!(
                    &self.refined_cache[k][j],
                    Some(e) if e.radius_bits == r.to_bits() && e.raw_token == raw.token()
                );
                if fresh {
                    self.cache_stats.hits += 1;
                } else {
                    self.cache_stats.refilters += 1;
                    // Cross-slot reuse: an earlier grid slot that filtered
                    // the same raw column at the same radius already holds
                    // exactly this slot's columns — share its handles
                    // instead of filtering again. Stale sibling entries
                    // are skipped by the same key check as the own-slot
                    // test above.
                    let reused = self.refined_cache[..k].iter().find_map(|slot| {
                        slot.get(j)
                            .and_then(Option::as_ref)
                            .filter(|e| e.radius_bits == r.to_bits() && e.raw_token == raw.token())
                            .map(|e| (Arc::clone(&e.train), Arc::clone(&e.valid)))
                    });
                    let (train, valid) = match reused {
                        Some(pair) => {
                            self.cache_stats.cross_slot_reuses += 1;
                            pair
                        }
                        None => {
                            let train = {
                                let d = &self.train_dists[j];
                                raw.filtered(|i| d[i as usize] <= r)
                            };
                            let valid = {
                                let d = &self.valid_dists[j];
                                self.raw_valid_cols[j].filtered(|i| d[i as usize] <= r)
                            };
                            (Arc::new(train), Arc::new(valid))
                        }
                    };
                    self.refined_cache[k][j] = Some(RefinedEntry {
                        radius_bits: r.to_bits(),
                        raw_token: raw.token(),
                        train,
                        valid,
                    });
                }
                // Serve by handle: a refcount bump per column, never a
                // vote memcpy — warm rounds assemble every grid matrix
                // in O(1) per column.
                // invariant: the miss branch directly above filled
                // this slot before falling through.
                let entry = self.refined_cache[k][j].as_ref().expect("slot populated above");
                train_m.push_shared(Arc::clone(&entry.train));
                valid_m.push_shared(Arc::clone(&entry.valid));
                self.cache_stats.shared_serves += 2;
            }
            train_out.push(train_m);
            valid_out.push(valid_m);
        }
        (train_out, valid_out)
    }

    /// Select `p` from the grid by the validation quality of the
    /// resulting soft labels (paper Sec. 4.3).
    ///
    /// Quality is the mean log-likelihood of the validation labels under
    /// the soft labels, over *all* validation examples (uncovered ones
    /// receive the class prior). A proper scoring rule is the right
    /// objective here because refinement trades coverage for precision:
    /// scoring only covered examples rewards ever-smaller, ever-purer
    /// coverage (over-refining), while hard-label accuracy over everything
    /// is swamped by the prior fill-in and degenerates to never refining.
    /// Log-likelihood credits exactly the quantity the downstream end
    /// model consumes — how much better than the prior the soft labels
    /// are, weighted by how many examples enjoy that improvement. The
    /// grid is scanned in order with `>=`, so among genuine ties the
    /// largest percentile (widest coverage) wins. When the validation
    /// split is **empty** every score is vacuously zero and no signal
    /// exists to certify any refinement, so the widest-coverage tie-break
    /// is applied explicitly: the largest percentile in the grid is
    /// selected regardless of grid order, with `valid_score = 0.0`.
    ///
    /// Under [`WarmStart::Warm`] (the default) each grid point's label
    /// model is fitted via [`LabelModel::fit_from`], seeded from the
    /// parameters fitted *at the same grid point one round earlier* —
    /// between rounds the refined matrix at a fixed `p` gains one LF and
    /// barely moves, so a converged previous fit is a typically
    /// near-fixed-point seed (the Snorkel-style incremental-refit
    /// insight). Because the seeds are per-point, the grid's fits are
    /// mutually independent and run **in parallel**, so a warm round's
    /// wall-clock is one fit, not four (mirroring how
    /// [`crate::config::DistanceBackend::Indexed`] pairs the batched
    /// parallel production path against the sequential reference).
    /// Points without a stored seed (the first round, or a grown grid)
    /// fit from the estimator's initializer; closed-form estimators
    /// ignore seeds entirely. [`WarmStart::Cold`] is the sequential
    /// cold-restart reference, bit-compatible with the pre-incremental
    /// behaviour.
    ///
    /// Scoring is deduplicated the same way fitting is: grid points
    /// whose fits resolved identical *and* whose refined validation
    /// matrices are content-equal form a **score equivalence class**,
    /// and under [`PosteriorDedup::Class`] (the default) only one
    /// posterior predict + log-likelihood runs per class — bitwise the
    /// score every member would have computed
    /// ([`nemo_labelmodel::FittedLabelModel::score_log_likelihood`]).
    /// [`PosteriorDedup::PerPoint`] keeps the per-grid-point reference.
    ///
    /// On well-conditioned matrices warm and cold fits converge to the
    /// same fixed point within the EM tolerance, and the differential
    /// suites pin parameter agreement plus end-to-end selection
    /// agreement there. On weakly-identified matrices (a few LFs with a
    /// handful of refined votes) the EM likelihood is genuinely
    /// multimodal: a cold restart re-picks its basin from the fixed
    /// initializer every round, while warm seeding *tracks the incumbent
    /// basin* across rounds — a deliberate semantic choice (measured to
    /// retain a better-scoring mode than the cold restart on such
    /// matrices), selectable away via [`WarmStart::Cold`].
    pub fn tune_p(
        &mut self,
        raw_train: &LabelMatrix,
        ds: &Dataset,
        label_model: &dyn LabelModel,
        prior: [f64; 2],
    ) -> TunedRefinement {
        // invariant: an empty grid is a construction-time configuration
        // bug, not a runtime state; documented panic.
        assert!(!self.config.p_grid.is_empty(), "empty percentile grid");
        let warm = self.config.warm_start == WarmStart::Warm;
        let dedup_scores = self.config.posterior_dedup == PosteriorDedup::Class;
        let p_grid = self.config.p_grid.clone();

        // Refined matrix per grid point — served from the cross-round
        // refined-column cache under `RefinementCaching::Incremental` —
        // then dedup: when adjacent percentiles quantize to the same
        // refined matrix (no distance falls between the radii), the
        // representative's fit is rebuilt from its accuracies instead of
        // refitting — both a redundant-fit saving and the guarantee that
        // identical matrices score with *identical* parameters, so the
        // `>=` tie-break below resolves the same way under warm and cold
        // fits. (All estimators in this workspace aggregate through
        // `NaiveBayesFit`, whose construction from the clamped accuracies
        // is bitwise idempotent.)
        //
        // Equivalence classes are discovered by **hashing coverage
        // signatures**, not by the historical pairwise
        // `O(grid² · coverage)` matrix compare. For a fixed LF `j` every
        // grid point filters the *same* raw column by `d_j(i) ≤ r`, and
        // those kept-sets are nested across radii (monotone in `r`), so
        // two grid points keep identical column content iff they keep the
        // *same number* of entries — the per-column `coverage()` (an O(1)
        // stored length) is a sound and complete equality witness. A
        // slot's signature is its per-LF coverage vector; first occurrence
        // in the hash map is the class representative, matching the old
        // scan's first-earlier-equal semantics. This is `O(grid · lfs)`
        // and — unlike hashing the radius bits — still unifies *distinct*
        // radii that quantize to the same refined matrix, the common case
        // the dedup exists for.
        let (mut matrices, valid_matrices) = self.refined_grid_matrices(raw_train, ds.valid.n());
        let repr: Vec<usize> = {
            // lint: allow(determinism/hash-collections): entry/or_insert
            // keyed dedup; results read via lookups in grid order, the
            // map itself is never iterated.
            let mut first_of: HashMap<Vec<usize>, usize> = HashMap::with_capacity(matrices.len());
            matrices
                .iter()
                .enumerate()
                .map(|(k, m)| {
                    let sig: Vec<usize> = m.columns().map(LfColumn::coverage).collect();
                    *first_of.entry(sig).or_insert(k)
                })
                .collect()
        };
        let unique: Vec<usize> =
            repr.iter().enumerate().filter(|&(k, &r)| r == k).map(|(k, _)| k).collect();
        self.tune_fits += unique.len();

        // Fit the unique grid points. The warm path runs them in
        // parallel — cross-round seeding leaves the fits independent —
        // while the cold path keeps the sequential reference loop
        // (bit-compatible with the pre-incremental behaviour).
        let unique_fits: Vec<Box<dyn FittedLabelModel>> = if warm {
            let seeds = &self.warm_accs;
            nemo_sparse::parallel::par_map_min(&unique, 2, |_, &k| {
                label_model.fit_from(&matrices[k], prior, seeds.get(k).map(Vec::as_slice))
            })
        } else {
            unique.iter().map(|&k| label_model.fit(&matrices[k], prior)).collect()
        };
        let mut fitted: Vec<Option<Box<dyn FittedLabelModel>>> =
            (0..p_grid.len()).map(|_| None).collect();
        let mut accs_by_k: Vec<Vec<f64>> = vec![Vec::new(); p_grid.len()];
        for (&k, fit) in unique.iter().zip(unique_fits) {
            accs_by_k[k] = fit.lf_accuracies().to_vec();
            fitted[k] = Some(fit);
        }
        for k in 0..p_grid.len() {
            if repr[k] != k {
                accs_by_k[k] = accs_by_k[repr[k]].clone();
                fitted[k] = Some(Box::new(nemo_labelmodel::NaiveBayesFit::new(
                    accs_by_k[k].clone(),
                    prior,
                )));
            }
        }

        // Score equivalence classes: grid points with the same train-side
        // representative carry bitwise-equal fitted parameters (the
        // non-representatives' fits are *rebuilt from* the
        // representative's accuracies above), so whenever their refined
        // validation matrices are also content-equal, a posterior predict
        // at either point runs the identical float program — the class
        // representative's score IS every member's score, bit for bit.
        // Under [`PosteriorDedup::Class`] each grid point therefore maps
        // to the first earlier point with the same fit and an equal
        // validation matrix, and only class representatives predict;
        // [`PosteriorDedup::PerPoint`] keeps the one-predict-per-point
        // reference behaviour. `tests/matrix_cow_differential.rs` pins
        // bitwise score and selection agreement between the two.
        //
        // Validation-matrix equality is again witnessed by coverage
        // signatures (the valid-side kept-sets are filtered from the same
        // raw valid column by the same nested radii, so the monotone
        // argument above applies verbatim), keyed together with the
        // train-side representative: `O(grid · lfs)` instead of the
        // pairwise `O(grid² · coverage)` scan, and still catching two
        // slots whose *different* radii quantize to equal matrices.
        let score_repr: Vec<usize> = if !dedup_scores {
            (0..p_grid.len()).collect()
        } else {
            // lint: allow(determinism/hash-collections): keyed dedup,
            // read via lookups in grid order; never iterated.
            let mut first_of: HashMap<(usize, Vec<usize>), usize> =
                HashMap::with_capacity(p_grid.len());
            valid_matrices
                .iter()
                .enumerate()
                .map(|(k, m)| {
                    let sig: Vec<usize> = m.columns().map(LfColumn::coverage).collect();
                    *first_of.entry((repr[k], sig)).or_insert(k)
                })
                .collect()
        };

        // Degenerate case: with an **empty validation split** every grid
        // point's mean log-likelihood is vacuously zero, and the `>=`
        // scan would silently select whatever percentile happens to sit
        // last in the grid. With no validation signal the principled
        // choice is to not refine at all — refinement trades coverage for
        // a precision gain that nothing can certify — so the tie-break is
        // made explicit: the *largest* percentile in the grid (widest
        // coverage) wins regardless of grid order, with the vacuous score
        // of 0.0 reported. `tests/refine_cache_differential.rs` pins this
        // against a deliberately unsorted grid. No posterior is predicted
        // on an empty split under either dedup mode.
        let widest_k = if ds.valid.n() == 0 {
            let mut k_best = 0;
            for (k, &p) in p_grid.iter().enumerate() {
                if p > p_grid[k_best] {
                    k_best = k;
                }
            }
            Some(k_best)
        } else {
            None
        };

        // Score once per class representative, then select with the same
        // `>=` scan as ever: among genuine ties the largest grid index
        // (and with a sorted grid, the widest coverage) wins.
        let mut scores = vec![0.0f64; p_grid.len()];
        if widest_k.is_none() {
            for k in 0..p_grid.len() {
                if score_repr[k] == k {
                    // invariant: every grid point was fitted (or aliased
                    // to a fitted representative) in the loop above.
                    let fit = fitted[k].as_ref().expect("fitted");
                    self.tune_predicts += 1;
                    scores[k] = fit.score_log_likelihood(&valid_matrices[k], &ds.valid.labels);
                } else {
                    scores[k] = scores[score_repr[k]];
                }
            }
        }
        let best_k = match widest_k {
            Some(k_best) => k_best,
            None => {
                let mut k_best = 0;
                let mut best_score = f64::NEG_INFINITY;
                for (k, &s) in scores.iter().enumerate() {
                    if s >= best_score {
                        best_score = s;
                        k_best = k;
                    }
                }
                k_best
            }
        };
        if warm {
            self.warm_accs = accs_by_k;
        }
        TunedRefinement {
            p: p_grid[best_k],
            train_matrix: matrices.swap_remove(best_k),
            // invariant: `best_k` indexes a fitted representative —
            // ties resolve to fitted slots and no take() precedes this.
            fitted: fitted[best_k].take().expect("fitted"),
            valid_score: scores[best_k],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ContextualizerConfig;
    use nemo_data::catalog::toy_text;
    use nemo_labelmodel::GenerativeModel;
    use nemo_lf::Label;
    use nemo_sparse::DetRng;

    /// Register a handful of simulated-user LFs on the toy dataset.
    fn setup(ds: &Dataset, n_lfs: usize, seed: u64) -> (Contextualizer, LabelMatrix, Lineage) {
        use crate::oracle::{SimulatedUser, User};
        let mut rng = DetRng::new(seed);
        let mut user = SimulatedUser::default();
        let mut lineage = Lineage::new();
        let mut matrix = LabelMatrix::new(ds.train.n());
        let mut x = 0usize;
        while lineage.len() < n_lfs {
            if let Some(lf) = user.provide_lf(x, ds, &mut rng) {
                lineage.record(lf, x as u32, lineage.len() as u32);
                matrix.push(LfColumn::from_lf(&lf, &ds.train.corpus));
            }
            x += 7; // stride through the pool
        }
        let mut ctx = Contextualizer::new(ContextualizerConfig::default());
        ctx.sync(&lineage, ds);
        (ctx, matrix, lineage)
    }

    #[test]
    fn refinement_is_subset_of_raw() {
        let ds = toy_text(1);
        let (ctx, matrix, _) = setup(&ds, 5, 1);
        for (j, raw) in matrix.columns().enumerate() {
            for &p in &[25.0, 50.0, 75.0] {
                let refined = ctx.refine_train(j, p, raw);
                assert!(refined.coverage() <= raw.coverage());
                for &(i, v) in refined.entries() {
                    assert_eq!(raw.vote(i), v, "refined entry must come from raw");
                }
            }
        }
    }

    #[test]
    fn coverage_monotone_in_p() {
        let ds = toy_text(1);
        let (ctx, matrix, _) = setup(&ds, 5, 2);
        for (j, raw) in matrix.columns().enumerate() {
            let mut prev = 0usize;
            for &p in &[10.0, 30.0, 50.0, 70.0, 90.0, 100.0] {
                let cov = ctx.refine_train(j, p, raw).coverage();
                assert!(cov >= prev, "coverage must grow with p");
                prev = cov;
            }
        }
    }

    #[test]
    fn p100_keeps_everything() {
        let ds = toy_text(1);
        let (ctx, matrix, _) = setup(&ds, 5, 3);
        for (j, raw) in matrix.columns().enumerate() {
            let refined = ctx.refine_train(j, 100.0, raw);
            assert_eq!(refined.coverage(), raw.coverage());
        }
    }

    #[test]
    fn refinement_improves_lf_accuracy_on_toy() {
        // The planted structure guarantees LFs are most accurate near
        // their dev point; refining at p=50 should (on average) raise
        // accuracy over the raw LF.
        let ds = toy_text(1);
        let (ctx, matrix, lineage) = setup(&ds, 12, 4);
        let acc_of = |col: &LfColumn| -> Option<f64> {
            if col.coverage() == 0 {
                return None;
            }
            let correct = col
                .entries()
                .iter()
                .filter(|&&(i, v)| Label::from_sign(v) == Some(ds.train.labels[i as usize]))
                .count();
            Some(correct as f64 / col.coverage() as f64)
        };
        let (mut raw_sum, mut ref_sum, mut n) = (0.0, 0.0, 0);
        for (j, raw) in matrix.columns().enumerate() {
            let refined = ctx.refine_train(j, 50.0, raw);
            if let (Some(ra), Some(fa)) = (acc_of(raw), acc_of(&refined)) {
                raw_sum += ra;
                ref_sum += fa;
                n += 1;
            }
        }
        assert!(n >= 8, "need enough refinable LFs, got {n}");
        let _ = lineage;
        assert!(
            ref_sum / n as f64 >= raw_sum / n as f64 - 0.02,
            "refined mean accuracy {:.3} should not fall below raw {:.3}",
            ref_sum / n as f64,
            raw_sum / n as f64
        );
    }

    #[test]
    fn tune_p_returns_grid_member() {
        let ds = toy_text(1);
        let (mut ctx, matrix, _) = setup(&ds, 8, 5);
        let tuned = ctx.tune_p(&matrix, &ds, &GenerativeModel::default(), ds.prior());
        assert!(ctx.config.p_grid.contains(&tuned.p));
        // Mean log-likelihood of binary labels is negative and finite.
        assert!(tuned.valid_score <= 0.0 && tuned.valid_score.is_finite());
        assert_eq!(tuned.train_matrix.n_lfs(), matrix.n_lfs());
        assert_eq!(ctx.tune_fits(), ctx.config.p_grid.len());
    }

    #[test]
    fn warm_and_cold_tuning_choose_the_same_percentile() {
        // Warm-started EM converges to the cold fixed point within
        // tolerance, so repeated tuning rounds must pick the same `p` and
        // score within fp noise of the cold path.
        let ds = toy_text(1);
        let (mut warm_ctx, matrix, lineage) = setup(&ds, 8, 12);
        let cold_cfg = ContextualizerConfig {
            warm_start: crate::config::WarmStart::Cold,
            ..Default::default()
        };
        let mut cold_ctx = Contextualizer::new(cold_cfg);
        cold_ctx.sync(&lineage, &ds);
        let model = GenerativeModel::default();
        for _round in 0..3 {
            let warm = warm_ctx.tune_p(&matrix, &ds, &model, ds.prior());
            let cold = cold_ctx.tune_p(&matrix, &ds, &model, ds.prior());
            assert_eq!(warm.p, cold.p, "tuned percentile diverged");
            assert!(
                (warm.valid_score - cold.valid_score).abs() < 1e-4,
                "scores diverged: warm {} vs cold {}",
                warm.valid_score,
                cold.valid_score
            );
        }
    }

    #[test]
    fn batched_indexed_and_per_lf_naive_backends_identical() {
        use crate::config::DistanceBackend;
        let ds = toy_text(1);
        let (_, _, lineage) = setup(&ds, 6, 9);
        let mut batched = Contextualizer::new(ContextualizerConfig::default());
        batched.sync(&lineage, &ds);
        let naive_cfg =
            ContextualizerConfig { backend: DistanceBackend::Naive, ..Default::default() };
        let mut per_lf = Contextualizer::new(naive_cfg);
        for rec in lineage.tracked() {
            per_lf.register(&rec.lf, rec.dev_example, &ds);
        }
        assert_eq!(batched.n_registered(), per_lf.n_registered());
        for j in 0..batched.n_registered() {
            // Bit-identical caches, not just close: the indexed kernel
            // performs the same float operations as the row-major scan.
            assert_eq!(batched.train_dists[j], per_lf.train_dists[j], "train dists j={j}");
            assert_eq!(batched.valid_dists[j], per_lf.valid_dists[j], "valid dists j={j}");
            assert_eq!(batched.train_sorted[j], per_lf.train_sorted[j], "sorted j={j}");
            for &p in &[0.0, 25.0, 50.0, 100.0] {
                assert_eq!(batched.radius(j, p), per_lf.radius(j, p), "radius j={j} p={p}");
            }
        }
    }

    #[test]
    fn radius_defined_for_empty_train_split() {
        // An LF whose training split is empty has no reference distances;
        // the radius must be a *defined* +∞ (refinement = identity), not
        // a panic inside `percentile_of_sorted` (the pre-fix behaviour).
        let mut ctx = Contextualizer::new(ContextualizerConfig::default());
        ctx.train_dists.push(Vec::new());
        ctx.train_sorted.push(Vec::new());
        ctx.valid_dists.push(vec![0.1, 0.7]);
        ctx.raw_valid_cols.push(LfColumn::new(vec![(0, 1), (1, -1)]));
        for &p in &[0.0, 50.0, 100.0] {
            assert_eq!(ctx.radius(0, p), f64::INFINITY, "p={p}");
        }
        // With the identity radius, validation refinement keeps the raw
        // column untouched and training refinement of the (necessarily
        // empty) raw column stays empty.
        assert_eq!(ctx.refine_valid(0, 50.0).entries(), ctx.raw_valid_cols[0].entries());
        assert_eq!(ctx.refine_train(0, 50.0, &LfColumn::empty()).coverage(), 0);
    }

    #[test]
    fn refined_grid_matrices_cache_is_bit_identical_to_rebuild() {
        use crate::config::RefinementCaching;
        let ds = toy_text(1);
        let (_, matrix, lineage) = setup(&ds, 6, 21);
        let mut incr = Contextualizer::new(ContextualizerConfig::default());
        incr.sync(&lineage, &ds);
        let mut rebuild = Contextualizer::new(ContextualizerConfig {
            refinement: RefinementCaching::Rebuild,
            ..Default::default()
        });
        rebuild.sync(&lineage, &ds);
        // Two rounds: a cold fill and a fully warm round.
        for round in 0..2 {
            let (ti, vi) = incr.refined_grid_matrices(&matrix, ds.valid.n());
            let (tr, vr) = rebuild.refined_grid_matrices(&matrix, ds.valid.n());
            for (k, ((a, b), (c, d))) in ti.iter().zip(&tr).zip(vi.iter().zip(&vr)).enumerate() {
                for j in 0..a.n_lfs() {
                    assert_eq!(
                        a.column(j).entries(),
                        b.column(j).entries(),
                        "train round {round} k={k} j={j}"
                    );
                    assert_eq!(
                        c.column(j).entries(),
                        d.column(j).entries(),
                        "valid round {round} k={k} j={j}"
                    );
                }
            }
        }
        let stats = incr.refine_cache_stats();
        let slots = incr.config.p_grid.len() * 6;
        assert_eq!(stats.refilters, slots, "cold round filters every slot exactly once");
        assert_eq!(stats.hits, slots, "warm round must serve every slot from the cache");
    }

    #[test]
    fn warm_round_refilters_only_new_lfs() {
        let ds = toy_text(1);
        let (_, matrix, lineage) = setup(&ds, 6, 22);
        let grid = ContextualizerConfig::default().p_grid.len();
        let mut ctx = Contextualizer::new(ContextualizerConfig::default());
        // Register and refine the first 5 LFs, then grow the lineage by
        // one: only the new LF's (grid) columns may be refiltered.
        ctx.register_batch(&lineage.tracked()[..5], &ds);
        let prefix = {
            let mut m = LabelMatrix::new(matrix.n_examples());
            for j in 0..5 {
                m.push(matrix.column(j).clone());
            }
            m
        };
        ctx.refined_grid_matrices(&prefix, ds.valid.n());
        let cold = ctx.refine_cache_stats();
        assert_eq!(cold.refilters, grid * 5);
        ctx.sync(&lineage, &ds);
        ctx.refined_grid_matrices(&matrix, ds.valid.n());
        let warm = ctx.refine_cache_stats();
        assert_eq!(warm.refilters - cold.refilters, grid, "one refilter per grid point");
        assert_eq!(warm.hits, grid * 5, "all previously cached columns reused");
    }

    #[test]
    fn warm_round_grid_assembly_is_zero_copy() {
        // After the cold fill, a warm round must (a) refilter nothing,
        // (b) serve every column as a shared handle, and (c) hand out the
        // *same* vote buffers as the previous round — pointer identity is
        // the proof that assembly performed zero per-column memcpys.
        let ds = toy_text(1);
        let (mut ctx, matrix, _) = setup(&ds, 6, 31);
        let slots = ctx.config.p_grid.len() * 6;
        let (t1, v1) = ctx.refined_grid_matrices(&matrix, ds.valid.n());
        let cold = ctx.refine_cache_stats();
        assert_eq!(cold.refilters, slots);
        assert_eq!(cold.shared_serves, 2 * slots, "every serve is a shared handle");
        let (t2, v2) = ctx.refined_grid_matrices(&matrix, ds.valid.n());
        let warm = ctx.refine_cache_stats();
        assert_eq!(warm.refilters, cold.refilters, "warm round must not rebuild any column");
        assert_eq!(warm.shared_serves - cold.shared_serves, 2 * slots);
        for k in 0..t1.len() {
            assert_eq!(t1[k].shared_columns_with(&t2[k]), 6, "train k={k} must be pointer-shared");
            assert_eq!(v1[k].shared_columns_with(&v2[k]), 6, "valid k={k} must be pointer-shared");
            for j in 0..6 {
                assert!(
                    std::sync::Arc::ptr_eq(t1[k].shared_column(j), t2[k].shared_column(j)),
                    "train k={k} j={j} was deep-copied"
                );
            }
        }
    }

    #[test]
    fn class_and_per_point_scoring_agree_bitwise() {
        let ds = toy_text(1);
        let (mut class_ctx, matrix, lineage) = setup(&ds, 8, 32);
        let mut pp_ctx = Contextualizer::new(ContextualizerConfig {
            posterior_dedup: crate::config::PosteriorDedup::PerPoint,
            ..Default::default()
        });
        pp_ctx.sync(&lineage, &ds);
        let model = GenerativeModel::default();
        for round in 0..3 {
            let a = class_ctx.tune_p(&matrix, &ds, &model, ds.prior());
            let b = pp_ctx.tune_p(&matrix, &ds, &model, ds.prior());
            assert_eq!(a.p, b.p, "round {round}: tuned percentile diverged");
            assert_eq!(
                a.valid_score.to_bits(),
                b.valid_score.to_bits(),
                "round {round}: score not bitwise identical"
            );
            assert_eq!(a.train_matrix, b.train_matrix, "round {round}: tuned matrix diverged");
        }
        let grid = class_ctx.config.p_grid.len();
        assert_eq!(pp_ctx.tune_predicts(), 3 * grid, "per-point predicts every grid point");
        assert!(
            class_ctx.tune_predicts() <= pp_ctx.tune_predicts(),
            "class dedup must never predict more often"
        );
    }

    #[test]
    fn duplicate_grid_points_share_one_predict() {
        // Duplicated percentiles refine to identical train AND valid
        // matrices, so they must collapse into one fit and one posterior
        // predict per round under the class path.
        let ds = toy_text(1);
        let (_, matrix, lineage) = setup(&ds, 5, 33);
        let mut ctx = Contextualizer::new(ContextualizerConfig {
            p_grid: vec![50.0, 50.0, 100.0, 100.0],
            ..Default::default()
        });
        ctx.sync(&lineage, &ds);
        let tuned = ctx.tune_p(&matrix, &ds, &GenerativeModel::default(), ds.prior());
        assert_eq!(ctx.tune_fits(), 2, "duplicate grid points must share fits");
        assert_eq!(ctx.tune_predicts(), 2, "duplicate grid points must share predicts");
        assert!(ctx.config.p_grid.contains(&tuned.p));
    }

    #[test]
    fn duplicate_grid_points_share_cached_columns() {
        // A duplicated percentile's slots miss their own-slot key on the
        // cold round (still counted as refilters) but must recover every
        // column from the earlier twin slot by handle — pointer-equal
        // columns, no second filter pass.
        let ds = toy_text(1);
        let (_, matrix, lineage) = setup(&ds, 5, 34);
        let mut ctx = Contextualizer::new(ContextualizerConfig {
            p_grid: vec![50.0, 50.0, 100.0],
            ..Default::default()
        });
        ctx.sync(&lineage, &ds);
        let (t, v) = ctx.refined_grid_matrices(&matrix, ds.valid.n());
        let stats = ctx.refine_cache_stats();
        assert_eq!(stats.refilters, 3 * 5, "cold round: every slot's own-slot key misses");
        assert!(
            stats.cross_slot_reuses >= 5,
            "duplicated grid point must reuse its sibling's columns, got {}",
            stats.cross_slot_reuses
        );
        for j in 0..5 {
            assert!(Arc::ptr_eq(t[0].shared_column(j), t[1].shared_column(j)), "train j={j}");
            assert!(Arc::ptr_eq(v[0].shared_column(j), v[1].shared_column(j)), "valid j={j}");
        }
    }

    #[test]
    fn invalidate_refined_cache_refilters_dropped_slots() {
        let ds = toy_text(1);
        let (mut ctx, matrix, _) = setup(&ds, 4, 23);
        let grid = ctx.config.p_grid.len();
        ctx.refined_grid_matrices(&matrix, ds.valid.n());
        ctx.invalidate_refined_cache_from(3);
        let before = ctx.refine_cache_stats();
        ctx.refined_grid_matrices(&matrix, ds.valid.n());
        let after = ctx.refine_cache_stats();
        assert_eq!(after.refilters - before.refilters, grid);
        assert_eq!(after.hits - before.hits, grid * 3);
    }

    #[test]
    fn sync_is_incremental_and_idempotent() {
        let ds = toy_text(1);
        let (mut ctx, _, lineage) = setup(&ds, 4, 6);
        assert_eq!(ctx.n_registered(), 4);
        ctx.sync(&lineage, &ds);
        assert_eq!(ctx.n_registered(), 4);
    }

    #[test]
    fn radius_monotone_in_p() {
        let ds = toy_text(1);
        let (ctx, _, _) = setup(&ds, 3, 7);
        for j in 0..3 {
            assert!(ctx.radius(j, 25.0) <= ctx.radius(j, 75.0));
            assert!(ctx.radius(j, 75.0) <= ctx.radius(j, 100.0));
        }
    }

    #[test]
    fn valid_refinement_uses_train_radius() {
        let ds = toy_text(1);
        let (ctx, _, _) = setup(&ds, 3, 8);
        // p = 0 gives the minimum train distance (0, the dev point itself),
        // so validation coverage at p=0 should be (near) empty.
        for j in 0..3 {
            let refined = ctx.refine_valid(j, 0.0);
            assert!(
                refined.coverage() <= ctx.raw_valid_cols[j].coverage(),
                "valid refinement must not grow coverage"
            );
        }
    }
}

//! Typed errors for the interactive protocol and checkpoint restoration.
//!
//! The interactive suggest/submit/skip protocol used to enforce its state
//! machine with panics; those misuse modes are reachable from the public
//! API (any frontend driving [`crate::NemoSystem`] out of order), so they
//! are reported as [`SessionError`] values instead. Panics remain only for
//! *internal* invariants that no sequence of public calls can violate —
//! each such site carries an `// invariant:` comment.
//!
//! [`RestoreError`] covers the second hostile surface: a
//! [`crate::checkpoint::SessionCheckpoint`] arriving from outside the
//! process (a persisted file, a network peer) whose fields may disagree
//! with the dataset it is being restored against. Restoration validates
//! every field and reports the first inconsistency instead of panicking —
//! or worse, building a session whose state silently disagrees with its
//! invariants.

use std::fmt;

/// Misuse of the interactive suggest/submit/skip protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// A selection was requested while a previous suggestion is still
    /// unresolved (awaiting submit or skip).
    SuggestionPending {
        /// The example reserved by the unresolved suggestion.
        pending: usize,
    },
    /// Submit or skip was called without a pending suggestion.
    NoPendingSuggestion,
    /// A submitted LF references a primitive outside the dataset's domain.
    PrimitiveOutOfDomain {
        /// The offending primitive id.
        z: u32,
        /// The dataset's primitive-domain size.
        n_primitives: usize,
    },
    /// The manual suggest/submit frontend was used with a selection
    /// engine that proposes LF candidates itself (e.g. IWS): such engines
    /// are driven round-by-round via
    /// [`crate::NemoSystem::step_with_user`] / `run_with_user`.
    EngineDriven {
        /// Name of the engine that rejected the manual frontend.
        engine: &'static str,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::SuggestionPending { pending } => {
                write!(f, "previous suggestion (example {pending}) not yet resolved")
            }
            SessionError::NoPendingSuggestion => {
                write!(f, "submit or skip without a pending suggestion")
            }
            SessionError::PrimitiveOutOfDomain { z, n_primitives } => {
                write!(f, "LF primitive {z} outside the domain (n_primitives = {n_primitives})")
            }
            SessionError::EngineDriven { engine } => {
                write!(
                    f,
                    "the `{engine}` selection engine proposes LF candidates itself; drive it \
                     with step_with_user/run_with_user, not the manual suggest/submit frontend"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A checkpoint that cannot be restored against the given dataset.
///
/// Every variant names the first field found inconsistent; restoration
/// never partially applies a bad checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// A per-example vector's length disagrees with the dataset split.
    LengthMismatch {
        /// The checkpoint field.
        field: &'static str,
        /// Length required by the dataset.
        expected: usize,
        /// Length found in the checkpoint.
        actual: usize,
    },
    /// A numeric field is non-finite or outside its documented range.
    ValueOutOfRange {
        /// The checkpoint field.
        field: &'static str,
    },
    /// A lineage record references a primitive or development example
    /// outside the dataset.
    LineageOutOfDomain {
        /// Index of the offending lineage record.
        lf: usize,
    },
    /// The number of persisted matrix columns disagrees with the lineage.
    ColumnArity {
        /// Columns required (one per lineage record).
        expected: usize,
        /// Columns found.
        actual: usize,
    },
    /// A persisted matrix column violates the vote-column invariants
    /// (sorted unique example ids, ±1 votes, ids within the split).
    MalformedColumn {
        /// Index of the offending column.
        lf: usize,
        /// Which invariant failed.
        reason: &'static str,
    },
    /// The pending suggestion is out of range or not marked excluded.
    InvalidPending,
    /// The persisted RNG state is the all-zero fixed point of
    /// xoshiro256++, which would freeze the generator.
    DegenerateRngState,
    /// The checkpoint's engine-state section does not match the
    /// [`crate::config::SelectionStrategy`] recorded in its config (e.g.
    /// an IWS answer log paired with `SelectionStrategy::Seu`), or its
    /// contents are inconsistent with the dataset's candidate family.
    EngineStateMismatch {
        /// Name of the engine the config selects.
        engine: &'static str,
        /// Which consistency check failed.
        reason: &'static str,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::LengthMismatch { field, expected, actual } => {
                write!(
                    f,
                    "checkpoint field `{field}` has length {actual}, dataset requires {expected}"
                )
            }
            RestoreError::ValueOutOfRange { field } => {
                write!(f, "checkpoint field `{field}` holds a non-finite or out-of-range value")
            }
            RestoreError::LineageOutOfDomain { lf } => {
                write!(f, "lineage record {lf} references data outside the dataset")
            }
            RestoreError::ColumnArity { expected, actual } => {
                write!(f, "checkpoint has {actual} matrix columns for {expected} lineage records")
            }
            RestoreError::MalformedColumn { lf, reason } => {
                write!(f, "matrix column {lf} is malformed: {reason}")
            }
            RestoreError::InvalidPending => {
                write!(f, "pending suggestion is out of range or not excluded from the pool")
            }
            RestoreError::DegenerateRngState => {
                write!(f, "persisted RNG state is the degenerate all-zero state")
            }
            RestoreError::EngineStateMismatch { engine, reason } => {
                write!(f, "engine state does not fit the `{engine}` selection engine: {reason}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_error_messages_name_the_misuse() {
        let s = SessionError::SuggestionPending { pending: 7 }.to_string();
        assert!(s.contains("not yet resolved"), "{s}");
        let s = SessionError::NoPendingSuggestion.to_string();
        assert!(s.contains("pending suggestion"), "{s}");
        let s = SessionError::PrimitiveOutOfDomain { z: 9, n_primitives: 4 }.to_string();
        assert!(s.contains("outside the domain"), "{s}");
    }

    #[test]
    fn restore_error_messages_name_the_field() {
        let e = RestoreError::LengthMismatch { field: "excluded", expected: 3, actual: 5 };
        assert!(e.to_string().contains("excluded"));
        assert!(RestoreError::DegenerateRngState.to_string().contains("all-zero"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SessionError::NoPendingSuggestion);
        takes_err(&RestoreError::InvalidPending);
    }
}

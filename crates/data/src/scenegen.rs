//! Visual-Genome-style scene generation (DESIGN.md §2, substitution 2).
//!
//! The paper's VG task classifies whether an image contains the visual
//! relationship "carrying" (here: positive) or "riding" (negative), using
//! the image's *object annotations* as LF primitives and pre-trained ResNet
//! embeddings as features. The substitute generates scenes as object-tag
//! sets drawn from the same cluster-mixture process the text generator uses
//! (clusters = scene contexts such as street/park/beach; indicators =
//! relation-correlated objects such as "horse" or "backpack"), and dense
//! "embedding-like" features = context-cluster centroid + small
//! label-direction offset + isotropic Gaussian noise.
//!
//! The decisive structural property is preserved: the primitive domain is
//! *decoupled* from the feature space (objects vs embeddings), so the
//! contextualizer must work with distances in a space it did not derive
//! the primitives from — exactly the VG configuration in the paper.

use crate::dataset::{Dataset, Features, Split};
use crate::mixture::{MixDoc, MixtureConfig, MixtureModel};
use nemo_lf::{Metric, PrimitiveCorpus};
use nemo_sparse::{DenseMatrix, DetRng};

/// Curated object names for relation-indicative objects (positive class =
/// "carrying").
pub const CARRY_OBJECTS: &[&str] = &[
    "bag",
    "backpack",
    "suitcase",
    "box",
    "tray",
    "basket",
    "umbrella",
    "groceries",
    "luggage",
    "purse",
    "bundle",
    "bucket",
    "jug",
    "crate",
    "parcel",
    "folder",
];

/// Curated object names for "riding"-indicative objects (negative class).
pub const RIDE_OBJECTS: &[&str] = &[
    "horse",
    "bicycle",
    "motorcycle",
    "skateboard",
    "surfboard",
    "elephant",
    "scooter",
    "wave",
    "saddle",
    "helmet",
    "carriage",
    "snowboard",
    "bus",
    "train",
    "camel",
    "wagon",
];

/// Specification of a synthetic scene dataset.
#[derive(Debug, Clone)]
pub struct SceneGenSpec {
    /// Display name.
    pub name: String,
    /// The object-mixture process (indicators = relation-correlated
    /// objects, backgrounds = context objects, shared = ubiquitous objects
    /// such as "person", "sky").
    pub mixture: MixtureConfig,
    /// Embedding dimensionality (the paper uses ResNet features; any
    /// moderate dimension preserves the geometry).
    pub feature_dim: usize,
    /// Scale of the label-direction offset relative to unit centroids.
    pub label_offset: f64,
    /// Isotropic noise standard deviation.
    pub noise_sigma: f64,
    /// Split sizes.
    pub n_train: usize,
    /// Validation size.
    pub n_valid: usize,
    /// Test size.
    pub n_test: usize,
    /// Primitive-domain df bounds `(min_df, max_df_frac)` over object
    /// tags (ubiquitous objects such as "person" make degenerate LFs).
    pub primitive_df_bounds: (usize, f64),
}

/// Generate a scene dataset. Deterministic in `seed`.
pub fn generate_scenes(spec: &SceneGenSpec, seed: u64) -> Dataset {
    let mut rng = DetRng::new(seed ^ 0x5ce9_e01d_83af_2b17);
    let model = MixtureModel::new(spec.mixture.clone(), &mut rng);
    let dim = spec.feature_dim;
    let k = spec.mixture.n_clusters;

    // Random unit centroid per context cluster + one global label direction.
    let mut geom_rng = rng.fork(0xfeed);
    let mut centroids = Vec::with_capacity(k);
    for _ in 0..k {
        let mut c: Vec<f32> = (0..dim).map(|_| geom_rng.gaussian() as f32).collect();
        let norm = (c.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()).sqrt().max(1e-9);
        for v in &mut c {
            *v = (*v as f64 / norm) as f32;
        }
        centroids.push(c);
    }
    let mut label_dir: Vec<f32> = (0..dim).map(|_| geom_rng.gaussian() as f32).collect();
    let norm = (label_dir.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()).sqrt().max(1e-9);
    for v in &mut label_dir {
        *v = (*v as f64 / norm) as f32;
    }

    let embed = |doc: &MixDoc, rng: &mut DetRng| -> Vec<f32> {
        let c = &centroids[doc.cluster as usize];
        let sign = doc.label.sign() as f64 * spec.label_offset;
        (0..dim)
            .map(|j| {
                (c[j] as f64 + sign * label_dir[j] as f64 + rng.gaussian() * spec.noise_sigma)
                    as f32
            })
            .collect()
    };

    let mut build = |n: usize, salt: u64| -> Split {
        let mut doc_rng = rng.fork(salt);
        let docs = model.sample_docs(n, &mut doc_rng);
        let mut feat_rng = rng.fork(salt ^ 0xabcd);
        let rows: Vec<Vec<f32>> = docs.iter().map(|d| embed(d, &mut feat_rng)).collect();
        let features = Features::from_dense(DenseMatrix::from_rows(&rows));
        let sets: Vec<Vec<u32>> = docs.iter().map(|d| d.tokens.clone()).collect();
        let corpus = PrimitiveCorpus::new(sets, model.vocab_size());
        Split {
            labels: docs.iter().map(|d| d.label).collect(),
            features,
            corpus,
            clusters: docs.iter().map(|d| d.cluster).collect(),
        }
    };

    let mut train = build(spec.n_train, 1);
    let mut valid = build(spec.n_valid, 2);
    let mut test = build(spec.n_test, 3);

    // Primitive-domain df filter computed on the training split.
    let mut df = vec![0usize; model.vocab_size()];
    for i in 0..train.n() {
        for &t in train.corpus.primitives_of(i) {
            df[t as usize] += 1;
        }
    }
    let (min_df, max_df_frac) = spec.primitive_df_bounds;
    let max_df = ((spec.n_train as f64) * max_df_frac).ceil() as usize;
    let refilter = |split: &mut Split| {
        let sets: Vec<Vec<u32>> = (0..split.n())
            .map(|i| {
                split
                    .corpus
                    .primitives_of(i)
                    .iter()
                    .copied()
                    .filter(|&t| df[t as usize] >= min_df && df[t as usize] <= max_df)
                    .collect()
            })
            .collect();
        split.corpus = PrimitiveCorpus::new(sets, model.vocab_size());
    };
    refilter(&mut train);
    refilter(&mut valid);
    refilter(&mut test);

    // Object display names: curated for indicators, synthetic otherwise.
    let mut names = Vec::with_capacity(model.vocab_size());
    let (mut n_pos, mut n_neg) = (0usize, 0usize);
    for t in 0..model.vocab_size() as u32 {
        if model.is_indicator(t) {
            let name = match model.indicator_base(t) {
                nemo_lf::Label::Pos => {
                    let i = n_pos;
                    n_pos += 1;
                    pick_name(CARRY_OBJECTS, i)
                }
                nemo_lf::Label::Neg => {
                    let i = n_neg;
                    n_neg += 1;
                    pick_name(RIDE_OBJECTS, i)
                }
            };
            names.push(name);
        } else {
            names.push(format!("obj_{}", model.token_name(t)));
        }
    }

    let class_prior_pos = valid.pos_frac();
    let ds = Dataset {
        name: spec.name.clone(),
        metric: Metric::Accuracy,
        train,
        valid,
        test,
        n_primitives: model.vocab_size(),
        primitive_names: names,
        // The paper uses no lexicon for VG; the primitive domain is the
        // object annotations themselves.
        lexicon: Vec::new(),
        class_prior_pos,
    };
    ds.validate();
    ds
}

fn pick_name(list: &[&str], idx: usize) -> String {
    if idx < list.len() {
        list[idx].to_string()
    } else {
        format!("{}{}", list[idx % list.len()], idx / list.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_sparse::Distance;

    fn tiny_spec() -> SceneGenSpec {
        SceneGenSpec {
            name: "TinyVG".into(),
            mixture: MixtureConfig {
                n_clusters: 3,
                n_shared: 25,
                n_background_per_cluster: 15,
                n_indicators: 12,
                indicator_tokens: (1, 2, 4),
                background_tokens: (2, 5, 9),
                shared_tokens: (1, 3, 6),
                ..MixtureConfig::default()
            },
            feature_dim: 16,
            label_offset: 0.25,
            noise_sigma: 0.35,
            n_train: 300,
            n_valid: 60,
            n_test: 60,
            primitive_df_bounds: (2, 0.5),
        }
    }

    #[test]
    fn builds_valid_dataset() {
        let ds = generate_scenes(&tiny_spec(), 5);
        ds.validate();
        assert_eq!(ds.train.n(), 300);
        assert!(ds.train.features.dense().is_some());
        assert_eq!(ds.train.features.dim(), 16);
        assert!(ds.lexicon.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_scenes(&tiny_spec(), 9);
        let b = generate_scenes(&tiny_spec(), 9);
        assert_eq!(a.train.labels, b.train.labels);
        let ra = a.train.features.dense().unwrap().row(0);
        let rb = b.train.features.dense().unwrap().row(0);
        assert_eq!(ra, rb);
    }

    #[test]
    fn same_cluster_scenes_are_closer_in_embedding_space() {
        let ds = generate_scenes(&tiny_spec(), 5);
        let d = ds.train.features.point_to_all(Distance::Euclidean, 0);
        let c0 = ds.train.clusters[0];
        let (mut same, mut diff) = (Vec::new(), Vec::new());
        for (i, &di) in d.iter().enumerate().skip(1) {
            if ds.train.clusters[i] == c0 {
                same.push(di);
            } else {
                diff.push(di);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&same) < mean(&diff));
    }

    #[test]
    fn object_names_curated_for_indicators() {
        let ds = generate_scenes(&tiny_spec(), 5);
        let model_like_curated =
            ds.primitive_names.iter().filter(|n| !n.starts_with("obj_")).count();
        assert_eq!(model_like_curated, 12); // n_indicators
    }

    #[test]
    fn label_signal_present_in_features() {
        // The mean projection onto (mu_pos - mu_neg) should separate
        // classes; verify class-conditional means differ.
        let ds = generate_scenes(&tiny_spec(), 5);
        let dense = ds.train.features.dense().unwrap();
        let dim = dense.n_cols();
        let mut mu = [vec![0.0f64; dim], vec![0.0f64; dim]];
        let mut counts = [0usize; 2];
        for i in 0..ds.train.n() {
            let li = ds.train.labels[i].index();
            counts[li] += 1;
            for (j, &v) in dense.row(i).iter().enumerate() {
                mu[li][j] += v as f64;
            }
        }
        let mut gap = 0.0;
        for (m1, m0) in mu[1].iter().zip(&mu[0]).take(dim) {
            let d = m1 / counts[1] as f64 - m0 / counts[0] as f64;
            gap += d * d;
        }
        assert!(gap.sqrt() > 0.2, "class-mean gap {}", gap.sqrt());
    }
}

//! # nemo-data
//!
//! Dataset substrate: the [`Dataset`]/[`Split`]/[`Features`] abstraction
//! plus the synthetic generators that substitute for the paper's six
//! evaluation datasets (Table 1). See DESIGN.md §2 for the substitution
//! rationale: the generators plant exactly the cluster-locality structure
//! (Figures 2–3, Example 1.1) that the paper's methods exploit.
//!
//! Layout:
//! - [`dataset`] — core types ([`Dataset`], [`Split`], [`Features`]).
//! - [`mixture`] — the shared cluster-mixture generative process.
//! - [`textgen`] — text datasets (sentiment & spam) through the full
//!   tokenize → vocab → TF-IDF pipeline.
//! - [`scenegen`] — Visual-Genome-like scenes: object-annotation
//!   primitives with dense embedding features.
//! - [`catalog`] — named dataset specs matching Table 1, with scale
//!   profiles for fast benchmarking.

#![warn(missing_docs)]

pub mod catalog;
pub mod dataset;
pub mod mixture;
pub mod scenegen;
pub mod textgen;

pub use catalog::{DatasetName, Profile};
pub use dataset::{Dataset, Features, Split};
pub use mixture::MixtureConfig;

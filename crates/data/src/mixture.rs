//! The shared cluster-mixture generative process.
//!
//! This is the statistical heart of the dataset substitution (DESIGN.md §2):
//! examples belong to latent clusters (product categories / topics / scene
//! contexts), and three token populations compose each example:
//!
//! 1. **Shared neutral tokens** — common across clusters, label-independent.
//! 2. **Cluster background tokens** — cluster-specific, label-independent.
//!    These give same-cluster examples small feature distance (the locality
//!    that Figure 2 measures and the contextualizer exploits).
//! 3. **Indicator tokens** — class-indicative, each with a *base polarity*
//!    and a *home cluster*. In its home cluster an indicator agrees with
//!    the example label with probability `agreement_home`; away from home
//!    it either attenuates (`agreement_away`) or — with probability
//!    `flip_prob` per (indicator, cluster) pair — *flips* ("funny" is
//!    positive for Movies, negative for Food; Example 1.1).
//!
//! Indicator sampling also favors home-cluster indicators by a factor of
//! `home_affinity`, giving keyword LFs the coverage locality of Figure 2
//! (left panel) in addition to the accuracy locality (right panel).

use nemo_lf::Label;
use nemo_sparse::DetRng;

/// Configuration of the cluster-mixture process.
#[derive(Debug, Clone)]
pub struct MixtureConfig {
    /// Number of latent clusters.
    pub n_clusters: usize,
    /// Cluster sampling weights; empty means uniform.
    pub cluster_weights: Vec<f64>,
    /// Shared neutral vocabulary size.
    pub n_shared: usize,
    /// Cluster-specific background vocabulary size (per cluster).
    pub n_background_per_cluster: usize,
    /// Number of class-indicative tokens.
    pub n_indicators: usize,
    /// Sampling-weight multiplier for indicators in their home cluster.
    pub home_affinity: f64,
    /// P(indicator agrees with example label) in its home cluster.
    pub agreement_home: f64,
    /// Agreement in non-home, non-flipped clusters.
    pub agreement_away: f64,
    /// Probability an (indicator, away-cluster) pair is polarity-flipped,
    /// i.e. agreement becomes `1 − agreement_home` there.
    pub flip_prob: f64,
    /// Class prior `P(y = +1)`.
    pub pos_prior: f64,
    /// (min, mean, max) indicator tokens per example.
    pub indicator_tokens: (usize, usize, usize),
    /// (min, mean, max) background tokens per example.
    pub background_tokens: (usize, usize, usize),
    /// (min, mean, max) shared tokens per example.
    pub shared_tokens: (usize, usize, usize),
    /// Probability of flipping the recorded label (irreducible noise).
    pub label_noise: f64,
    /// Zipf exponent for background/shared token draws (0 = uniform).
    ///
    /// Real text is Zipfian: a few frequent words appear in most
    /// documents, giving document pairs graded TF-IDF overlap. Uniform
    /// draws over a large vocabulary make almost every pair share *zero*
    /// tokens, which degenerates all cosine distances to exactly 1.0 and
    /// with them every distance-percentile the contextualizer relies on.
    pub zipf_exponent: f64,
}

impl Default for MixtureConfig {
    fn default() -> Self {
        Self {
            n_clusters: 4,
            cluster_weights: Vec::new(),
            n_shared: 400,
            n_background_per_cluster: 250,
            n_indicators: 120,
            home_affinity: 6.0,
            agreement_home: 0.9,
            agreement_away: 0.75,
            flip_prob: 0.25,
            pos_prior: 0.5,
            indicator_tokens: (1, 3, 6),
            background_tokens: (4, 10, 20),
            shared_tokens: (3, 8, 16),
            label_noise: 0.0,
            zipf_exponent: 1.0,
        }
    }
}

/// Cumulative Zipf weights over `n` ranks: weight of rank `r` is
/// `1 / (r + 1)^s`. Sampling is a uniform draw located by binary search.
fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for r in 0..n {
        total += 1.0 / ((r + 1) as f64).powf(s);
        cum.push(total);
    }
    cum
}

fn sample_cumulative(cum: &[f64], rng: &mut DetRng) -> usize {
    // invariant: callers build `cum` with at least one weight.
    let total = *cum.last().expect("non-empty cumulative table");
    let u = rng.uniform() * total;
    cum.partition_point(|&c| c < u).min(cum.len() - 1)
}

impl MixtureConfig {
    /// Total vocabulary size (shared + backgrounds + indicators).
    pub fn vocab_size(&self) -> usize {
        self.n_shared + self.n_clusters * self.n_background_per_cluster + self.n_indicators
    }

    /// First token id of the indicator block.
    pub fn indicator_offset(&self) -> usize {
        self.n_shared + self.n_clusters * self.n_background_per_cluster
    }
}

/// One generated example.
#[derive(Debug, Clone)]
pub struct MixDoc {
    /// Token ids (with multiplicity, shuffled).
    pub tokens: Vec<u32>,
    /// Ground-truth label.
    pub label: Label,
    /// Latent cluster.
    pub cluster: u32,
}

/// A materialized mixture model: config plus the sampled indicator table
/// (home clusters, base polarities, per-cluster effective agreements).
#[derive(Debug, Clone)]
pub struct MixtureModel {
    cfg: MixtureConfig,
    /// `home[i]` — home cluster of indicator `i`.
    home: Vec<u32>,
    /// `base[i]` — base polarity of indicator `i`.
    base: Vec<Label>,
    /// `agreement[i][k]` — P(indicator i agrees with label | cluster k).
    agreement: Vec<Vec<f64>>,
    /// Cumulative Zipf table for one background block.
    bg_cum: Vec<f64>,
    /// Cumulative Zipf table for the shared block.
    sh_cum: Vec<f64>,
}

impl MixtureModel {
    /// Materialize the indicator table from the config. Uses a dedicated
    /// RNG fork so that document sampling and table construction have
    /// independent streams.
    pub fn new(cfg: MixtureConfig, rng: &mut DetRng) -> Self {
        assert!(cfg.n_clusters >= 1, "need at least one cluster");
        assert!(
            cfg.cluster_weights.is_empty() || cfg.cluster_weights.len() == cfg.n_clusters,
            "cluster_weights length mismatch"
        );
        assert!((0.5..=1.0).contains(&cfg.agreement_home), "agreement_home in [0.5, 1]");
        assert!((0.0..=1.0).contains(&cfg.flip_prob));
        let mut table_rng = rng.fork(0x7A11);
        let n = cfg.n_indicators;
        let mut home = Vec::with_capacity(n);
        let mut base = Vec::with_capacity(n);
        let mut agreement = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin home clusters and alternating base polarity keep
            // the design balanced across clusters and classes.
            let h = (i % cfg.n_clusters) as u32;
            let b = if (i / cfg.n_clusters) % 2 == 0 { Label::Pos } else { Label::Neg };
            let mut agr = Vec::with_capacity(cfg.n_clusters);
            for k in 0..cfg.n_clusters {
                if k as u32 == h {
                    agr.push(cfg.agreement_home);
                } else if table_rng.bernoulli(cfg.flip_prob) {
                    agr.push(1.0 - cfg.agreement_home);
                } else {
                    agr.push(cfg.agreement_away);
                }
            }
            home.push(h);
            base.push(b);
            agreement.push(agr);
        }
        let bg_cum = zipf_cumulative(cfg.n_background_per_cluster, cfg.zipf_exponent);
        let sh_cum = zipf_cumulative(cfg.n_shared, cfg.zipf_exponent);
        Self { cfg, home, base, agreement, bg_cum, sh_cum }
    }

    /// The configuration.
    pub fn config(&self) -> &MixtureConfig {
        &self.cfg
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.cfg.vocab_size()
    }

    /// Whether token id `t` is an indicator.
    pub fn is_indicator(&self, t: u32) -> bool {
        (t as usize) >= self.cfg.indicator_offset()
    }

    /// Indicator index of token `t` (panics if not an indicator).
    fn indicator_idx(&self, t: u32) -> usize {
        let off = self.cfg.indicator_offset();
        assert!((t as usize) >= off, "token {t} is not an indicator");
        t as usize - off
    }

    /// Token id of indicator `i`.
    pub fn indicator_token(&self, i: usize) -> u32 {
        (self.cfg.indicator_offset() + i) as u32
    }

    /// Base polarity of indicator token `t`.
    pub fn indicator_base(&self, t: u32) -> Label {
        self.base[self.indicator_idx(t)]
    }

    /// Home cluster of indicator token `t`.
    pub fn indicator_home(&self, t: u32) -> u32 {
        self.home[self.indicator_idx(t)]
    }

    /// Effective agreement of indicator token `t` in cluster `k`.
    pub fn eff_agreement(&self, t: u32, k: u32) -> f64 {
        self.agreement[self.indicator_idx(t)][k as usize]
    }

    /// All indicator token ids (sorted): the dataset "lexicon".
    pub fn lexicon(&self) -> Vec<u32> {
        (0..self.cfg.n_indicators).map(|i| self.indicator_token(i)).collect()
    }

    /// Canonical synthetic name for a token id.
    pub fn token_name(&self, t: u32) -> String {
        let t = t as usize;
        let cfg = &self.cfg;
        if t < cfg.n_shared {
            format!("sh{t}")
        } else if t < cfg.indicator_offset() {
            let rel = t - cfg.n_shared;
            let k = rel / cfg.n_background_per_cluster;
            let i = rel % cfg.n_background_per_cluster;
            format!("bg{k}_{i}")
        } else {
            format!("ind{}", t - cfg.indicator_offset())
        }
    }

    /// Sample one example.
    pub fn sample_doc(&self, rng: &mut DetRng) -> MixDoc {
        let cfg = &self.cfg;
        let cluster = if cfg.cluster_weights.is_empty() {
            rng.index(cfg.n_clusters)
        } else {
            rng.choose_weighted(&cfg.cluster_weights)
        } as u32;
        let mut label = Label::from_bool(rng.bernoulli(cfg.pos_prior));

        let n_ind =
            rng.length(cfg.indicator_tokens.0, cfg.indicator_tokens.1, cfg.indicator_tokens.2);
        let n_bg =
            rng.length(cfg.background_tokens.0, cfg.background_tokens.1, cfg.background_tokens.2);
        let n_sh = rng.length(cfg.shared_tokens.0, cfg.shared_tokens.1, cfg.shared_tokens.2);

        let mut tokens: Vec<u32> = Vec::with_capacity(n_ind + n_bg + n_sh);

        // Indicator tokens: weight = affinity(home) × label-agreement factor.
        if cfg.n_indicators > 0 && n_ind > 0 {
            let weights: Vec<f64> = (0..cfg.n_indicators)
                .map(|i| {
                    let aff = if self.home[i] == cluster { cfg.home_affinity } else { 1.0 };
                    let agr = self.agreement[i][cluster as usize];
                    let match_prob = if self.base[i] == label { agr } else { 1.0 - agr };
                    aff * match_prob
                })
                .collect();
            for _ in 0..n_ind {
                let i = rng.choose_weighted(&weights);
                tokens.push(self.indicator_token(i));
            }
        }

        // Cluster background tokens (Zipf-weighted ranks).
        if cfg.n_background_per_cluster > 0 {
            let bg_off = cfg.n_shared + cluster as usize * cfg.n_background_per_cluster;
            for _ in 0..n_bg {
                tokens.push((bg_off + sample_cumulative(&self.bg_cum, rng)) as u32);
            }
        }

        // Shared tokens (Zipf-weighted ranks).
        if cfg.n_shared > 0 {
            for _ in 0..n_sh {
                tokens.push(sample_cumulative(&self.sh_cum, rng) as u32);
            }
        }

        rng.shuffle(&mut tokens);

        if cfg.label_noise > 0.0 && rng.bernoulli(cfg.label_noise) {
            label = label.flip();
        }

        MixDoc { tokens, label, cluster }
    }

    /// Sample `n` examples.
    pub fn sample_docs(&self, n: usize, rng: &mut DetRng) -> Vec<MixDoc> {
        (0..n).map(|_| self.sample_doc(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MixtureConfig {
        MixtureConfig {
            n_clusters: 3,
            n_shared: 20,
            n_background_per_cluster: 15,
            n_indicators: 12,
            ..MixtureConfig::default()
        }
    }

    #[test]
    fn vocab_layout() {
        let cfg = small_cfg();
        assert_eq!(cfg.vocab_size(), 20 + 45 + 12);
        assert_eq!(cfg.indicator_offset(), 65);
        let mut rng = DetRng::new(1);
        let m = MixtureModel::new(cfg, &mut rng);
        assert!(!m.is_indicator(64));
        assert!(m.is_indicator(65));
        assert_eq!(m.token_name(0), "sh0");
        assert_eq!(m.token_name(20), "bg0_0");
        assert_eq!(m.token_name(35), "bg1_0");
        assert_eq!(m.token_name(65), "ind0");
    }

    #[test]
    fn indicator_table_balanced() {
        let mut rng = DetRng::new(2);
        let m = MixtureModel::new(small_cfg(), &mut rng);
        // Round-robin homes.
        assert_eq!(m.indicator_home(m.indicator_token(0)), 0);
        assert_eq!(m.indicator_home(m.indicator_token(1)), 1);
        assert_eq!(m.indicator_home(m.indicator_token(3)), 0);
        // Both polarities occur.
        let lex = m.lexicon();
        let pos = lex.iter().filter(|&&t| m.indicator_base(t) == Label::Pos).count();
        assert!(pos > 0 && pos < lex.len());
        // Home agreement is the configured value.
        let t0 = m.indicator_token(0);
        assert_eq!(m.eff_agreement(t0, 0), 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg();
        let mut r1 = DetRng::new(33);
        let mut r2 = DetRng::new(33);
        let m1 = MixtureModel::new(cfg.clone(), &mut r1);
        let m2 = MixtureModel::new(cfg, &mut r2);
        let d1 = m1.sample_docs(20, &mut r1);
        let d2 = m2.sample_docs(20, &mut r2);
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.label, b.label);
            assert_eq!(a.cluster, b.cluster);
        }
    }

    #[test]
    fn class_prior_respected() {
        let cfg = MixtureConfig { pos_prior: 0.2, ..small_cfg() };
        let mut rng = DetRng::new(5);
        let m = MixtureModel::new(cfg, &mut rng);
        let docs = m.sample_docs(5000, &mut rng);
        let pos = docs.iter().filter(|d| d.label == Label::Pos).count() as f64 / 5000.0;
        assert!((pos - 0.2).abs() < 0.03, "pos frac {pos}");
    }

    #[test]
    fn indicator_accuracy_matches_home_agreement() {
        let mut rng = DetRng::new(7);
        let m = MixtureModel::new(small_cfg(), &mut rng);
        let docs = m.sample_docs(30_000, &mut rng);
        // Average empirical accuracy of home-cluster coverage over all
        // indicators should approach agreement_home (0.9).
        let (mut correct, mut covered) = (0usize, 0usize);
        for d in &docs {
            for &t in &d.tokens {
                if m.is_indicator(t) && m.indicator_home(t) == d.cluster {
                    covered += 1;
                    if m.indicator_base(t) == d.label {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / covered as f64;
        assert!((acc - 0.9).abs() < 0.03, "home accuracy {acc}");
    }

    #[test]
    fn indicator_coverage_localized_to_home() {
        let mut rng = DetRng::new(9);
        let m = MixtureModel::new(small_cfg(), &mut rng);
        let docs = m.sample_docs(20_000, &mut rng);
        // Indicators should appear in their home cluster far more often
        // than chance (1/3 of docs are in any given cluster).
        let (mut home_hits, mut total_hits) = (0usize, 0usize);
        for d in &docs {
            for &t in &d.tokens {
                if m.is_indicator(t) {
                    total_hits += 1;
                    if m.indicator_home(t) == d.cluster {
                        home_hits += 1;
                    }
                }
            }
        }
        let home_frac = home_hits as f64 / total_hits as f64;
        assert!(home_frac > 0.55, "home coverage fraction {home_frac} should exceed chance 0.33");
    }

    #[test]
    fn label_noise_flips_labels() {
        let cfg = MixtureConfig { label_noise: 1.0, pos_prior: 1.0, ..small_cfg() };
        let mut rng = DetRng::new(11);
        let m = MixtureModel::new(cfg, &mut rng);
        let docs = m.sample_docs(50, &mut rng);
        assert!(docs.iter().all(|d| d.label == Label::Neg));
    }

    #[test]
    fn cluster_weights_respected() {
        let cfg = MixtureConfig { cluster_weights: vec![0.8, 0.1, 0.1], ..small_cfg() };
        let mut rng = DetRng::new(13);
        let m = MixtureModel::new(cfg, &mut rng);
        let docs = m.sample_docs(5000, &mut rng);
        let c0 = docs.iter().filter(|d| d.cluster == 0).count() as f64 / 5000.0;
        assert!((c0 - 0.8).abs() < 0.03, "cluster-0 frac {c0}");
    }

    #[test]
    fn doc_lengths_in_bounds() {
        let cfg = small_cfg();
        let (lo, hi) = (
            cfg.indicator_tokens.0 + cfg.background_tokens.0 + cfg.shared_tokens.0,
            cfg.indicator_tokens.2 + cfg.background_tokens.2 + cfg.shared_tokens.2,
        );
        let mut rng = DetRng::new(17);
        let m = MixtureModel::new(cfg, &mut rng);
        for d in m.sample_docs(500, &mut rng) {
            assert!((lo..=hi).contains(&d.tokens.len()), "len {}", d.tokens.len());
        }
    }
}

//! Core dataset types.
//!
//! A [`Dataset`] is the unit the IDP protocol runs on: an unlabeled
//! training split (ground-truth labels are present but only the simulated
//! user / oracle may read them), a labeled validation split (hyperparameter
//! selection, e.g. the contextualizer's percentile `p`), and a held-out
//! test split for the learning curves. Each split carries feature vectors
//! (TF-IDF or dense embeddings) and a [`PrimitiveCorpus`] over the shared
//! primitive domain `Z`.

use nemo_lf::{Label, Metric, PrimitiveCorpus};
use nemo_sparse::{CsrMatrix, DenseMatrix, Distance, SparseVec};

/// Feature vectors for one split. The canonical storage is CSR (sparse);
/// dense features (the VG substitute's embeddings) additionally keep the
/// dense form so distance kernels can use the cheaper dense path.
#[derive(Debug, Clone)]
pub struct Features {
    csr: CsrMatrix,
    dense: Option<DenseMatrix>,
    sq_norms: Vec<f64>,
}

impl Features {
    /// Wrap a sparse feature matrix.
    pub fn from_csr(csr: CsrMatrix) -> Self {
        let sq_norms = csr.row_sq_norms();
        Self { csr, dense: None, sq_norms }
    }

    /// Wrap dense features, keeping a CSR mirror for model code that
    /// consumes sparse rows uniformly.
    pub fn from_dense(dense: DenseMatrix) -> Self {
        let rows: Vec<SparseVec> = dense
            .rows()
            .map(|r| {
                let pairs: Vec<(u32, f32)> = r
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect();
                SparseVec::from_pairs(pairs, dense.n_cols())
            })
            .collect();
        let csr = CsrMatrix::from_rows(&rows, dense.n_cols());
        let sq_norms = csr.row_sq_norms();
        Self { csr, dense: Some(dense), sq_norms }
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.csr.n_rows()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.csr.n_cols()
    }

    /// Sparse view (always available).
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// Dense view, if the features were constructed dense.
    pub fn dense(&self) -> Option<&DenseMatrix> {
        self.dense.as_ref()
    }

    /// Cached squared row norms.
    pub fn sq_norms(&self) -> &[f64] {
        &self.sq_norms
    }

    /// Distances from example `pivot` (within this split) to every example
    /// of this split.
    pub fn point_to_all(&self, dist: Distance, pivot: usize) -> Vec<f64> {
        match &self.dense {
            Some(d) => dist.dense_point_to_all(d, pivot),
            None => dist.sparse_point_to_all(&self.csr, pivot, &self.sq_norms),
        }
    }

    /// Distances from example `pivot` of *this* split to every example of
    /// `other` (same feature space; used to refine LFs on valid/test).
    pub fn point_to_other(&self, dist: Distance, pivot: usize, other: &Features) -> Vec<f64> {
        match (&self.dense, &other.dense) {
            (Some(d_self), Some(d_other)) => dist.dense_row_to_all(d_self.row(pivot), d_other),
            _ => {
                let row = self.csr.row(pivot);
                dist.sparse_row_to_all(&row, self.sq_norms[pivot], &other.csr, &other.sq_norms)
            }
        }
    }
}

/// One split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Ground-truth labels. For the training split these are *oracle-only*:
    /// IDP methods never read them directly; the simulated user does.
    pub labels: Vec<Label>,
    /// Feature vectors.
    pub features: Features,
    /// Primitive sets + inverted index over the shared domain `Z`.
    pub corpus: PrimitiveCorpus,
    /// Generator metadata: latent cluster of each example (used only by
    /// analysis benches such as Fig. 3/6, never by the methods).
    pub clusters: Vec<u32>,
}

impl Split {
    /// Number of examples.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Empirical fraction of positive labels.
    pub fn pos_frac(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == Label::Pos).count() as f64 / self.labels.len() as f64
    }

    /// Internal consistency check (sizes line up across fields).
    pub fn validate(&self) {
        assert_eq!(self.labels.len(), self.features.n(), "labels vs features");
        assert_eq!(self.labels.len(), self.corpus.len(), "labels vs corpus");
        assert_eq!(self.labels.len(), self.clusters.len(), "labels vs clusters");
    }
}

/// A complete dataset: three splits over a shared primitive domain.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name ("Amazon", "SMS", …).
    pub name: String,
    /// Evaluation metric (accuracy; F1 for the imbalanced SMS task).
    pub metric: Metric,
    /// Unlabeled-for-methods training split (the IDP pool `U`).
    pub train: Split,
    /// Labeled validation split (hyperparameter selection).
    pub valid: Split,
    /// Held-out test split (learning curves).
    pub test: Split,
    /// Size of the primitive domain `Z`.
    pub n_primitives: usize,
    /// Display name per primitive id (token or object tag).
    pub primitive_names: Vec<String>,
    /// Sorted primitive ids of class-indicative "lexicon" entries the
    /// simulated user may consult (paper Appendix C); empty when the task
    /// has no lexicon.
    pub lexicon: Vec<u32>,
    /// Class prior `P(y = +1)` estimated from the validation labels
    /// (the label prior the SEU user model uses).
    pub class_prior_pos: f64,
}

impl Dataset {
    /// Validate cross-split invariants; panics on inconsistency.
    pub fn validate(&self) {
        self.train.validate();
        self.valid.validate();
        self.test.validate();
        assert_eq!(self.train.corpus.n_primitives(), self.n_primitives);
        assert_eq!(self.valid.corpus.n_primitives(), self.n_primitives);
        assert_eq!(self.test.corpus.n_primitives(), self.n_primitives);
        assert_eq!(self.primitive_names.len(), self.n_primitives);
        for w in self.lexicon.windows(2) {
            assert!(w[0] < w[1], "lexicon must be sorted unique");
        }
        if let Some(&max) = self.lexicon.last() {
            assert!((max as usize) < self.n_primitives);
        }
        assert!((0.0..=1.0).contains(&self.class_prior_pos));
    }

    /// The class prior as a `[P(y=−1), P(y=+1)]` array.
    pub fn prior(&self) -> [f64; 2] {
        [1.0 - self.class_prior_pos, self.class_prior_pos]
    }

    /// Display name of primitive `z`.
    pub fn primitive_name(&self, z: u32) -> &str {
        &self.primitive_names[z as usize]
    }

    /// Whether primitive `z` is in the lexicon.
    pub fn in_lexicon(&self, z: u32) -> bool {
        self.lexicon.binary_search(&z).is_ok()
    }

    /// One-line statistics row (Table 1): name, #train, #valid, #test.
    pub fn stats_row(&self) -> (String, usize, usize, usize) {
        (self.name.clone(), self.train.n(), self.valid.n(), self.test.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_sparse::DenseMatrix;

    fn tiny_features_sparse() -> Features {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0)], 3),
            SparseVec::from_pairs(vec![(1, 1.0)], 3),
        ];
        Features::from_csr(CsrMatrix::from_rows(&rows, 3))
    }

    #[test]
    fn features_from_dense_mirrors_csr() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 0.0, 0.0]]);
        let f = Features::from_dense(d);
        assert_eq!(f.n(), 2);
        assert_eq!(f.dim(), 3);
        assert_eq!(f.csr().row(0).nnz(), 2);
        assert_eq!(f.csr().row(1).nnz(), 0);
        assert!(f.dense().is_some());
    }

    #[test]
    fn dense_and_sparse_distances_agree() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let fd = Features::from_dense(d);
        // Rebuild as pure sparse.
        let fs = Features::from_csr(fd.csr().clone());
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let a = fd.point_to_all(dist, 2);
            let b = fs.point_to_all(dist, 2);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn point_to_other_cross_split() {
        let f1 = tiny_features_sparse();
        let f2 = tiny_features_sparse();
        let d = f1.point_to_other(Distance::Cosine, 0, &f2);
        assert!(d[0].abs() < 1e-9); // identical vector
        assert!((d[1] - 1.0).abs() < 1e-9); // orthogonal
    }

    #[test]
    fn split_pos_frac() {
        let split = Split {
            labels: vec![Label::Pos, Label::Neg, Label::Pos, Label::Pos],
            features: {
                let rows: Vec<SparseVec> = (0..4).map(|_| SparseVec::zeros(2)).collect();
                Features::from_csr(CsrMatrix::from_rows(&rows, 2))
            },
            corpus: PrimitiveCorpus::new(vec![vec![]; 4], 2),
            clusters: vec![0; 4],
        };
        split.validate();
        assert!((split.pos_frac() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "labels vs features")]
    fn split_validate_catches_mismatch() {
        let split = Split {
            labels: vec![Label::Pos],
            features: tiny_features_sparse(),
            corpus: PrimitiveCorpus::new(vec![vec![]], 2),
            clusters: vec![0],
        };
        split.validate();
    }
}

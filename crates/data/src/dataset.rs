//! Core dataset types.
//!
//! A [`Dataset`] is the unit the IDP protocol runs on: an unlabeled
//! training split (ground-truth labels are present but only the simulated
//! user / oracle may read them), a labeled validation split (hyperparameter
//! selection, e.g. the contextualizer's percentile `p`), and a held-out
//! test split for the learning curves. Each split carries feature vectors
//! (TF-IDF or dense embeddings) and a [`PrimitiveCorpus`] over the shared
//! primitive domain `Z`.

use nemo_lf::{Label, Metric, PrimitiveCorpus};
use nemo_sparse::{
    CscIndex, CsrMatrix, DenseBackend, DenseMatrix, Distance, DistanceScratch, SparseVec,
};

/// Feature vectors for one split. The canonical storage is CSR (sparse);
/// dense features (the VG substitute's embeddings) additionally keep the
/// dense form so distance kernels can use the cheaper dense path.
///
/// Sparse-backed features also carry the column-major [`CscIndex`]
/// companion (built once here), so every point-to-all distance query runs
/// through the inverted-index kernel: only the posting lists of the
/// pivot's nonzero terms are walked. The naive row-major kernels stay
/// reachable via the `*_naive` methods for differential tests and
/// regression benchmarks; both paths are bit-identical by construction.
#[derive(Debug, Clone)]
pub struct Features {
    csr: CsrMatrix,
    dense: Option<DenseMatrix>,
    /// Column-major companion; `Some` iff the features are sparse-backed
    /// (dense-backed splits use the dense distance path instead).
    csc: Option<CscIndex>,
    sq_norms: Vec<f64>,
}

impl Features {
    /// Wrap a sparse feature matrix, building its column-major companion.
    pub fn from_csr(csr: CsrMatrix) -> Self {
        let sq_norms = csr.row_sq_norms();
        let csc = Some(CscIndex::from_csr(&csr));
        Self { csr, dense: None, csc, sq_norms }
    }

    /// Wrap dense features, keeping a CSR mirror for model code that
    /// consumes sparse rows uniformly.
    pub fn from_dense(dense: DenseMatrix) -> Self {
        let rows: Vec<SparseVec> = dense
            .rows()
            .map(|r| {
                let pairs: Vec<(u32, f32)> = r
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect();
                SparseVec::from_pairs(pairs, dense.n_cols())
            })
            .collect();
        let csr = CsrMatrix::from_rows(&rows, dense.n_cols());
        let sq_norms = csr.row_sq_norms();
        Self { csr, dense: Some(dense), csc: None, sq_norms }
    }

    /// Reassemble features from persisted parts without recomputing the
    /// norms or the column-major companion — the fast-load path of the
    /// artifact store. Validates the cross-buffer invariants
    /// ([`Features::from_csr`]/[`Features::from_dense`] establish them by
    /// construction); returns `Err` instead of panicking so corrupted
    /// artifacts surface as typed load errors.
    pub fn from_parts(
        csr: CsrMatrix,
        dense: Option<DenseMatrix>,
        csc: Option<CscIndex>,
        sq_norms: Vec<f64>,
    ) -> Result<Self, &'static str> {
        if sq_norms.len() != csr.n_rows() {
            return Err("row-norm cache length does not match row count");
        }
        if sq_norms.iter().any(|&n| !n.is_finite() || n < 0.0) {
            return Err("row norm must be finite and non-negative");
        }
        match (&dense, &csc) {
            (Some(d), None) => {
                if d.n_rows() != csr.n_rows() || d.n_cols() != csr.n_cols() {
                    return Err("dense mirror shape does not match CSR");
                }
            }
            (None, Some(c)) => {
                if c.n_rows() != csr.n_rows() || c.n_cols() != csr.n_cols() || c.nnz() != csr.nnz()
                {
                    return Err("CSC companion shape does not match CSR");
                }
            }
            // The distance dispatch relies on exactly one of the two being
            // present (see `point_to_all_into_with`).
            (Some(_), Some(_)) => return Err("features cannot be both dense- and CSC-backed"),
            (None, None) => return Err("sparse-backed features require a CSC companion"),
        }
        Ok(Self { csr, dense, csc, sq_norms })
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.csr.n_rows()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.csr.n_cols()
    }

    /// Sparse view (always available).
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// Dense view, if the features were constructed dense.
    pub fn dense(&self) -> Option<&DenseMatrix> {
        self.dense.as_ref()
    }

    /// Cached squared row norms.
    pub fn sq_norms(&self) -> &[f64] {
        &self.sq_norms
    }

    /// Column-major companion index (`Some` iff sparse-backed).
    pub fn csc(&self) -> Option<&CscIndex> {
        self.csc.as_ref()
    }

    /// Distances from example `pivot` (within this split) to every example
    /// of this split, through the indexed engine (allocating wrapper over
    /// [`Features::point_to_all_into`]).
    pub fn point_to_all(&self, dist: Distance, pivot: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.point_to_all_into(dist, pivot, &mut DistanceScratch::new(), &mut out);
        out
    }

    /// Indexed point-to-all into caller-owned buffers; repeated calls with
    /// the same `scratch`/`out` are allocation-free. Uses the scalar dense
    /// reduction (the historical bit-exact results); pass a backend
    /// explicitly via [`Features::point_to_all_into_with`].
    pub fn point_to_all_into(
        &self,
        dist: Distance,
        pivot: usize,
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        self.point_to_all_into_with(dist, DenseBackend::Scalar, pivot, scratch, out);
    }

    /// [`Features::point_to_all_into`] with an explicit dense reduction
    /// backend (ignored for sparse-backed splits). Single-pivot queries go
    /// through the sharded kernels, which are bit-identical to the serial
    /// ones for the same backend and parallelize large pools over fixed
    /// row ranges.
    pub fn point_to_all_into_with(
        &self,
        dist: Distance,
        backend: DenseBackend,
        pivot: usize,
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        match (&self.dense, &self.csc) {
            (Some(d), _) => dist.dense_row_to_all_sharded_into(
                backend,
                d.row(pivot),
                self.sq_norms[pivot],
                d,
                &self.sq_norms,
                out,
            ),
            (None, Some(csc)) => dist.sparse_point_to_all_indexed_sharded_into(
                &self.csr,
                csc,
                pivot,
                &self.sq_norms,
                scratch,
                out,
            ),
            // invariant: the constructor builds a CscIndex whenever the
            // split has no dense mirror.
            (None, None) => unreachable!("sparse-backed features always carry a CscIndex"),
        }
    }

    /// Point-to-all through the pre-index kernels (row-major scan for
    /// sparse, per-pair norms for dense): the differential reference the
    /// indexed engine is validated against.
    pub fn point_to_all_naive(&self, dist: Distance, pivot: usize) -> Vec<f64> {
        match &self.dense {
            Some(d) => dist.dense_point_to_all(d, pivot),
            None => dist.sparse_point_to_all(&self.csr, pivot, &self.sq_norms),
        }
    }

    /// Batched point-to-all: one distance vector per pivot, in pivot
    /// order, partitioned over the pivots via `nemo_sparse::parallel`
    /// (scalar dense backend; see [`Features::point_to_all_many_with`]).
    pub fn point_to_all_many(&self, dist: Distance, pivots: &[usize]) -> Vec<Vec<f64>> {
        self.point_to_all_many_with(dist, DenseBackend::Scalar, pivots)
    }

    /// [`Features::point_to_all_many`] with an explicit dense reduction
    /// backend (ignored for sparse-backed splits). Batches with fewer
    /// pivots than workers shard each query over row ranges instead —
    /// bit-identical either way.
    pub fn point_to_all_many_with(
        &self,
        dist: Distance,
        backend: DenseBackend,
        pivots: &[usize],
    ) -> Vec<Vec<f64>> {
        match (&self.dense, &self.csc) {
            (Some(d), _) => dist.dense_point_to_all_many_with(backend, d, pivots, &self.sq_norms),
            (None, Some(csc)) => dist.sparse_point_to_all_many(
                &self.csr,
                &self.sq_norms,
                pivots,
                csc,
                &self.sq_norms,
            ),
            // invariant: the constructor builds a CscIndex whenever the
            // split has no dense mirror.
            (None, None) => unreachable!("sparse-backed features always carry a CscIndex"),
        }
    }

    /// Distances from example `pivot` of *this* split to every example of
    /// `other` (same feature space; used to refine LFs on valid/test),
    /// through the indexed engine (allocating wrapper over
    /// [`Features::point_to_other_into`]).
    pub fn point_to_other(&self, dist: Distance, pivot: usize, other: &Features) -> Vec<f64> {
        let mut out = Vec::new();
        self.point_to_other_into(dist, pivot, other, &mut DistanceScratch::new(), &mut out);
        out
    }

    /// Indexed cross-split point-to-all into caller-owned buffers (scalar
    /// dense backend; see [`Features::point_to_other_into_with`]).
    pub fn point_to_other_into(
        &self,
        dist: Distance,
        pivot: usize,
        other: &Features,
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        self.point_to_other_into_with(dist, DenseBackend::Scalar, pivot, other, scratch, out);
    }

    /// [`Features::point_to_other_into`] with an explicit dense reduction
    /// backend (used only when both splits are dense-backed). Single-pivot
    /// queries go through the sharded kernels (bit-identical to serial).
    pub fn point_to_other_into_with(
        &self,
        dist: Distance,
        backend: DenseBackend,
        pivot: usize,
        other: &Features,
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        match (&self.dense, &other.dense, &other.csc) {
            (Some(d_self), Some(d_other), _) => dist.dense_row_to_all_sharded_into(
                backend,
                d_self.row(pivot),
                self.sq_norms[pivot],
                d_other,
                &other.sq_norms,
                out,
            ),
            (_, _, Some(csc)) => dist.sparse_row_to_all_indexed_sharded_into(
                &self.csr.row(pivot),
                self.sq_norms[pivot],
                csc,
                &other.sq_norms,
                scratch,
                out,
            ),
            // Mixed sparse pivot vs dense-backed target: the target has no
            // CSC companion, so fall back to the row-major scan over its
            // CSR mirror (matches the historical dispatch).
            _ => dist.sparse_row_to_all_into(
                &self.csr.row(pivot),
                self.sq_norms[pivot],
                &other.csr,
                &other.sq_norms,
                out,
            ),
        }
    }

    /// Cross-split point-to-all through the pre-index kernels (the
    /// differential reference).
    pub fn point_to_other_naive(&self, dist: Distance, pivot: usize, other: &Features) -> Vec<f64> {
        match (&self.dense, &other.dense) {
            (Some(d_self), Some(d_other)) => dist.dense_row_to_all(d_self.row(pivot), d_other),
            _ => {
                let row = self.csr.row(pivot);
                dist.sparse_row_to_all(&row, self.sq_norms[pivot], &other.csr, &other.sq_norms)
            }
        }
    }

    /// Serial cross-split dispatch: the per-pivot kernel the batched path
    /// partitions over (never spawns, so pivot-level workers don't nest
    /// shard-level workers).
    fn point_to_other_serial_into_with(
        &self,
        dist: Distance,
        backend: DenseBackend,
        pivot: usize,
        other: &Features,
        scratch: &mut DistanceScratch,
        out: &mut Vec<f64>,
    ) {
        match (&self.dense, &other.dense, &other.csc) {
            (Some(d_self), Some(d_other), _) => dist.dense_row_to_all_cached_into_with(
                backend,
                d_self.row(pivot),
                self.sq_norms[pivot],
                d_other,
                &other.sq_norms,
                out,
            ),
            (_, _, Some(csc)) => dist.sparse_row_to_all_indexed_into(
                &self.csr.row(pivot),
                self.sq_norms[pivot],
                csc,
                &other.sq_norms,
                scratch,
                out,
            ),
            _ => dist.sparse_row_to_all_into(
                &self.csr.row(pivot),
                self.sq_norms[pivot],
                &other.csr,
                &other.sq_norms,
                out,
            ),
        }
    }

    /// Batched cross-split point-to-all: one distance vector per pivot of
    /// *this* split against every example of `other`, in pivot order
    /// (scalar dense backend; see [`Features::point_to_other_many_with`]).
    pub fn point_to_other_many(
        &self,
        dist: Distance,
        pivots: &[usize],
        other: &Features,
    ) -> Vec<Vec<f64>> {
        self.point_to_other_many_with(dist, DenseBackend::Scalar, pivots, other)
    }

    /// [`Features::point_to_other_many`] with an explicit dense reduction
    /// backend. Batches with fewer pivots than workers shard each query
    /// over row ranges of `other` instead of partitioning over the pivots
    /// — bit-identical either way.
    pub fn point_to_other_many_with(
        &self,
        dist: Distance,
        backend: DenseBackend,
        pivots: &[usize],
        other: &Features,
    ) -> Vec<Vec<f64>> {
        use nemo_sparse::parallel::{num_threads, par_flat_map_chunks};
        match (&self.dense, &other.dense, &other.csc) {
            (Some(_), Some(_), _) | (_, _, None) => {
                if pivots.len() < num_threads() {
                    let mut scratch = DistanceScratch::new();
                    return pivots
                        .iter()
                        .map(|&p| {
                            let mut out = Vec::new();
                            self.point_to_other_into_with(
                                dist,
                                backend,
                                p,
                                other,
                                &mut scratch,
                                &mut out,
                            );
                            out
                        })
                        .collect();
                }
                par_flat_map_chunks(pivots, 2, |_, chunk| {
                    let mut scratch = DistanceScratch::new();
                    chunk
                        .iter()
                        .map(|&p| {
                            let mut out = Vec::new();
                            self.point_to_other_serial_into_with(
                                dist,
                                backend,
                                p,
                                other,
                                &mut scratch,
                                &mut out,
                            );
                            out
                        })
                        .collect()
                })
            }
            (_, _, Some(csc)) => dist.sparse_point_to_all_many(
                &self.csr,
                &self.sq_norms,
                pivots,
                csc,
                &other.sq_norms,
            ),
        }
    }
}

/// One split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Ground-truth labels. For the training split these are *oracle-only*:
    /// IDP methods never read them directly; the simulated user does.
    pub labels: Vec<Label>,
    /// Feature vectors.
    pub features: Features,
    /// Primitive sets + inverted index over the shared domain `Z`.
    pub corpus: PrimitiveCorpus,
    /// Generator metadata: latent cluster of each example (used only by
    /// analysis benches such as Fig. 3/6, never by the methods).
    pub clusters: Vec<u32>,
}

impl Split {
    /// Number of examples.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Empirical fraction of positive labels.
    pub fn pos_frac(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == Label::Pos).count() as f64 / self.labels.len() as f64
    }

    /// Internal consistency check (sizes line up across fields).
    pub fn validate(&self) {
        assert_eq!(self.labels.len(), self.features.n(), "labels vs features");
        assert_eq!(self.labels.len(), self.corpus.len(), "labels vs corpus");
        assert_eq!(self.labels.len(), self.clusters.len(), "labels vs clusters");
    }
}

/// A complete dataset: three splits over a shared primitive domain.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name ("Amazon", "SMS", …).
    pub name: String,
    /// Evaluation metric (accuracy; F1 for the imbalanced SMS task).
    pub metric: Metric,
    /// Unlabeled-for-methods training split (the IDP pool `U`).
    pub train: Split,
    /// Labeled validation split (hyperparameter selection).
    pub valid: Split,
    /// Held-out test split (learning curves).
    pub test: Split,
    /// Size of the primitive domain `Z`.
    pub n_primitives: usize,
    /// Display name per primitive id (token or object tag).
    pub primitive_names: Vec<String>,
    /// Sorted primitive ids of class-indicative "lexicon" entries the
    /// simulated user may consult (paper Appendix C); empty when the task
    /// has no lexicon.
    pub lexicon: Vec<u32>,
    /// Class prior `P(y = +1)` estimated from the validation labels
    /// (the label prior the SEU user model uses).
    pub class_prior_pos: f64,
}

impl Dataset {
    /// Validate cross-split invariants; panics on inconsistency.
    pub fn validate(&self) {
        self.train.validate();
        self.valid.validate();
        self.test.validate();
        assert_eq!(self.train.corpus.n_primitives(), self.n_primitives);
        assert_eq!(self.valid.corpus.n_primitives(), self.n_primitives);
        assert_eq!(self.test.corpus.n_primitives(), self.n_primitives);
        assert_eq!(self.primitive_names.len(), self.n_primitives);
        for w in self.lexicon.windows(2) {
            assert!(w[0] < w[1], "lexicon must be sorted unique");
        }
        if let Some(&max) = self.lexicon.last() {
            assert!((max as usize) < self.n_primitives);
        }
        assert!((0.0..=1.0).contains(&self.class_prior_pos));
    }

    /// The class prior as a `[P(y=−1), P(y=+1)]` array.
    pub fn prior(&self) -> [f64; 2] {
        [1.0 - self.class_prior_pos, self.class_prior_pos]
    }

    /// Display name of primitive `z`.
    pub fn primitive_name(&self, z: u32) -> &str {
        &self.primitive_names[z as usize]
    }

    /// Whether primitive `z` is in the lexicon.
    pub fn in_lexicon(&self, z: u32) -> bool {
        self.lexicon.binary_search(&z).is_ok()
    }

    /// One-line statistics row (Table 1): name, #train, #valid, #test.
    pub fn stats_row(&self) -> (String, usize, usize, usize) {
        (self.name.clone(), self.train.n(), self.valid.n(), self.test.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_sparse::DenseMatrix;

    fn tiny_features_sparse() -> Features {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0)], 3),
            SparseVec::from_pairs(vec![(1, 1.0)], 3),
        ];
        Features::from_csr(CsrMatrix::from_rows(&rows, 3))
    }

    #[test]
    fn features_from_dense_mirrors_csr() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 0.0, 0.0]]);
        let f = Features::from_dense(d);
        assert_eq!(f.n(), 2);
        assert_eq!(f.dim(), 3);
        assert_eq!(f.csr().row(0).nnz(), 2);
        assert_eq!(f.csr().row(1).nnz(), 0);
        assert!(f.dense().is_some());
    }

    #[test]
    fn dense_and_sparse_distances_agree() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let fd = Features::from_dense(d);
        // Rebuild as pure sparse.
        let fs = Features::from_csr(fd.csr().clone());
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let a = fd.point_to_all(dist, 2);
            let b = fs.point_to_all(dist, 2);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn point_to_other_cross_split() {
        let f1 = tiny_features_sparse();
        let f2 = tiny_features_sparse();
        let d = f1.point_to_other(Distance::Cosine, 0, &f2);
        assert!(d[0].abs() < 1e-9); // identical vector
        assert!((d[1] - 1.0).abs() < 1e-9); // orthogonal
    }

    #[test]
    fn sparse_features_carry_csc_dense_do_not() {
        let fs = tiny_features_sparse();
        let csc = fs.csc().expect("sparse-backed features build a CscIndex");
        assert_eq!(csc.n_rows(), fs.n());
        assert_eq!(csc.nnz(), fs.csr().nnz());
        let fd = Features::from_dense(DenseMatrix::from_rows(&[vec![1.0, 0.0]]));
        assert!(fd.csc().is_none());
    }

    #[test]
    fn indexed_naive_and_batched_paths_identical() {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0), (2, 0.5)], 4),
            SparseVec::from_pairs(vec![(1, 2.0)], 4),
            SparseVec::zeros(4),
            SparseVec::from_pairs(vec![(0, 0.5), (3, 1.0)], 4),
        ];
        let f = Features::from_csr(CsrMatrix::from_rows(&rows, 4));
        let other = Features::from_csr(CsrMatrix::from_rows(&rows[..2], 4));
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let pivots: Vec<usize> = (0..f.n()).collect();
            let many = f.point_to_all_many(dist, &pivots);
            let many_other = f.point_to_other_many(dist, &pivots, &other);
            for (p, (m_row, mo_row)) in many.iter().zip(&many_other).enumerate() {
                assert_eq!(f.point_to_all(dist, p), f.point_to_all_naive(dist, p), "{dist:?}");
                assert_eq!(m_row, &f.point_to_all_naive(dist, p), "{dist:?} batched");
                assert_eq!(
                    f.point_to_other(dist, p, &other),
                    f.point_to_other_naive(dist, p, &other),
                    "{dist:?} cross"
                );
                assert_eq!(mo_row, &f.point_to_other_naive(dist, p, &other));
            }
        }
    }

    #[test]
    fn dense_backed_paths_identical() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 0.0]]);
        let f = Features::from_dense(d);
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let pivots: Vec<usize> = (0..f.n()).collect();
            let many = f.point_to_all_many(dist, &pivots);
            for (p, m_row) in many.iter().enumerate() {
                assert_eq!(f.point_to_all(dist, p), f.point_to_all_naive(dist, p));
                assert_eq!(m_row, &f.point_to_all_naive(dist, p));
            }
        }
    }

    /// The blocked dense backend stays within the documented 1e-9 relative
    /// tolerance of the scalar reference on every dense-backed path, the
    /// scalar `_with` path reproduces the historical results bitwise, and
    /// sparse-backed splits ignore the backend entirely.
    #[test]
    fn dense_backend_with_variants_consistent() {
        let d = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 2.0, -1.0, 0.5, 3.0, -0.25, 1.5, 2.5],
            vec![0.5, 0.5, -1.0, 2.0, 0.0, 1.0, 0.75, -0.5, 1.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let f = Features::from_dense(d);
        let fs = Features::from_csr(f.csr().clone());
        let mut scratch = DistanceScratch::new();
        let (mut scalar, mut blocked) = (Vec::new(), Vec::new());
        for dist in [Distance::Cosine, Distance::Euclidean] {
            let pivots: Vec<usize> = (0..f.n()).collect();
            for p in 0..f.n() {
                f.point_to_all_into_with(dist, DenseBackend::Scalar, p, &mut scratch, &mut scalar);
                assert_eq!(scalar, f.point_to_all(dist, p), "{dist:?} scalar _with drifted");
                f.point_to_all_into_with(
                    dist,
                    DenseBackend::Blocked,
                    p,
                    &mut scratch,
                    &mut blocked,
                );
                for (r, (&a, &b)) in scalar.iter().zip(&blocked).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                        "{dist:?} pivot {p} row {r}: {a} vs {b}"
                    );
                }
                f.point_to_other_into_with(
                    dist,
                    DenseBackend::Blocked,
                    p,
                    &f,
                    &mut scratch,
                    &mut scalar,
                );
                assert_eq!(scalar, blocked, "{dist:?} self-other disagrees with all");
                // Sparse-backed splits ignore the dense backend.
                fs.point_to_all_into_with(
                    dist,
                    DenseBackend::Blocked,
                    p,
                    &mut scratch,
                    &mut scalar,
                );
                assert_eq!(scalar, fs.point_to_all(dist, p), "{dist:?} sparse backend leak");
            }
            let many = f.point_to_all_many_with(dist, DenseBackend::Blocked, &pivots);
            let many_other = f.point_to_other_many_with(dist, DenseBackend::Blocked, &pivots, &f);
            for (p, (m_row, mo_row)) in many.iter().zip(&many_other).enumerate() {
                f.point_to_all_into_with(
                    dist,
                    DenseBackend::Blocked,
                    p,
                    &mut scratch,
                    &mut blocked,
                );
                assert_eq!(m_row, &blocked, "{dist:?} batched pivot {p}");
                assert_eq!(mo_row, &blocked, "{dist:?} batched-other pivot {p}");
            }
        }
    }

    #[test]
    fn split_pos_frac() {
        let split = Split {
            labels: vec![Label::Pos, Label::Neg, Label::Pos, Label::Pos],
            features: {
                let rows: Vec<SparseVec> = (0..4).map(|_| SparseVec::zeros(2)).collect();
                Features::from_csr(CsrMatrix::from_rows(&rows, 2))
            },
            corpus: PrimitiveCorpus::new(vec![vec![]; 4], 2),
            clusters: vec![0; 4],
        };
        split.validate();
        assert!((split.pos_frac() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "labels vs features")]
    fn split_validate_catches_mismatch() {
        let split = Split {
            labels: vec![Label::Pos],
            features: tiny_features_sparse(),
            corpus: PrimitiveCorpus::new(vec![vec![]], 2),
            clusters: vec![0],
        };
        split.validate();
    }
}

//! Text dataset generation: cluster-mixture process → readable token
//! streams → the full tokenize/vocab/TF-IDF pipeline → [`Dataset`].
//!
//! Indicator tokens are given curated human-readable names ("great",
//! "terrible", "delicious", …) so examples and LF printouts look like the
//! paper's keyword LFs; background/shared tokens keep synthetic names.
//! The string round-trip is intentional: it exercises the same
//! vocabulary-construction and featurization code paths a real corpus
//! would.

use crate::dataset::{Dataset, Features, Split};
use crate::mixture::{MixDoc, MixtureConfig, MixtureModel};
use nemo_lf::{Label, Metric, PrimitiveCorpus};
use nemo_sparse::DetRng;
use nemo_text::{TfIdf, Vocab};

/// Curated positive-sentiment indicator names.
pub const POS_WORDS: &[&str] = &[
    "great",
    "perfect",
    "delicious",
    "funny",
    "excellent",
    "amazing",
    "love",
    "wonderful",
    "fantastic",
    "awesome",
    "best",
    "enjoyable",
    "fresh",
    "crisp",
    "reliable",
    "fast",
    "beautiful",
    "comfy",
    "tasty",
    "brilliant",
    "smooth",
    "sturdy",
    "charming",
    "gripping",
    "vivid",
    "generous",
    "friendly",
    "cozy",
    "superb",
    "flawless",
];

/// Curated negative-sentiment indicator names.
pub const NEG_WORDS: &[&str] = &[
    "terrible",
    "awful",
    "bland",
    "boring",
    "broken",
    "horrible",
    "worst",
    "disappointing",
    "stale",
    "slow",
    "cheap",
    "flimsy",
    "rude",
    "dirty",
    "noisy",
    "predictable",
    "soggy",
    "defective",
    "useless",
    "annoying",
    "greasy",
    "dull",
    "clunky",
    "cramped",
    "leaky",
    "tasteless",
    "sloppy",
    "shallow",
    "overpriced",
    "buggy",
];

/// Curated spam-indicator names (positive class = spam).
pub const SPAM_WORDS: &[&str] = &[
    "free",
    "win",
    "winner",
    "prize",
    "cash",
    "claim",
    "urgent",
    "offer",
    "click",
    "subscribe",
    "txt",
    "congratulations",
    "guaranteed",
    "bonus",
    "discount",
    "deal",
    "unlock",
    "reward",
    "exclusive",
    "limited",
];

/// Curated ham-indicator names (negative class = legitimate message).
pub const HAM_WORDS: &[&str] = &[
    "meeting", "tomorrow", "thanks", "dinner", "home", "love", "later", "sorry", "call", "lunch",
    "okay", "morning", "night", "week", "friend", "family", "work", "school", "movie", "game",
];

/// Specification of a synthetic text dataset.
#[derive(Debug, Clone)]
pub struct TextGenSpec {
    /// Display name.
    pub name: String,
    /// Evaluation metric.
    pub metric: Metric,
    /// The underlying mixture process.
    pub mixture: MixtureConfig,
    /// Split sizes.
    pub n_train: usize,
    /// Validation size.
    pub n_valid: usize,
    /// Test size.
    pub n_test: usize,
    /// Whether the simulated user has a lexicon for this task (the paper
    /// uses an opinion lexicon for sentiment; none for spam/VG).
    pub expose_lexicon: bool,
    /// Primitive-domain document-frequency bounds `(min_df, max_df_frac)`:
    /// tokens outside them stay in the TF-IDF features but are excluded
    /// from the LF primitive domain `Z`. Standard practice for keyword-LF
    /// families — stopword-frequency tokens make degenerate LFs (huge
    /// coverage, chance accuracy) and rare tokens make useless ones.
    pub primitive_df_bounds: (usize, f64),
    /// Curated names for positive-polarity indicators.
    pub pos_words: &'static [&'static str],
    /// Curated names for negative-polarity indicators.
    pub neg_words: &'static [&'static str],
}

impl TextGenSpec {
    /// Total examples across splits.
    pub fn total(&self) -> usize {
        self.n_train + self.n_valid + self.n_test
    }
}

/// Assign a readable, unique name to every mixture token id.
fn token_names(model: &MixtureModel) -> Vec<String> {
    let vocab_size = model.vocab_size();
    let mut names = Vec::with_capacity(vocab_size);
    let (mut n_pos, mut n_neg) = (0usize, 0usize);
    for t in 0..vocab_size as u32 {
        if model.is_indicator(t) {
            let (list, idx): (&[&str], usize) = match model.indicator_base(t) {
                Label::Pos => {
                    let i = n_pos;
                    n_pos += 1;
                    (POS_WORDS, i)
                }
                Label::Neg => {
                    let i = n_neg;
                    n_neg += 1;
                    (NEG_WORDS, i)
                }
            };
            names.push(curated_name(list, idx));
        } else {
            names.push(model.token_name(t));
        }
    }
    names
}

/// `idx`-th unique name from a curated list (numeric suffix past the end).
fn curated_name(list: &[&str], idx: usize) -> String {
    if idx < list.len() {
        list[idx].to_string()
    } else {
        format!("{}{}", list[idx % list.len()], idx / list.len())
    }
}

/// Generate a text dataset from a spec. Deterministic in `seed`.
pub fn generate_text(spec: &TextGenSpec, seed: u64) -> Dataset {
    let mut rng = DetRng::new(seed ^ 0x7e87_9e0a_11b3_52cd);
    let model = MixtureModel::new(spec.mixture.clone(), &mut rng);

    // Curated naming for sentiment-style specs; spam specs substitute
    // their own lists through `pos_words`/`neg_words`.
    let mut names = token_names(&model);
    if spec.pos_words.as_ptr() != POS_WORDS.as_ptr()
        || spec.neg_words.as_ptr() != NEG_WORDS.as_ptr()
    {
        let (mut n_pos, mut n_neg) = (0usize, 0usize);
        for t in 0..model.vocab_size() as u32 {
            if model.is_indicator(t) {
                names[t as usize] = match model.indicator_base(t) {
                    Label::Pos => {
                        let i = n_pos;
                        n_pos += 1;
                        curated_name(spec.pos_words, i)
                    }
                    Label::Neg => {
                        let i = n_neg;
                        n_neg += 1;
                        curated_name(spec.neg_words, i)
                    }
                };
            }
        }
    }

    let mut train_rng = rng.fork(1);
    let mut valid_rng = rng.fork(2);
    let mut test_rng = rng.fork(3);
    let train_docs = model.sample_docs(spec.n_train, &mut train_rng);
    let valid_docs = model.sample_docs(spec.n_valid, &mut valid_rng);
    let test_docs = model.sample_docs(spec.n_test, &mut test_rng);

    // String round-trip: mixture ids → names → corpus vocabulary.
    let to_strings = |docs: &[MixDoc]| -> Vec<Vec<String>> {
        docs.iter().map(|d| d.tokens.iter().map(|&t| names[t as usize].clone()).collect()).collect()
    };
    let train_strs = to_strings(&train_docs);
    let valid_strs = to_strings(&valid_docs);
    let test_strs = to_strings(&test_docs);

    let vocab = Vocab::build(train_strs.iter().map(|d| d.iter().map(String::as_str)), 1);

    let encode = |docs: &[Vec<String>]| -> Vec<Vec<u32>> {
        docs.iter().map(|d| vocab.encode_seq(d)).collect()
    };
    let train_ids = encode(&train_strs);
    let valid_ids = encode(&valid_strs);
    let test_ids = encode(&test_strs);

    let tfidf = TfIdf::default().fit(&train_ids, vocab.len());

    // Primitive-domain df filter (computed on the training split).
    let mut df = vec![0usize; vocab.len()];
    for doc in &train_ids {
        let mut seen = doc.clone();
        seen.sort_unstable();
        seen.dedup();
        for &t in &seen {
            df[t as usize] += 1;
        }
    }
    let (min_df, max_df_frac) = spec.primitive_df_bounds;
    let max_df = ((spec.n_train as f64) * max_df_frac).ceil() as usize;
    let in_domain = |t: u32| -> bool {
        let d = df[t as usize];
        d >= min_df && d <= max_df
    };

    let build_split = |ids: &[Vec<u32>], docs: &[MixDoc]| -> Split {
        let features = Features::from_csr(tfidf.transform(ids));
        let sets: Vec<Vec<u32>> =
            ids.iter().map(|doc| doc.iter().copied().filter(|&t| in_domain(t)).collect()).collect();
        let corpus = PrimitiveCorpus::new(sets, vocab.len());
        Split {
            labels: docs.iter().map(|d| d.label).collect(),
            features,
            corpus,
            clusters: docs.iter().map(|d| d.cluster).collect(),
        }
    };

    let train = build_split(&train_ids, &train_docs);
    let valid = build_split(&valid_ids, &valid_docs);
    let test = build_split(&test_ids, &test_docs);

    // Lexicon: vocabulary ids of indicator tokens (sorted), restricted to
    // the primitive domain.
    let lexicon = if spec.expose_lexicon {
        let mut lex: Vec<u32> = model
            .lexicon()
            .iter()
            .filter_map(|&t| vocab.id(&names[t as usize]))
            .filter(|&t| in_domain(t))
            .collect();
        lex.sort_unstable();
        lex.dedup();
        lex
    } else {
        Vec::new()
    };

    let class_prior_pos = valid.pos_frac();
    let primitive_names = vocab.tokens().to_vec();
    let n_primitives = vocab.len();

    let ds = Dataset {
        name: spec.name.clone(),
        metric: spec.metric,
        train,
        valid,
        test,
        n_primitives,
        primitive_names,
        lexicon,
        class_prior_pos,
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TextGenSpec {
        TextGenSpec {
            name: "Tiny".into(),
            metric: Metric::Accuracy,
            mixture: MixtureConfig {
                n_clusters: 2,
                n_shared: 30,
                n_background_per_cluster: 20,
                n_indicators: 10,
                ..MixtureConfig::default()
            },
            n_train: 200,
            n_valid: 40,
            n_test: 40,
            expose_lexicon: true,
            primitive_df_bounds: (2, 0.5),
            pos_words: POS_WORDS,
            neg_words: NEG_WORDS,
        }
    }

    #[test]
    fn generates_consistent_dataset() {
        let ds = generate_text(&tiny_spec(), 42);
        assert_eq!(ds.train.n(), 200);
        assert_eq!(ds.valid.n(), 40);
        assert_eq!(ds.test.n(), 40);
        assert!(ds.n_primitives > 0);
        assert!(!ds.lexicon.is_empty());
        ds.validate();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_text(&tiny_spec(), 7);
        let b = generate_text(&tiny_spec(), 7);
        assert_eq!(a.n_primitives, b.n_primitives);
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(a.lexicon, b.lexicon);
        for i in 0..a.train.n() {
            assert_eq!(a.train.corpus.primitives_of(i), b.train.corpus.primitives_of(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_text(&tiny_spec(), 1);
        let b = generate_text(&tiny_spec(), 2);
        assert_ne!(a.train.labels, b.train.labels);
    }

    #[test]
    fn lexicon_words_are_readable() {
        let ds = generate_text(&tiny_spec(), 42);
        for &z in &ds.lexicon {
            let name = ds.primitive_name(z);
            assert!(
                !name.starts_with("sh") && !name.starts_with("bg"),
                "lexicon word {name} should be curated"
            );
        }
    }

    #[test]
    fn lexicon_lfs_beat_chance() {
        use nemo_lf::PrimitiveLf;
        let ds = generate_text(&tiny_spec(), 42);
        // For every lexicon word, the better-polarity LF should exceed 50%
        // accuracy on average (indicators are class-correlated).
        let mut accs = Vec::new();
        for &z in &ds.lexicon {
            let best = Label::ALL
                .iter()
                .filter_map(|&y| {
                    PrimitiveLf::new(z, y).accuracy_against(&ds.train.corpus, &ds.train.labels)
                })
                .fold(0.0f64, f64::max);
            if best > 0.0 {
                accs.push(best);
            }
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(mean > 0.65, "mean best-polarity lexicon LF accuracy {mean}");
    }

    #[test]
    fn features_unit_norm() {
        let ds = generate_text(&tiny_spec(), 42);
        for row in ds.train.features.csr().rows().take(20) {
            if row.nnz() > 0 {
                assert!((row.l2_norm() - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn no_lexicon_when_disabled() {
        let spec = TextGenSpec { expose_lexicon: false, ..tiny_spec() };
        let ds = generate_text(&spec, 42);
        assert!(ds.lexicon.is_empty());
    }

    #[test]
    fn curated_name_suffixes_past_list_end() {
        assert_eq!(curated_name(&["a", "b"], 0), "a");
        assert_eq!(curated_name(&["a", "b"], 2), "a1");
        assert_eq!(curated_name(&["a", "b"], 5), "b2");
    }

    #[test]
    fn same_cluster_docs_are_closer() {
        use nemo_sparse::Distance;
        let ds = generate_text(&tiny_spec(), 42);
        let dists = ds.train.features.point_to_all(Distance::Cosine, 0);
        let c0 = ds.train.clusters[0];
        let (mut same, mut diff) = (Vec::new(), Vec::new());
        for (i, &di) in dists.iter().enumerate().skip(1) {
            if ds.train.clusters[i] == c0 {
                same.push(di);
            } else {
                diff.push(di);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) < mean(&diff),
            "same-cluster mean {} should be below cross-cluster mean {}",
            mean(&same),
            mean(&diff)
        );
    }
}

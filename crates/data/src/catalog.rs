//! Named dataset catalog matching the paper's Table 1.
//!
//! | Task          | Dataset | #Train | #Valid | #Test |
//! |---------------|---------|--------|--------|-------|
//! | Sentiment     | Amazon  | 14,400 | 1,800  | 1,800 |
//! | Sentiment     | Yelp    | 20,000 | 2,500  | 2,500 |
//! | Sentiment     | IMDB    | 20,000 | 2,500  | 2,500 |
//! | Spam          | Youtube | 1,566  | 195    | 195   |
//! | Spam          | SMS     | 4,458  | 557    | 557   |
//! | Visual Rel.   | VG      | 5,084  | 635    | 635   |
//!
//! Every dataset is generated synthetically (DESIGN.md §2); sizes, class
//! balance, and metric follow the paper. [`Profile`] scales the split sizes
//! down for fast smoke/bench runs without changing the vocabulary or the
//! statistical structure.

use crate::dataset::Dataset;
use crate::mixture::MixtureConfig;
use crate::scenegen::{generate_scenes, SceneGenSpec};
use crate::textgen::{generate_text, TextGenSpec, HAM_WORDS, NEG_WORDS, POS_WORDS, SPAM_WORDS};
use nemo_lf::Metric;

/// The six evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Amazon product reviews (sentiment; 4 product categories).
    Amazon,
    /// Yelp reviews (sentiment; 5 venue categories).
    Yelp,
    /// IMDB movie reviews (sentiment; 3 genre clusters, longer docs).
    Imdb,
    /// Youtube comment spam.
    Youtube,
    /// SMS spam (imbalanced, F1 metric).
    Sms,
    /// Visual Genome "carrying vs riding" relation classification.
    Vg,
}

impl DatasetName {
    /// All datasets, in the paper's table order.
    pub const ALL: [DatasetName; 6] = [
        DatasetName::Amazon,
        DatasetName::Yelp,
        DatasetName::Imdb,
        DatasetName::Youtube,
        DatasetName::Sms,
        DatasetName::Vg,
    ];

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetName::Amazon => "Amazon",
            DatasetName::Yelp => "Yelp",
            DatasetName::Imdb => "IMDB",
            DatasetName::Youtube => "Youtube",
            DatasetName::Sms => "SMS",
            DatasetName::Vg => "VG",
        }
    }

    /// Table 1 split sizes `(train, valid, test)`.
    pub fn paper_sizes(self) -> (usize, usize, usize) {
        match self {
            DatasetName::Amazon => (14_400, 1_800, 1_800),
            DatasetName::Yelp => (20_000, 2_500, 2_500),
            DatasetName::Imdb => (20_000, 2_500, 2_500),
            DatasetName::Youtube => (1_566, 195, 195),
            DatasetName::Sms => (4_458, 557, 557),
            DatasetName::Vg => (5_084, 635, 635),
        }
    }

    /// Parse from a (case-insensitive) name.
    pub fn parse(s: &str) -> Option<DatasetName> {
        match s.to_ascii_lowercase().as_str() {
            "amazon" => Some(DatasetName::Amazon),
            "yelp" => Some(DatasetName::Yelp),
            "imdb" => Some(DatasetName::Imdb),
            "youtube" => Some(DatasetName::Youtube),
            "sms" => Some(DatasetName::Sms),
            "vg" => Some(DatasetName::Vg),
            _ => None,
        }
    }
}

/// Scale profile for experiment runs.
///
/// `Full` reproduces Table 1 sizes; `Quick` (the default for `cargo bench`)
/// uses 1/5-size splits; `Smoke` 1/20-size for CI-style runs. Vocabulary
/// and generator structure are unchanged, so the qualitative behaviour is
/// profile-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// ~1/20 split sizes.
    Smoke,
    /// ~1/5 split sizes.
    #[default]
    Quick,
    /// Paper (Table 1) split sizes.
    Full,
}

impl Profile {
    /// Read from the `NEMO_BENCH_PROFILE` environment variable
    /// (`smoke` / `quick` / `full`), defaulting to `Quick`.
    pub fn from_env() -> Profile {
        match std::env::var("NEMO_BENCH_PROFILE").ok().as_deref() {
            Some("smoke") => Profile::Smoke,
            Some("full") => Profile::Full,
            Some("quick") | None => Profile::Quick,
            Some(other) => {
                eprintln!("unknown NEMO_BENCH_PROFILE `{other}`; using quick");
                Profile::Quick
            }
        }
    }

    /// Profile display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// Scale a paper split size down (with floors so tiny datasets stay
    /// usable).
    pub fn scale(self, n: usize, floor: usize) -> usize {
        let f = match self {
            Profile::Smoke => 0.05,
            Profile::Quick => 0.2,
            Profile::Full => 1.0,
        };
        ((n as f64 * f).round() as usize).max(floor.min(n))
    }
}

fn sized(name: DatasetName, profile: Profile) -> (usize, usize, usize) {
    let (tr, va, te) = name.paper_sizes();
    (profile.scale(tr, 400), profile.scale(va, 100), profile.scale(te, 100))
}

/// Build a catalog dataset at a scale profile. Deterministic in `seed`.
pub fn build(name: DatasetName, profile: Profile, seed: u64) -> Dataset {
    let (n_train, n_valid, n_test) = sized(name, profile);
    match name {
        DatasetName::Amazon => generate_text(
            &TextGenSpec {
                name: "Amazon".into(),
                metric: Metric::Accuracy,
                mixture: MixtureConfig {
                    n_clusters: 4,
                    n_shared: 400,
                    n_background_per_cluster: 220,
                    n_indicators: 160,
                    home_affinity: 3.0,
                    agreement_home: 0.90,
                    agreement_away: 0.65,
                    flip_prob: 0.15,
                    pos_prior: 0.5,
                    indicator_tokens: (2, 5, 9),
                    background_tokens: (8, 16, 28),
                    shared_tokens: (5, 12, 22),
                    ..MixtureConfig::default()
                },
                n_train,
                n_valid,
                n_test,
                expose_lexicon: true,
                primitive_df_bounds: (3, 0.15),
                pos_words: POS_WORDS,
                neg_words: NEG_WORDS,
            },
            seed,
        ),
        DatasetName::Yelp => generate_text(
            &TextGenSpec {
                name: "Yelp".into(),
                metric: Metric::Accuracy,
                mixture: MixtureConfig {
                    n_clusters: 5,
                    n_shared: 450,
                    n_background_per_cluster: 200,
                    n_indicators: 180,
                    home_affinity: 2.5,
                    agreement_home: 0.88,
                    agreement_away: 0.63,
                    flip_prob: 0.18,
                    pos_prior: 0.5,
                    indicator_tokens: (2, 5, 9),
                    background_tokens: (8, 16, 30),
                    shared_tokens: (5, 12, 22),
                    ..MixtureConfig::default()
                },
                n_train,
                n_valid,
                n_test,
                expose_lexicon: true,
                primitive_df_bounds: (3, 0.15),
                pos_words: POS_WORDS,
                neg_words: NEG_WORDS,
            },
            seed,
        ),
        DatasetName::Imdb => generate_text(
            &TextGenSpec {
                name: "IMDB".into(),
                metric: Metric::Accuracy,
                mixture: MixtureConfig {
                    n_clusters: 3,
                    n_shared: 550,
                    n_background_per_cluster: 280,
                    n_indicators: 150,
                    home_affinity: 2.5,
                    agreement_home: 0.88,
                    agreement_away: 0.68,
                    flip_prob: 0.12,
                    pos_prior: 0.5,
                    indicator_tokens: (2, 5, 10),
                    background_tokens: (10, 20, 36),
                    shared_tokens: (6, 14, 26),
                    ..MixtureConfig::default()
                },
                n_train,
                n_valid,
                n_test,
                expose_lexicon: true,
                primitive_df_bounds: (3, 0.15),
                pos_words: POS_WORDS,
                neg_words: NEG_WORDS,
            },
            seed,
        ),
        DatasetName::Youtube => generate_text(
            &TextGenSpec {
                name: "Youtube".into(),
                metric: Metric::Accuracy,
                mixture: MixtureConfig {
                    n_clusters: 3,
                    n_shared: 250,
                    n_background_per_cluster: 120,
                    n_indicators: 80,
                    home_affinity: 2.5,
                    agreement_home: 0.92,
                    agreement_away: 0.68,
                    flip_prob: 0.10,
                    pos_prior: 0.48,
                    indicator_tokens: (2, 3, 6),
                    background_tokens: (5, 9, 16),
                    shared_tokens: (3, 8, 14),
                    ..MixtureConfig::default()
                },
                n_train,
                n_valid,
                n_test,
                // Spam tasks have no external opinion lexicon in the paper.
                expose_lexicon: false,
                primitive_df_bounds: (3, 0.15),
                pos_words: SPAM_WORDS,
                neg_words: HAM_WORDS,
            },
            seed,
        ),
        DatasetName::Sms => generate_text(
            &TextGenSpec {
                name: "SMS".into(),
                metric: Metric::F1,
                mixture: MixtureConfig {
                    n_clusters: 2,
                    n_shared: 280,
                    n_background_per_cluster: 140,
                    n_indicators: 70,
                    home_affinity: 2.5,
                    agreement_home: 0.95,
                    agreement_away: 0.72,
                    flip_prob: 0.08,
                    // SMS spam is heavily imbalanced (~13% spam).
                    pos_prior: 0.13,
                    indicator_tokens: (2, 3, 5),
                    background_tokens: (4, 7, 13),
                    shared_tokens: (3, 6, 11),
                    ..MixtureConfig::default()
                },
                n_train,
                n_valid,
                n_test,
                expose_lexicon: false,
                primitive_df_bounds: (3, 0.15),
                pos_words: SPAM_WORDS,
                neg_words: HAM_WORDS,
            },
            seed,
        ),
        DatasetName::Vg => generate_scenes(
            &SceneGenSpec {
                name: "VG".into(),
                mixture: MixtureConfig {
                    n_clusters: 4,
                    n_shared: 100,
                    n_background_per_cluster: 70,
                    n_indicators: 64,
                    home_affinity: 2.5,
                    agreement_home: 0.85,
                    agreement_away: 0.62,
                    flip_prob: 0.15,
                    pos_prior: 0.5,
                    indicator_tokens: (2, 3, 6),
                    background_tokens: (4, 8, 14),
                    shared_tokens: (3, 6, 11),
                    ..MixtureConfig::default()
                },
                feature_dim: 64,
                label_offset: 0.20,
                noise_sigma: 0.38,
                n_train,
                n_valid,
                n_test,
                primitive_df_bounds: (3, 0.15),
            },
            seed,
        ),
    }
}

/// The toy 4-cluster sentiment dataset of Figures 3, 6, and 7: four
/// "product categories", tiny vocabulary, strongly localized indicators.
pub fn toy_text(seed: u64) -> Dataset {
    generate_text(
        &TextGenSpec {
            name: "Toy".into(),
            metric: Metric::Accuracy,
            mixture: MixtureConfig {
                n_clusters: 4,
                // Two dominant clusters + two small ones (the Fig. 6 setup).
                cluster_weights: vec![0.4, 0.4, 0.1, 0.1],
                n_shared: 40,
                n_background_per_cluster: 30,
                n_indicators: 24,
                home_affinity: 3.0,
                agreement_home: 0.92,
                agreement_away: 0.64,
                flip_prob: 0.2,
                pos_prior: 0.5,
                indicator_tokens: (2, 3, 5),
                background_tokens: (4, 8, 14),
                shared_tokens: (3, 6, 10),
                ..MixtureConfig::default()
            },
            n_train: 800,
            n_valid: 150,
            n_test: 150,
            expose_lexicon: true,
            primitive_df_bounds: (3, 0.25),
            pos_words: POS_WORDS,
            neg_words: NEG_WORDS,
        },
        seed,
    )
}

/// A 2-D toy scene dataset for the Figure 3 scatter illustration.
pub fn toy_scene_2d(seed: u64) -> Dataset {
    generate_scenes(
        &SceneGenSpec {
            name: "Toy2D".into(),
            mixture: MixtureConfig {
                n_clusters: 4,
                n_shared: 20,
                n_background_per_cluster: 15,
                n_indicators: 16,
                home_affinity: 8.0,
                agreement_home: 0.92,
                agreement_away: 0.70,
                flip_prob: 0.3,
                pos_prior: 0.5,
                indicator_tokens: (1, 2, 3),
                background_tokens: (2, 4, 8),
                shared_tokens: (1, 3, 6),
                ..MixtureConfig::default()
            },
            feature_dim: 2,
            label_offset: 0.10,
            noise_sigma: 0.18,
            n_train: 400,
            n_valid: 80,
            n_test: 80,
            primitive_df_bounds: (2, 0.3),
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table1() {
        assert_eq!(DatasetName::Amazon.paper_sizes(), (14_400, 1_800, 1_800));
        assert_eq!(DatasetName::Yelp.paper_sizes(), (20_000, 2_500, 2_500));
        assert_eq!(DatasetName::Imdb.paper_sizes(), (20_000, 2_500, 2_500));
        assert_eq!(DatasetName::Youtube.paper_sizes(), (1_566, 195, 195));
        assert_eq!(DatasetName::Sms.paper_sizes(), (4_458, 557, 557));
        assert_eq!(DatasetName::Vg.paper_sizes(), (5_084, 635, 635));
    }

    #[test]
    fn parse_names() {
        assert_eq!(DatasetName::parse("amazon"), Some(DatasetName::Amazon));
        assert_eq!(DatasetName::parse("VG"), Some(DatasetName::Vg));
        assert_eq!(DatasetName::parse("nope"), None);
    }

    #[test]
    fn full_profile_is_identity() {
        assert_eq!(Profile::Full.scale(14_400, 400), 14_400);
    }

    #[test]
    fn smoke_profile_floors() {
        // Youtube train (1566) at 5% = 78 → floored to 400.
        assert_eq!(Profile::Smoke.scale(1_566, 400), 400);
        // Floor never exceeds the paper size.
        assert_eq!(Profile::Smoke.scale(150, 400), 150);
    }

    #[test]
    fn builds_every_dataset_at_smoke_scale() {
        for name in DatasetName::ALL {
            let ds = build(name, Profile::Smoke, 3);
            ds.validate();
            assert_eq!(ds.name, name.as_str());
            assert!(ds.train.n() >= 150, "{:?} too small", name);
        }
    }

    #[test]
    fn sms_is_imbalanced_and_f1() {
        let ds = build(DatasetName::Sms, Profile::Smoke, 3);
        assert_eq!(ds.metric, Metric::F1);
        assert!(ds.train.pos_frac() < 0.25, "pos frac {}", ds.train.pos_frac());
    }

    #[test]
    fn vg_is_dense_without_lexicon() {
        let ds = build(DatasetName::Vg, Profile::Smoke, 3);
        assert!(ds.train.features.dense().is_some());
        assert!(ds.lexicon.is_empty());
    }

    #[test]
    fn sentiment_datasets_have_lexicons() {
        for name in [DatasetName::Amazon, DatasetName::Yelp, DatasetName::Imdb] {
            let ds = build(name, Profile::Smoke, 3);
            assert!(!ds.lexicon.is_empty(), "{name:?}");
        }
    }

    #[test]
    fn toy_datasets_build() {
        let t = toy_text(1);
        t.validate();
        assert_eq!(t.train.n(), 800);
        let s = toy_scene_2d(1);
        s.validate();
        assert_eq!(s.train.features.dim(), 2);
    }

    #[test]
    fn profile_from_env_default() {
        // Without the env var set, the default is Quick.
        std::env::remove_var("NEMO_BENCH_PROFILE");
        assert_eq!(Profile::from_env(), Profile::Quick);
    }
}

//! The shared evaluation protocol (paper Sec. 5.1).
//!
//! Defaults follow the paper: 50 interactive iterations, evaluation every
//! 5 iterations, learning curves summarized by their mean (area under the
//! curve), results averaged over independent seeded runs, simulated user
//! threshold `t = 0.5`, MeTaL-style label model, logistic-regression end
//! model. The `NEMO_BENCH_PROFILE` environment variable scales dataset
//! sizes and seed counts so `cargo bench` finishes quickly by default.

use nemo_baselines::RunSpec;
use nemo_core::config::IdpConfig;
use nemo_data::catalog;
use nemo_data::{Dataset, DatasetName, Profile};

/// Protocol parameters for a bench run.
#[derive(Debug, Clone)]
pub struct BenchProtocol {
    /// Dataset scale profile.
    pub profile: Profile,
    /// Interactive iterations per run (paper: 50).
    pub n_iterations: usize,
    /// Evaluation cadence (paper: every 5).
    pub eval_every: usize,
    /// Independent seeded runs per cell (paper: 5).
    pub n_seeds: usize,
    /// Simulated-user accuracy threshold `t`.
    pub user_threshold: f64,
}

impl BenchProtocol {
    /// Protocol at a given profile: paper-faithful iteration counts, with
    /// the seed count reduced outside the full profile.
    pub fn at(profile: Profile) -> Self {
        let n_seeds = match profile {
            Profile::Smoke => 2,
            Profile::Quick => 3,
            Profile::Full => 5,
        };
        Self { profile, n_iterations: 50, eval_every: 5, n_seeds, user_threshold: 0.5 }
    }

    /// Read the profile from `NEMO_BENCH_PROFILE` (default `quick`).
    pub fn from_env() -> Self {
        Self::at(Profile::from_env())
    }

    /// The run spec for seed index `k` (seeds are deterministic
    /// `1000 + k`, matching the paper's "5 runs with different random
    /// initializations" — the dataset itself is held fixed per name).
    pub fn spec(&self, seed_index: usize) -> RunSpec {
        RunSpec {
            idp: IdpConfig {
                n_iterations: self.n_iterations,
                eval_every: self.eval_every,
                seed: 1000 + seed_index as u64,
                ..Default::default()
            },
            user_threshold: self.user_threshold,
            noisy_user: None,
        }
    }

    /// Build a catalog dataset under this protocol's profile. The dataset
    /// seed is a deterministic function of the name so every bench target
    /// sees the same data.
    pub fn dataset(&self, name: DatasetName) -> Dataset {
        let seed = 0xD5_0000 + name.as_str().len() as u64 * 131 + name as u64;
        catalog::build(name, self.profile, seed)
    }

    /// Seeds to run.
    pub fn seeds(&self) -> Vec<usize> {
        (0..self.n_seeds).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = BenchProtocol::at(Profile::Full);
        assert_eq!(p.n_iterations, 50);
        assert_eq!(p.eval_every, 5);
        assert_eq!(p.n_seeds, 5);
        assert_eq!(p.user_threshold, 0.5);
    }

    #[test]
    fn specs_differ_only_by_seed() {
        let p = BenchProtocol::at(Profile::Smoke);
        let a = p.spec(0);
        let b = p.spec(1);
        assert_ne!(a.idp.seed, b.idp.seed);
        assert_eq!(a.idp.n_iterations, b.idp.n_iterations);
    }

    #[test]
    fn datasets_are_deterministic_per_name() {
        let p = BenchProtocol::at(Profile::Smoke);
        let a = p.dataset(DatasetName::Youtube);
        let b = p.dataset(DatasetName::Youtube);
        assert_eq!(a.train.labels, b.train.labels);
    }
}

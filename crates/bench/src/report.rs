//! Paper-style report rendering: markdown tables on stdout, CSV files
//! under `results/`.

use crate::runner::GridResult;
use std::io::Write;
use std::path::Path;

/// A simple column-aligned table renderer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with a header row.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as a markdown-style aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(&widths).map(|(c, &w)| format!("{c:<w$}")).collect();
            format!("| {} |", padded.join(" | "))
        };
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&fmt_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n{title}");
        println!("{}", self.render());
    }
}

/// Write rows as CSV under the workspace-level `results/<name>.csv`
/// (creating the directory); best-effort — failures are reported to
/// stderr but do not panic, so benches run in read-only checkouts too.
/// Bench binaries execute with the package directory as cwd, so the
/// path is anchored at the workspace root via `CARGO_MANIFEST_DIR`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir_buf = std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let dir: &Path = &dir_buf;
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("[bench] could not write results/{name}.csv: {e}");
    }
}

/// Render a grid as a paper-style table: one row per dataset, one column
/// per method (scores are curve means; the paper's table format).
pub fn grid_table(grid: &GridResult, methods: &[&str], datasets: &[&str]) -> Table {
    let mut header = vec!["Dataset"];
    header.extend(methods);
    let mut table = Table::new(&header);
    for &ds in datasets {
        let mut row = vec![ds.to_string()];
        for &m in methods {
            let cell = grid.cell(m, ds);
            row.push(match cell {
                Some(c) => format!("{:.4}", c.score()),
                None => "—".to_string(),
            });
        }
        table.row(row);
    }
    table
}

/// Emit a grid's full mean curves as CSV (the Appendix B plots).
pub fn write_curves_csv(name: &str, grid: &GridResult) {
    let mut rows = Vec::new();
    for cell in &grid.cells {
        for &(iter, score) in &cell.mean_curve {
            rows.push(vec![
                cell.method.to_string(),
                cell.dataset.clone(),
                iter.to_string(),
                format!("{score:.6}"),
            ]);
        }
    }
    write_csv(name, &["method", "dataset", "iteration", "score"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CellResult;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Dataset", "Nemo"]);
        t.row(vec!["Amazon".into(), "0.7674".into()]);
        let s = t.render();
        assert!(s.contains("| Amazon  | 0.7674 |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["A", "B"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn grid_table_fills_cells() {
        let grid = GridResult {
            cells: vec![CellResult {
                method: "Nemo",
                dataset: "Amazon".into(),
                summaries: vec![0.7, 0.8],
                finals: vec![0.75, 0.85],
                mean_curve: vec![(5, 0.75)],
            }],
        };
        let t = grid_table(&grid, &["Nemo", "Snorkel"], &["Amazon"]);
        let s = t.render();
        assert!(s.contains("0.7500"));
        assert!(s.contains("—"));
    }
}

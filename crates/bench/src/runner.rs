//! Parallel grid execution for the experiment harnesses.
//!
//! A "grid" is a set of (method × dataset × seed) runs. Seeds within one
//! cell run in parallel via `std::thread::scope`; cells run sequentially so
//! progress output stays readable and memory stays bounded (each run only
//! borrows the shared dataset).

use crate::protocol::BenchProtocol;
use nemo_baselines::{run_method, Method};
use nemo_core::idp::LearningCurve;
use nemo_data::Dataset;
use nemo_sparse::stats::{mean, std_dev};

/// Aggregated result of one (method, dataset) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Method display name.
    pub method: &'static str,
    /// Dataset display name.
    pub dataset: String,
    /// Per-seed curve summaries (mean over the learning curve, the
    /// paper's AUC-style score).
    pub summaries: Vec<f64>,
    /// Per-seed final scores.
    pub finals: Vec<f64>,
    /// Curves averaged across seeds: `(iteration, mean score)`.
    pub mean_curve: Vec<(usize, f64)>,
}

impl CellResult {
    /// Mean curve summary across seeds (the number reported in the
    /// paper's tables).
    pub fn score(&self) -> f64 {
        mean(&self.summaries)
    }

    /// Standard deviation of the summary across seeds.
    pub fn std(&self) -> f64 {
        std_dev(&self.summaries)
    }

    /// Mean final score across seeds.
    pub fn final_score(&self) -> f64 {
        mean(&self.finals)
    }
}

/// Results of a full grid, in run order.
#[derive(Debug, Clone, Default)]
pub struct GridResult {
    /// One entry per (method, dataset) cell.
    pub cells: Vec<CellResult>,
}

impl GridResult {
    /// Find a cell by method and dataset name.
    pub fn cell(&self, method: &str, dataset: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.method == method && c.dataset == dataset)
    }
}

fn aggregate(method: Method, dataset: &str, curves: Vec<LearningCurve>) -> CellResult {
    let summaries: Vec<f64> = curves.iter().map(LearningCurve::summary).collect();
    let finals: Vec<f64> = curves.iter().map(LearningCurve::final_score).collect();
    let mut mean_curve = Vec::new();
    if let Some(first) = curves.first() {
        for (pt, &(iter, _)) in first.points().iter().enumerate() {
            let vals: Vec<f64> = curves.iter().map(|c| c.points()[pt].1).collect();
            mean_curve.push((iter, mean(&vals)));
        }
    }
    CellResult {
        method: method.name(),
        dataset: dataset.to_string(),
        summaries,
        finals,
        mean_curve,
    }
}

/// Run one (method, dataset) cell: all protocol seeds in parallel.
pub fn run_cell(method: Method, ds: &Dataset, protocol: &BenchProtocol) -> CellResult {
    let seeds = protocol.seeds();
    let mut curves: Vec<Option<LearningCurve>> = vec![None; seeds.len()];
    std::thread::scope(|scope| {
        for (slot, &seed_index) in curves.iter_mut().zip(&seeds) {
            scope.spawn(move || {
                let spec = protocol.spec(seed_index);
                *slot = Some(run_method(method, ds, &spec));
            });
        }
    });
    let curves: Vec<LearningCurve> =
        curves.into_iter().map(|c| c.expect("run completed")).collect();
    aggregate(method, &ds.name, curves)
}

/// Run a full grid of methods × datasets, printing progress to stderr.
pub fn run_grid(methods: &[Method], datasets: &[&Dataset], protocol: &BenchProtocol) -> GridResult {
    let mut grid = GridResult::default();
    for ds in datasets {
        for &method in methods {
            let started = std::time::Instant::now();
            let cell = run_cell(method, ds, protocol);
            eprintln!(
                "[bench] {:<26} {:<8} score {:.4} ± {:.4}  ({:.1?})",
                cell.method,
                cell.dataset,
                cell.score(),
                cell.std(),
                started.elapsed()
            );
            grid.cells.push(cell);
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemo_data::Profile;

    fn tiny_protocol() -> BenchProtocol {
        BenchProtocol {
            profile: Profile::Smoke,
            n_iterations: 6,
            eval_every: 3,
            n_seeds: 2,
            user_threshold: 0.5,
        }
    }

    #[test]
    fn cell_runs_all_seeds() {
        let protocol = tiny_protocol();
        let ds = nemo_data::catalog::toy_text(3);
        let cell = run_cell(Method::Snorkel, &ds, &protocol);
        assert_eq!(cell.summaries.len(), 2);
        assert_eq!(cell.mean_curve.len(), 2); // 6 iters / eval 3
        assert!(cell.score() > 0.0);
    }

    #[test]
    fn grid_indexing() {
        let protocol = tiny_protocol();
        let ds = nemo_data::catalog::toy_text(3);
        let grid = run_grid(&[Method::Snorkel], &[&ds], &protocol);
        assert!(grid.cell("Snorkel", "Toy").is_some());
        assert!(grid.cell("Nemo", "Toy").is_none());
    }

    #[test]
    fn parallel_matches_sequential_determinism() {
        let protocol = tiny_protocol();
        let ds = nemo_data::catalog::toy_text(3);
        let a = run_cell(Method::Snorkel, &ds, &protocol);
        let b = run_cell(Method::Snorkel, &ds, &protocol);
        assert_eq!(a.summaries, b.summaries);
    }
}

//! # nemo-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Sec. 5). Each `benches/` target is a standalone
//! main (`harness = false`) built on three pieces:
//!
//! - [`protocol`] — the shared evaluation protocol (Sec. 5.1): iteration
//!   budget, evaluation cadence, seed count, user threshold, and the
//!   dataset scale profile (`NEMO_BENCH_PROFILE` = `smoke`/`quick`/`full`).
//! - [`runner`] — parallel execution of (method × dataset × seed) grids
//!   with aggregation into mean ± std summaries and averaged curves.
//! - [`report`] — paper-style markdown tables on stdout and CSV artifacts
//!   under `results/`.

pub mod protocol;
pub mod report;
pub mod runner;

pub use protocol::BenchProtocol;
pub use report::{write_csv, Table};
pub use runner::{run_grid, CellResult, GridResult};

//! Figure 3: the toy 4-cluster illustration.
//!
//! Renders the 2-D toy scene dataset as an ASCII scatter (clusters =
//! product categories; +/− = ground truth), then shows what the paper's
//! right panel illustrates: an LF created from a development point in one
//! cluster covers mostly that cluster and is most accurate there.

use nemo_bench::{write_csv, Table};
use nemo_core::oracle::SimulatedUser;
use nemo_data::catalog::toy_scene_2d;
use nemo_sparse::DetRng;

fn main() {
    println!("Figure 3 — toy 4-cluster dataset illustration");
    let ds = toy_scene_2d(7);
    let dense = ds.train.features.dense().expect("toy scene features are dense");

    // ASCII scatter of the training split.
    let (w, h) = (68usize, 24usize);
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f32::MAX, f32::MIN, f32::MAX, f32::MIN);
    for i in 0..ds.train.n() {
        let r = dense.row(i);
        min_x = min_x.min(r[0]);
        max_x = max_x.max(r[0]);
        min_y = min_y.min(r[1]);
        max_y = max_y.max(r[1]);
    }
    let mut canvas = vec![vec![' '; w]; h];
    for i in 0..ds.train.n() {
        let r = dense.row(i);
        let cx = (((r[0] - min_x) / (max_x - min_x)) * (w as f32 - 1.0)) as usize;
        let cy = (((r[1] - min_y) / (max_y - min_y)) * (h as f32 - 1.0)) as usize;
        let glyph = if ds.train.labels[i] == nemo_lf::Label::Pos { '+' } else { '-' };
        canvas[h - 1 - cy][cx] = glyph;
    }
    println!("\nGround truth (+/− = Positive/Negative; four latent clusters):");
    for row in &canvas {
        println!("{}", row.iter().collect::<String>());
    }

    // One simulated-user LF from a development point: per-cluster
    // coverage and accuracy (the paper's "LFs generalize to similar
    // examples and are most accurate near the development data").
    let mut rng = DetRng::new(3);
    let user = SimulatedUser::default();
    let mut table = Table::new(&["LF", "dev cluster", "cluster", "coverage", "accuracy"]);
    let mut csv = Vec::new();
    let mut shown = 0;
    let mut x = 0usize;
    while shown < 3 && x < ds.train.n() {
        let cands = user.candidates(x, &ds);
        let passing: Vec<_> = cands.iter().filter(|&&(_, a)| a >= 0.6).collect();
        if passing.is_empty() {
            x += 17;
            continue;
        }
        let (lf, _) = *passing[rng.index(passing.len())];
        let dev_cluster = ds.train.clusters[x];
        for k in 0..4u32 {
            let members: Vec<usize> =
                (0..ds.train.n()).filter(|&i| ds.train.clusters[i] == k).collect();
            let covered: Vec<usize> =
                members.iter().copied().filter(|&i| ds.train.corpus.contains(i, lf.z)).collect();
            let coverage = covered.len() as f64 / members.len() as f64;
            let accuracy = if covered.is_empty() {
                f64::NAN
            } else {
                covered.iter().filter(|&&i| ds.train.labels[i] == lf.y).count() as f64
                    / covered.len() as f64
            };
            table.row(vec![
                format!("λ({}, {})", ds.primitive_name(lf.z), lf.y),
                dev_cluster.to_string(),
                k.to_string(),
                format!("{coverage:.3}"),
                if accuracy.is_nan() { "n/a".into() } else { format!("{accuracy:.3}") },
            ]);
            csv.push(vec![
                ds.primitive_name(lf.z).to_string(),
                dev_cluster.to_string(),
                k.to_string(),
                format!("{coverage:.4}"),
                format!("{accuracy:.4}"),
            ]);
        }
        shown += 1;
        x += 17;
    }
    table.print("Per-cluster coverage/accuracy of LFs vs their development cluster:");
    write_csv(
        "fig3_toy_clusters",
        &["primitive", "dev_cluster", "cluster", "coverage", "accuracy"],
        &csv,
    );
}

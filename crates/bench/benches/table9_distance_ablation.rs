//! Table 9: contextualizer distance-function ablation.
//!
//! Cosine vs euclidean distance in the refinement radius (both under
//! random selection), with the standard pipeline as reference.
//! Paper: cosine generally gives the larger lift, but both beat the
//! standard pipeline.

use nemo_baselines::Method;
use nemo_bench::report::grid_table;
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 9 — distance-function ablation (profile: {}, {} seeds, {} distance engine)",
        protocol.profile.name(),
        protocol.n_seeds,
        nemo_core::config::ContextualizerConfig::default().backend.name()
    );
    let methods = [Method::ClOnly, Method::ClEuclidean, Method::Snorkel];
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&methods, &ds_refs, &protocol);
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names)
        .print("Contextualized (cosine) vs contextualized (euclidean) vs standard:");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
        ]);
    }
    write_csv("table9_distance_ablation", &["dataset", "method", "score", "std"], &rows);
}

//! Table 1: dataset statistics.
//!
//! Prints the split sizes of every generated dataset next to the paper's
//! numbers, plus generator-level statistics (primitive-domain size, class
//! balance, mean primitives per example) that characterize the synthetic
//! substitution (DESIGN.md §2).

use nemo_bench::{write_csv, BenchProtocol, Table};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 1 — dataset statistics (profile: {}; paper sizes in parentheses)",
        protocol.profile.name()
    );
    let mut table = Table::new(&[
        "Dataset", "#Train", "#Valid", "#Test", "Metric", "|Z|", "P(y=+1)", "prims/ex", "lexicon",
    ]);
    let mut csv = Vec::new();
    for name in DatasetName::ALL {
        let ds = protocol.dataset(name);
        let (pt, pv, pe) = name.paper_sizes();
        table.row(vec![
            ds.name.clone(),
            format!("{} ({pt})", ds.train.n()),
            format!("{} ({pv})", ds.valid.n()),
            format!("{} ({pe})", ds.test.n()),
            ds.metric.name().to_string(),
            ds.n_primitives.to_string(),
            format!("{:.3}", ds.train.pos_frac()),
            format!("{:.1}", ds.train.corpus.mean_primitives_per_example()),
            ds.lexicon.len().to_string(),
        ]);
        csv.push(vec![
            ds.name.clone(),
            ds.train.n().to_string(),
            ds.valid.n().to_string(),
            ds.test.n().to_string(),
            ds.metric.name().to_string(),
            ds.n_primitives.to_string(),
            format!("{:.4}", ds.train.pos_frac()),
        ]);
    }
    table.print("Generated vs paper split sizes:");
    write_csv(
        "table1_dataset_stats",
        &["dataset", "n_train", "n_valid", "n_test", "metric", "n_primitives", "pos_frac"],
        &csv,
    );
}

//! Table 7: SEU utility-function ablation.
//!
//! Drop either term of the Eq. 3 utility: "No Informativeness" keeps
//! only the correctness factor; "No Correctness" keeps only the
//! label-model uncertainty. Paper: both terms contribute.

use nemo_baselines::Method;
use nemo_bench::report::grid_table;
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 7 — SEU utility-function ablation (profile: {}, {} seeds)",
        protocol.profile.name(),
        protocol.n_seeds
    );
    let methods = [Method::SeuOnly, Method::SeuNoInformativeness, Method::SeuNoCorrectness];
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&methods, &ds_refs, &protocol);
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names).print("SEU (full Eq. 3) vs single-term utilities:");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
        ]);
    }
    write_csv("table7_utility_ablation", &["dataset", "method", "score", "std"], &rows);
}

//! Table 3: the user study, simulated (DESIGN.md §2, substitution 4).
//!
//! The paper ran 15 human participants on the Amazon task: 30 interactive
//! iterations, evaluation every 3 iterations, 5 users per method. We
//! reproduce the protocol with *noisy* simulated users (per-user threshold
//! jitter + occasional filter lapses) standing in for imperfect humans,
//! and generate median react times from a per-scheme log-normal latency
//! model calibrated to the paper's reported medians. React times are
//! explicitly illustrative — they model the paper's *observation* (label-
//! only responses fastest; LF responses ~2–3 s slower; IWS yes/no
//! fastest), not new measurements.

use nemo_baselines::{run_method, Method, RunSpec};
use nemo_bench::{write_csv, BenchProtocol, Table};
use nemo_core::config::IdpConfig;
use nemo_data::DatasetName;
use nemo_sparse::stats::mean;
use nemo_sparse::DetRng;

/// Median seconds per interaction, per scheme (paper Table 3 medians:
/// Nemo 14.42, Snorkel 16.21, Abs 17.95, Dis 13.05, ImplyLoss 16.21,
/// US 12.50, IWS 6.73).
fn latency_model(method: Method) -> f64 {
    match method {
        Method::Nemo => 14.4,
        Method::Snorkel => 16.2,
        Method::SnorkelAbs => 17.9,
        Method::SnorkelDis => 13.1,
        Method::ImplyLossL => 16.2,
        Method::Us => 12.5,
        Method::IwsLse => 6.7,
        _ => 15.0,
    }
}

fn simulated_median_react(method: Method, rng: &mut DetRng) -> f64 {
    let median = latency_model(method);
    // Log-normal sample spread around the scheme median: 30 interactions,
    // take the median draw.
    let mut samples: Vec<f64> = (0..30).map(|_| median * (rng.gaussian() * 0.35).exp()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 3 — simulated user study on Amazon (profile: {}; 30 iterations, eval every 3, 5 noisy users per method)",
        protocol.profile.name()
    );
    let ds = protocol.dataset(DatasetName::Amazon);
    let methods = [
        Method::Nemo,
        Method::Snorkel,
        Method::SnorkelAbs,
        Method::SnorkelDis,
        Method::ImplyLossL,
        Method::Us,
        Method::IwsLse,
    ];
    let mut table = Table::new(&[
        "Metric",
        "Nemo",
        "Snorkel",
        "Snorkel-Abs",
        "Snorkel-Dis",
        "ImplyLoss-L",
        "US",
        "IWS-LSE",
    ]);
    let mut perf_row = vec!["Performance".to_string()];
    let mut time_row = vec!["React time (median, illustrative)".to_string()];
    let mut csv = Vec::new();
    let mut lat_rng = DetRng::new(0x7ab1e3);
    for method in methods {
        // 5 simulated "users" = 5 seeds with noisy-user settings.
        let mut summaries = Vec::new();
        for user in 0..5u64 {
            let spec = RunSpec {
                idp: IdpConfig {
                    n_iterations: 30,
                    eval_every: 3,
                    seed: 4000 + user,
                    ..Default::default()
                },
                user_threshold: protocol.user_threshold,
                noisy_user: Some((0.06, 0.15)),
            };
            summaries.push(run_method(method, &ds, &spec).summary());
        }
        let score = mean(&summaries);
        let react = simulated_median_react(method, &mut lat_rng);
        perf_row.push(format!("{score:.4}"));
        time_row.push(format!("{react:.2}s"));
        csv.push(vec![method.name().to_string(), format!("{score:.4}"), format!("{react:.2}")]);
    }
    table.row(perf_row);
    table.row(time_row);
    table.print("Simulated user study (react times from the latency model, not measured):");
    write_csv("table3_user_study", &["method", "performance", "react_time_s"], &csv);
}

//! Table 8: learning approaches under random selection.
//!
//! Fix selection to random and compare how to learn from the LFs:
//! contextualized refinement (Nemo) vs the standard pipeline vs the
//! ImplyLoss model. Paper: contextualized wins (avg +11% over standard,
//! up to +27% on SMS), beating the specialized ImplyLoss model with a
//! simple model-agnostic coverage refinement.

use nemo_baselines::Method;
use nemo_bench::report::grid_table;
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 8 — learning approaches (random selection) (profile: {}, {} seeds)",
        protocol.profile.name(),
        protocol.n_seeds
    );
    let methods = [Method::ClOnly, Method::Snorkel, Method::ImplyLossL];
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&methods, &ds_refs, &protocol);
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names)
        .print("Contextualized vs Standard vs ImplyLoss (all with random selection):");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
        ]);
    }
    write_csv("table8_learning_approaches", &["dataset", "method", "score", "std"], &rows);
}

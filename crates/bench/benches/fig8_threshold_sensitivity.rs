//! Figure 8: sensitivity to the simulated user's LF-accuracy threshold.
//!
//! Sweep `t ∈ {0.5, 0.6, 0.7}` for the IDP methods on every dataset.
//! Paper: all methods improve as users provide more accurate LFs, Nemo
//! is strongest at every threshold, and Nemo degrades the least when the
//! threshold drops from 0.7 to 0.5.

use nemo_baselines::{run_method, Method, RunSpec};
use nemo_bench::{write_csv, BenchProtocol, Table};
use nemo_data::DatasetName;
use nemo_sparse::stats::mean;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Figure 8 — LF accuracy-threshold sensitivity (profile: {}, {} seeds)",
        protocol.profile.name(),
        protocol.n_seeds
    );
    let methods =
        [Method::Nemo, Method::Snorkel, Method::SnorkelAbs, Method::SnorkelDis, Method::ImplyLossL];
    let thresholds = [0.5, 0.6, 0.7];
    let mut csv = Vec::new();
    for name in DatasetName::ALL {
        let ds = protocol.dataset(name);
        let mut table = Table::new(&["Method", "t=0.5", "t=0.6", "t=0.7"]);
        for method in methods {
            let mut row = vec![method.name().to_string()];
            for &t in &thresholds {
                let mut summaries = Vec::new();
                for seed_index in protocol.seeds() {
                    let mut spec: RunSpec = protocol.spec(seed_index);
                    spec.user_threshold = t;
                    summaries.push(run_method(method, &ds, &spec).summary());
                }
                let score = mean(&summaries);
                row.push(format!("{score:.4}"));
                csv.push(vec![
                    ds.name.clone(),
                    method.name().to_string(),
                    format!("{t:.1}"),
                    format!("{score:.4}"),
                ]);
            }
            table.row(row);
        }
        table.print(&format!("{} — curve score by user threshold:", ds.name));
    }
    write_csv("fig8_threshold_sensitivity", &["dataset", "method", "threshold", "score"], &csv);
}

//! Table 4: Nemo component ablation.
//!
//! Remove either core component from Nemo and measure the drop:
//! "No Data Selector" = random selection + contextualized learning;
//! "No LF Contextualizer" = SEU selection + standard learning.
//! Paper: removing the selector costs ~7% on average, the contextualizer
//! ~3%; both components matter.

use nemo_baselines::Method;
use nemo_bench::report::grid_table;
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 4 — Nemo component ablation (profile: {}, {} seeds)",
        protocol.profile.name(),
        protocol.n_seeds
    );
    let methods = [Method::Nemo, Method::ClOnly, Method::SeuOnly];
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&methods, &ds_refs, &protocol);
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names)
        .print("Nemo vs ablated variants (ClOnly = no data selector; SEU = no LF contextualizer):");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
        ]);
    }
    write_csv("table4_component_ablation", &["dataset", "method", "score", "std"], &rows);
}

//! Figure 7: conflict resolution via contextualization (toy).
//!
//! Construct the paper's illustration concretely: two LFs created from
//! development points in different clusters conflict on a region where
//! one of them over-generalizes. The standard pipeline must give one LF a
//! single global weight and resolves every conflict the same way; the
//! contextualized pipeline refines each LF to its development
//! neighborhood and resolves the conflicts per-region.

use nemo_bench::{write_csv, Table};
use nemo_core::config::ContextualizerConfig;
use nemo_core::contextualizer::Contextualizer;
use nemo_core::oracle::SimulatedUser;
use nemo_data::catalog::toy_text;
use nemo_labelmodel::{LabelModel, MajorityVote};
use nemo_lf::{Label, LabelMatrix, LfColumn, Lineage};
use nemo_sparse::DetRng;

fn main() {
    println!("Figure 7 — contextualizer conflict resolution (toy)");
    let ds = toy_text(21);
    let user = SimulatedUser::default();
    let _rng = DetRng::new(5);

    // Find a conflicting LF pair developed from different clusters: same
    // primitive polarity mismatch on overlapping coverage.
    let mut found = None;
    'outer: for xa in 0..ds.train.n() {
        let ca = user.candidates(xa, &ds);
        for &(lfa, acc_a) in &ca {
            if acc_a < 0.6 {
                continue;
            }
            for xb in 0..ds.train.n() {
                if ds.train.clusters[xb] == ds.train.clusters[xa] {
                    continue;
                }
                let cb = user.candidates(xb, &ds);
                for &(lfb, acc_b) in &cb {
                    if acc_b < 0.6 || lfb.y == lfa.y {
                        continue;
                    }
                    // Conflict mass: examples covered by both primitives.
                    let cov_a = lfa.coverage(&ds.train.corpus);
                    let conflicts = cov_a
                        .iter()
                        .filter(|&&i| ds.train.corpus.contains(i as usize, lfb.z))
                        .count();
                    if conflicts >= 5 {
                        found = Some((lfa, xa, lfb, xb, conflicts));
                        break 'outer;
                    }
                }
            }
        }
    }
    let Some((lf1, dev1, lf2, dev2, n_conflicts)) = found else {
        println!("no conflicting pair found on this toy draw — regenerate with another seed");
        return;
    };
    println!(
        "λ1 = λ({}, {}) from cluster {}, λ2 = λ({}, {}) from cluster {}, {} conflicting examples",
        ds.primitive_name(lf1.z),
        lf1.y,
        ds.train.clusters[dev1],
        ds.primitive_name(lf2.z),
        lf2.y,
        ds.train.clusters[dev2],
        n_conflicts
    );

    let mut lineage = Lineage::new();
    lineage.record(lf1, dev1 as u32, 0);
    lineage.record(lf2, dev2 as u32, 1);
    let mut matrix = LabelMatrix::new(ds.train.n());
    matrix.push(LfColumn::from_lf(&lf1, &ds.train.corpus));
    matrix.push(LfColumn::from_lf(&lf2, &ds.train.corpus));

    // Conflict examples and how each pipeline labels them.
    let conflict_idx: Vec<u32> = lf1
        .coverage(&ds.train.corpus)
        .iter()
        .copied()
        .filter(|&i| ds.train.corpus.contains(i as usize, lf2.z))
        .collect();

    let model = MajorityVote::default();
    let standard = model.fit(&matrix, [0.5, 0.5]).predict(&matrix);

    let mut ctx = Contextualizer::new(ContextualizerConfig::default());
    ctx.sync(&lineage, &ds);
    let refined = ctx.refined_train_matrix(&matrix, 50.0);
    let contextual = model.fit(&refined, [0.5, 0.5]).predict(&refined);

    let score = |post: &nemo_labelmodel::Posterior| -> (usize, usize) {
        let mut correct = 0;
        let mut decided = 0;
        for &i in &conflict_idx {
            let p = post.p_pos(i as usize);
            if (p - 0.5).abs() < 1e-9 {
                continue; // unresolved tie
            }
            decided += 1;
            let pred = Label::from_bool(p >= 0.5);
            if pred == ds.train.labels[i as usize] {
                correct += 1;
            }
        }
        (correct, decided)
    };
    let (std_correct, std_decided) = score(&standard);
    let (ctx_correct, ctx_decided) = score(&contextual);

    let mut table = Table::new(&["Pipeline", "conflicts decided", "decided correctly"]);
    table.row(vec![
        "Standard".into(),
        format!("{std_decided}/{}", conflict_idx.len()),
        std_correct.to_string(),
    ]);
    table.row(vec![
        "Contextualized (p=50)".into(),
        format!("{ctx_decided}/{}", conflict_idx.len()),
        ctx_correct.to_string(),
    ]);
    table.print("Conflict resolution on the λ1/λ2 overlap (paper Fig. 7):");
    write_csv(
        "fig7_contextualizer_intuition",
        &["pipeline", "decided", "correct", "total_conflicts"],
        &[
            vec![
                "standard".into(),
                std_decided.to_string(),
                std_correct.to_string(),
                conflict_idx.len().to_string(),
            ],
            vec![
                "contextualized".into(),
                ctx_decided.to_string(),
                ctx_correct.to_string(),
                conflict_idx.len().to_string(),
            ],
        ],
    );
}

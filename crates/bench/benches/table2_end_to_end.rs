//! Table 2: end-to-end performance of Nemo vs every baseline across all
//! six datasets, plus the Appendix B learning curves (emitted as
//! `results/curves_table2.csv`).
//!
//! Paper claims to check (Sec. 5.2): Nemo consistently strongest among
//! the IDP methods; ~+20% over Snorkel on average; IDP methods beat the
//! other interactive schemes (US / BALD / IWS-LSE / AW).

use nemo_baselines::Method;
use nemo_bench::report::{grid_table, write_curves_csv};
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 2 — end-to-end comparison (profile: {}, {} seeds, {} iterations, eval every {})",
        protocol.profile.name(),
        protocol.n_seeds,
        protocol.n_iterations,
        protocol.eval_every
    );
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&Method::TABLE2, &ds_refs, &protocol);

    let method_names: Vec<&str> = Method::TABLE2.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names)
        .print("Average learning-curve score (paper Table 2 layout):");

    // Headline ratios the paper reports.
    let mut nemo_vs_snorkel = Vec::new();
    for ds in &ds_names {
        let nemo = grid.cell("Nemo", ds).expect("nemo cell").score();
        let snorkel = grid.cell("Snorkel", ds).expect("snorkel cell").score();
        if snorkel > 0.0 {
            nemo_vs_snorkel.push(nemo / snorkel - 1.0);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!("Nemo vs Snorkel: avg {:+.1}% (paper: +20% avg, up to +47%)", avg(&nemo_vs_snorkel));

    // CSV artifacts: summary scores and the full curves (Appendix B).
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
            format!("{:.4}", cell.final_score()),
        ]);
    }
    write_csv("table2_end_to_end", &["dataset", "method", "score", "std", "final"], &rows);
    write_curves_csv("curves_table2", &grid);
}

//! Figure 6: the selection intuition on the toy dataset.
//!
//! Setup mirrors the paper's illustration: two dominant clusters already
//! have LFs (their labels are largely decided); two small clusters are
//! unlabeled. Random sampling mostly re-selects the big clusters (their
//! probability mass dominates); SEU should prefer the small, unlabeled
//! clusters whose examples lead to complementary LFs.

use nemo_bench::{write_csv, Table};
use nemo_core::config::IdpConfig;
use nemo_core::idp::{IdpSession, RandomSelector, Selector};
use nemo_core::oracle::SimulatedUser;
use nemo_core::pipeline::StandardPipeline;
use nemo_core::seu::SeuSelector;
use nemo_data::catalog::toy_text;
use nemo_sparse::DetRng;

/// Fraction of next-selections landing in the small clusters (2 and 3),
/// measured after seeding LFs from the two dominant clusters.
fn small_cluster_rate(selector: &mut dyn Selector, seed: u64) -> f64 {
    let ds = toy_text(11);
    let config = IdpConfig { n_iterations: 0, eval_every: 5, seed, ..Default::default() };
    let mut session = IdpSession::new(
        &ds,
        config,
        Box::new(RandomSelector),
        Box::new(SimulatedUser::default()),
        Box::new(StandardPipeline),
    );
    // Seed: 8 scripted steps whose dev examples come from clusters 0/1
    // only (mimicking the figure's starting state). We emulate this by
    // running the session until 8 LFs from big clusters are collected.
    let mut collected = 0;
    while collected < 8 {
        let rec = session.step();
        match rec.selected {
            Some(x) if ds.train.clusters[x] <= 1 && !rec.new_lfs.is_empty() => collected += 1,
            _ => {}
        }
        if session.iteration() > 200 {
            break;
        }
    }
    // Measure where the candidate selector would go next, over repeated
    // draws (without recording LFs).
    let mut rng = DetRng::new(seed ^ 0xf16);
    let mut small = 0usize;
    let n_draws = 200usize;
    let mut excluded = vec![false; ds.train.n()];
    for _ in 0..n_draws {
        let view = nemo_core::idp::SelectionView {
            ds: &ds,
            lineage: session.lineage(),
            matrix: session.matrix(),
            outputs: session.outputs(),
            excluded: &excluded,
            iteration: session.iteration(),
            aggs: None,
        };
        if let Some(x) = selector.select(&view, &mut rng) {
            if ds.train.clusters[x] >= 2 {
                small += 1;
            }
            excluded[x] = true;
        }
    }
    small as f64 / n_draws as f64
}

fn main() {
    println!(
        "Figure 6 — selection intuition (toy: clusters 0/1 dominant+labeled, 2/3 small+unlabeled)"
    );
    let mut table = Table::new(&["Selector", "P(select small unlabeled cluster)"]);
    let mut csv = Vec::new();
    // The small clusters hold 20% of the probability mass, so random
    // selection lands there ~20% of the time.
    for (name, selector) in [
        ("Random", Box::new(RandomSelector) as Box<dyn Selector>),
        ("SEU", Box::new(SeuSelector::new())),
    ] {
        let mut rates = Vec::new();
        let mut sel = selector;
        for seed in 0..3u64 {
            rates.push(small_cluster_rate(sel.as_mut(), 900 + seed));
        }
        let rate = rates.iter().sum::<f64>() / rates.len() as f64;
        table.row(vec![name.to_string(), format!("{rate:.3}")]);
        csv.push(vec![name.to_string(), format!("{rate:.4}")]);
    }
    table.print("Paper Fig. 6: SEU should exceed Random's ~0.20 baseline rate:");
    write_csv("fig6_selection_intuition", &["selector", "small_cluster_rate"], &csv);
}

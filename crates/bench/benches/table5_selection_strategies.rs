//! Table 5: selection strategies under the standard learning pipeline.
//!
//! Fix learning to the vanilla pipeline and compare selection alone:
//! SEU vs Random \[28\] vs Abstain \[9\] vs Disagree \[9\].
//! Paper: SEU consistently strongest (avg +16% over Random).

use nemo_baselines::Method;
use nemo_bench::report::grid_table;
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 5 — selection strategies (standard learning pipeline) (profile: {}, {} seeds)",
        protocol.profile.name(),
        protocol.n_seeds
    );
    let methods = [Method::SeuOnly, Method::Snorkel, Method::SnorkelAbs, Method::SnorkelDis];
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&methods, &ds_refs, &protocol);
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names)
        .print("Selection-strategy comparison (all use the standard pipeline; Snorkel = Random):");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
        ]);
    }
    write_csv("table5_selection_strategies", &["dataset", "method", "score", "std"], &rows);
}

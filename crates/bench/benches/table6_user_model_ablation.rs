//! Table 6: SEU user-model ablation.
//!
//! Accuracy-weighted user model (Eq. 2) vs uniform pick probabilities.
//! Paper: the accuracy weighting is critical; with uniform weights the
//! per-example utilities cancel exactly and selection degenerates to
//! random (the paper's Uniform column literally equals its Snorkel
//! column on 5/6 datasets).

use nemo_baselines::Method;
use nemo_bench::report::grid_table;
use nemo_bench::{run_grid, write_csv, BenchProtocol};
use nemo_data::DatasetName;

fn main() {
    let protocol = BenchProtocol::from_env();
    println!(
        "Table 6 — SEU user-model ablation (profile: {}, {} seeds)",
        protocol.profile.name(),
        protocol.n_seeds
    );
    let methods = [Method::SeuOnly, Method::SeuUniformUserModel];
    let datasets: Vec<_> = DatasetName::ALL.iter().map(|&n| protocol.dataset(n)).collect();
    let ds_refs: Vec<&_> = datasets.iter().collect();
    let grid = run_grid(&methods, &ds_refs, &protocol);
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name.as_str()).collect();
    grid_table(&grid, &method_names, &ds_names)
        .print("SEU (Eq. 2 accuracy-weighted) vs uniform user model:");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        rows.push(vec![
            cell.dataset.clone(),
            cell.method.to_string(),
            format!("{:.4}", cell.score()),
            format!("{:.4}", cell.std()),
        ]);
    }
    write_csv("table6_user_model_ablation", &["dataset", "method", "score", "std"], &rows);
}

//! Criterion microbenchmarks of the hot kernels (DESIGN.md §4):
//! SEU's per-iteration scoring (fast path vs naive reference), label-model
//! fitting, TF-IDF transformation, distance point-to-all, and LF
//! application. These quantify the engineering choices — most notably the
//! inverted-index SEU fast path, whose naive counterpart is quadratic.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nemo_core::config::IdpConfig;
use nemo_core::idp::{IdpSession, ModelOutputs, RandomSelector, SelectionView};
use nemo_core::oracle::SimulatedUser;
use nemo_core::pipeline::StandardPipeline;
use nemo_core::seu::SeuSelector;
use nemo_data::catalog::{build, DatasetName, Profile};
use nemo_data::Dataset;
use nemo_labelmodel::{GenerativeModel, LabelModel, TripletModel};
use nemo_lf::{LabelMatrix, PrimitiveLf};
use nemo_sparse::{DetRng, Distance};
use nemo_text::TfIdf;

fn prepared_session(ds: &Dataset) -> IdpSession<'_> {
    let config = IdpConfig { n_iterations: 25, eval_every: 25, seed: 1, ..Default::default() };
    let mut session = IdpSession::new(
        ds,
        config,
        Box::new(RandomSelector),
        Box::new(SimulatedUser::default()),
        Box::new(StandardPipeline),
    );
    for _ in 0..25 {
        session.step();
    }
    session
}

fn bench_seu(c: &mut Criterion) {
    let ds = build(DatasetName::Amazon, Profile::Smoke, 3);
    let session = prepared_session(&ds);
    let excluded = vec![false; ds.train.n()];
    let view = SelectionView {
        ds: &ds,
        lineage: session.lineage(),
        matrix: session.matrix(),
        outputs: session.outputs(),
        excluded: &excluded,
        iteration: 25,
    };
    let selector = SeuSelector::new();

    c.bench_function("seu_fast_path_full_pool", |b| {
        b.iter(|| {
            let aggs = SeuSelector::primitive_aggregates(&view);
            let mut best = f64::NEG_INFINITY;
            for x in 0..ds.train.n() {
                best = best.max(selector.expected_utility(&view, &aggs, x));
            }
            best
        })
    });

    c.bench_function("seu_naive_100_examples", |b| {
        b.iter(|| {
            let mut best = f64::NEG_INFINITY;
            for x in 0..100 {
                best = best.max(selector.expected_utility_naive(&view, x));
            }
            best
        })
    });
}

fn bench_label_models(c: &mut Criterion) {
    let ds = build(DatasetName::Amazon, Profile::Smoke, 3);
    let session = prepared_session(&ds);
    let matrix = session.matrix().clone();

    c.bench_function("labelmodel_triplet_fit", |b| {
        b.iter(|| TripletModel::default().fit(&matrix, [0.5, 0.5]))
    });
    c.bench_function("labelmodel_em_fit", |b| {
        b.iter(|| GenerativeModel::default().fit(&matrix, [0.5, 0.5]))
    });
}

fn bench_tfidf_and_distance(c: &mut Criterion) {
    let ds = build(DatasetName::Amazon, Profile::Smoke, 3);
    let norms = ds.train.features.sq_norms().to_vec();
    c.bench_function("distance_point_to_all_cosine", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ds.train.n();
            Distance::Cosine.sparse_point_to_all(ds.train.features.csr(), i, &norms)
        })
    });

    // TF-IDF transform over synthetic id-sequences.
    let mut rng = DetRng::new(9);
    let docs: Vec<Vec<u32>> = (0..500)
        .map(|_| (0..30).map(|_| rng.index(800) as u32).collect())
        .collect();
    let model = TfIdf::default().fit(&docs, 800);
    c.bench_function("tfidf_transform_500_docs", |b| b.iter(|| model.transform(&docs)));
}

fn bench_lf_application(c: &mut Criterion) {
    let ds = build(DatasetName::Amazon, Profile::Smoke, 3);
    let mut rng = DetRng::new(11);
    let lfs: Vec<PrimitiveLf> = (0..50)
        .map(|_| {
            PrimitiveLf::new(
                rng.index(ds.n_primitives) as u32,
                nemo_lf::Label::from_bool(rng.bernoulli(0.5)),
            )
        })
        .collect();
    c.bench_function("label_matrix_from_50_lfs", |b| {
        b.iter_batched(
            || lfs.clone(),
            |lfs| LabelMatrix::from_lfs(&lfs, &ds.train.corpus),
            BatchSize::SmallInput,
        )
    });
}

fn bench_outputs_initial(c: &mut Criterion) {
    let ds = build(DatasetName::Youtube, Profile::Smoke, 3);
    c.bench_function("model_outputs_initial", |b| b.iter(|| ModelOutputs::initial(&ds)));
}

criterion_group!(
    benches,
    bench_seu,
    bench_label_models,
    bench_tfidf_and_distance,
    bench_lf_application,
    bench_outputs_initial
);
criterion_main!(benches);
